"""Variable accuracy in action: the Bin Packing benchmark.

Bin packing is one of the paper's variable-accuracy benchmarks: every
heuristic produces *some* packing, but only sufficiently dense packings
(average bin occupancy >= 0.95) count as accurate, and the programmer demands
that at least 95% of inputs meet that bar.  This example shows how the
two-level system balances that quality-of-service contract against speed:

* the one-level baseline (accuracy-oblivious nearest-centroid mapping) often
  picks fast heuristics that miss the occupancy target;
* the two-level production classifier only picks a cheap heuristic where the
  input's features say it is safe to do so.

Run with::

    python examples/binpacking_quality_of_service.py
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks_suite import get_benchmark
from repro.core import InputAwareLearning, Level1Config, Level2Config
from repro.core.baselines import DynamicOracle, OneLevelLearning, StaticOracle


def main() -> None:
    variant = get_benchmark("binpacking")
    benchmark = variant.benchmark
    program = benchmark.program
    threshold = program.accuracy_requirement.accuracy_threshold

    inputs = benchmark.generate_inputs(160, variant.variant, seed=1)
    learner = InputAwareLearning(
        level1_config=Level1Config(n_clusters=10, tuner_generations=5, tuner_population=8),
        level2_config=Level2Config(max_subsets=64),
        seed=1,
    )
    training = learner.fit(program, inputs)
    dataset = training.dataset
    test_rows = training.level2.test_rows

    static = StaticOracle().fit(dataset, training.level2.train_rows).evaluate(dataset, test_rows)
    dynamic = DynamicOracle().evaluate(dataset, test_rows)
    one_level = OneLevelLearning(training.level1).evaluate(dataset, test_rows)
    production = training.level2.production.classifier
    predictions = production.predict_rows(dataset, test_rows)
    two_level_times = dataset.times[test_rows, predictions.labels] + predictions.extraction_costs
    two_level_accuracy = dataset.accuracies[test_rows, predictions.labels]

    def report(name, times, accuracies):
        speedup = float(np.mean(static.times / np.maximum(times, 1e-12)))
        satisfaction = float(np.mean(accuracies >= threshold))
        print(f"  {name:<22s} speedup {speedup:5.2f}x   occupancy target met on {satisfaction:6.1%} of inputs")

    print(f"accuracy contract: occupancy >= {threshold} on >= 95% of inputs")
    print(f"production classifier: {production.name}\n")
    report("static oracle", static.times, static.accuracies)
    report("dynamic oracle", dynamic.times, dynamic.accuracies)
    report("two-level (this paper)", two_level_times, two_level_accuracy)
    report("one-level baseline", one_level.times, one_level.accuracies)

    print("\nwhich heuristics the deployed system actually picks:")
    chosen = {}
    for row, label in zip(test_rows, predictions.labels):
        name = dataset.landmarks[label]["heuristic"]
        chosen[name] = chosen.get(name, 0) + 1
    for name, count in sorted(chosen.items(), key=lambda item: -item[1]):
        print(f"  {name:<28s} {count:4d} inputs")


if __name__ == "__main__":
    main()
