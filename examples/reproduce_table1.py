"""Reproduce Table 1 and the headline numbers of the paper.

Runs all eight tests (sort1, sort2, clustering1, clustering2, binpacking,
svd, poisson2d, helmholtz3d), trains the two-level system on each, and prints
the Table-1 rows: mean speedup over the static oracle for the dynamic oracle,
the two-level method (with and without feature-extraction time), the
one-level baseline (with and without), and the one-level accuracy column.

Run with::

    python examples/reproduce_table1.py             # moderate scale, ~5-10 min
    python examples/reproduce_table1.py --quick     # small scale, ~1 min
"""

from __future__ import annotations

import argparse
import time

from repro.experiments.runner import ExperimentConfig
from repro.experiments.table1 import (
    TABLE1_TESTS,
    format_table1,
    run_table1,
    summarize_headline,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use a small input budget")
    parser.add_argument("--tests", nargs="*", default=list(TABLE1_TESTS))
    args = parser.parse_args()

    if args.quick:
        config = ExperimentConfig(
            n_inputs=60, n_clusters=6, tuner_generations=3, tuner_population=6,
            tuning_neighbors=2, max_subsets=32,
        )
    else:
        config = ExperimentConfig(
            n_inputs=240, n_clusters=12, tuner_generations=8, tuner_population=10,
            tuning_neighbors=4, max_subsets=128,
        )

    start = time.time()
    rows = run_table1(tests=args.tests, config=config, progress=print)
    print()
    print(format_table1(rows))
    headline = summarize_headline(rows)
    print()
    print(f"best two-level speedup over static oracle : {headline['max_two_level_speedup']:.2f}x")
    print(f"worst one-level slowdown (w/ features)    : {headline['max_one_level_slowdown']:.2f}x")
    print(f"largest two-level / one-level ratio       : {headline['max_two_over_one_level']:.2f}x")
    print(f"\ntotal wall-clock: {time.time() - start:.0f}s")


if __name__ == "__main__":
    main()
