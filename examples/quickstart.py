"""Quickstart: input-aware autotuning of the Sort benchmark.

This walks through the full workflow of the paper on a small scale:

1. pick a benchmark (Sort with the synthetic input population, i.e. the
   paper's ``sort2`` test);
2. train the two-level input-aware learning system, which clusters the
   training inputs, autotunes a landmark configuration per cluster, measures
   every landmark on every input, and learns a production classifier;
3. deploy the result: for each new input, the classifier probes a few cheap
   input features and selects the input-optimized program to run.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.benchmarks_suite import get_benchmark
from repro.core import InputAwareLearning, Level1Config, Level2Config


def main() -> None:
    variant = get_benchmark("sort2")
    benchmark = variant.benchmark

    print("== Training ==")
    training_inputs = benchmark.generate_inputs(120, variant.variant, seed=0)
    learner = InputAwareLearning(
        level1_config=Level1Config(n_clusters=8, tuner_generations=5, tuner_population=8),
        level2_config=Level2Config(max_subsets=64),
        seed=0,
    )
    training = learner.fit(benchmark.program, training_inputs)

    print(f"landmark configurations: {len(training.landmarks)}")
    for index, landmark in enumerate(training.landmarks):
        selector = landmark["selector"]
        print(f"  landmark {index}: {selector.describe()} "
              f"(pivot={landmark['quick_pivot']}, ways={landmark['merge_ways']})")
    production = training.level2.production
    print(f"production classifier: {production.classifier.name}")
    print(f"  mean cost on held-out inputs: {production.performance_cost:,.0f} work units")

    print("\n== Deployment ==")
    fresh_inputs = benchmark.generate_inputs(6, variant.variant, seed=123)
    for data in fresh_inputs:
        outcome = training.deployed.run(data)
        selector = outcome.configuration["selector"]
        assert np.all(np.diff(outcome.result.output) >= 0), "output must be sorted"
        print(
            f"  n={len(data):5d}  selected landmark {outcome.landmark_index} "
            f"[{selector.describe()}]  cost={outcome.total_time:,.0f} "
            f"(features {outcome.feature_extraction_cost:,.0f})"
        )


if __name__ == "__main__":
    main()
