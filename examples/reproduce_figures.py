"""Reproduce Figures 6, 7, and 8 of the paper as plain-text plots.

For the selected tests this trains the two-level system once, then prints:

* Figure 6 -- the sorted per-input speedup distribution (ASCII sparkline plus
  summary statistics);
* Figure 7 -- the theoretical diminishing-returns model curves;
* Figure 8 -- the measured speedup as a function of the number of landmark
  configurations (median and quartiles over random subsets).

Run with::

    python examples/reproduce_figures.py --tests sort2 binpacking
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.experiments.figure6 import distribution_from_result
from repro.experiments.figure7 import model_figure7a, model_figure7b
from repro.experiments.figure8 import landmark_sweep
from repro.experiments.reporting import ascii_sparkline, format_series
from repro.experiments.runner import ExperimentConfig, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tests", nargs="*", default=["sort2", "binpacking"])
    parser.add_argument("--inputs", type=int, default=120)
    args = parser.parse_args()

    config = ExperimentConfig(
        n_inputs=args.inputs, n_clusters=10, tuner_generations=6,
        tuner_population=8, tuning_neighbors=3, max_subsets=64,
    )

    print("== Figure 7: theoretical model ==")
    for k, curve in sorted(model_figure7a(config_counts=(2, 5, 9)).items()):
        print(f"  loss vs region size, {k} configs : {ascii_sparkline(curve.y.tolist(), width=50)}")
    curve = model_figure7b(range(10, 101, 10))
    print("\n  fraction of full speedup vs landmarks:")
    print("  " + format_series(curve.x.tolist(), np.round(curve.y, 3).tolist(),
                               "landmarks", "fraction").replace("\n", "\n  "))

    for test_name in args.tests:
        print(f"\n== {test_name} ==")
        result = run_experiment(test_name, config=config)

        panel = distribution_from_result(result)
        print("  Figure 6 (sorted per-input speedups over the static oracle):")
        print(f"    {ascii_sparkline(panel.speedups.tolist(), width=60)}")
        print(
            f"    mean {panel.mean:.2f}x, max {panel.maximum:.2f}x, "
            f"{panel.tail_fraction(2.0):.0%} of inputs above 2x"
        )

        total = result.training.dataset.n_landmarks
        counts = sorted({1, 2, max(3, total // 2), total})
        points = landmark_sweep(result, landmark_counts=counts, n_subsets=20)
        print("  Figure 8 (speedup vs number of landmarks, median [q1, q3]):")
        for point in points:
            print(
                f"    k={point.n_landmarks:3d}: {point.median:5.2f}x "
                f"[{point.first_quartile:5.2f}x, {point.third_quartile:5.2f}x]"
            )


if __name__ == "__main__":
    main()
