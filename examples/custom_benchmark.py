"""Bring your own program: input-aware autotuning of a custom benchmark.

The paper's framework is not tied to the six shipped benchmarks; anything
expressible as a :class:`~repro.lang.program.PetaBricksProgram` -- a
configuration space, a run function charging the cost model, a set of
``input_feature`` extractors, and (optionally) an accuracy contract -- can be
trained the same way.

This example defines a small "search" program from scratch:

* **problem**: find a key in a list, where lists may be sorted or unsorted;
* **algorithmic choice**: linear scan (works on anything) vs. binary search
  preceded by a verification pass (cheap on sorted inputs, wasteful
  otherwise) vs. building a hash index (pays off only when the same list is
  probed many times -- controlled by a ``probes`` tunable);
* **input feature**: a sampled sortedness probe and the list length.

Run with::

    python examples/custom_benchmark.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import InputAwareLearning, Level1Config, Level2Config
from repro.lang import (
    CategoricalParameter,
    ConfigurationSpace,
    FeatureExtractor,
    FeatureSet,
    IntegerParameter,
    PetaBricksProgram,
)
from repro.lang.cost import charge


# --- the program under tuning -------------------------------------------------

def run_search(config, problem):
    """Probe the list for ``problem['n_queries']`` keys with the chosen method."""
    data, queries = problem["data"], problem["queries"]
    method = config["method"]
    found = 0
    if method == "linear":
        for key in queries:
            charge(len(data), "scan")
            found += int(key in set(data.tolist()))
    elif method == "binary":
        is_sorted = bool(np.all(data[:-1] <= data[1:]))
        charge(len(data), "verify")
        ordered = data if is_sorted else np.sort(data)
        if not is_sorted:
            charge(len(data) * math.log2(max(len(data), 2)), "sort")
        for key in queries:
            charge(math.log2(max(len(data), 2)), "probe")
            position = int(np.searchsorted(ordered, key))
            found += int(position < len(ordered) and ordered[position] == key)
    else:  # hash index
        charge(2.0 * len(data), "build_index")
        index = set(data.tolist())
        for key in queries:
            charge(1.0, "probe")
            found += int(key in index)
    return found


def sortedness(problem, fraction):
    data = problem["data"]
    sample_size = max(2, int(len(data) * fraction))
    sample = data[np.linspace(0, len(data) - 1, sample_size, dtype=int)]
    charge(len(sample), "feature")
    return float(np.mean(sample[:-1] <= sample[1:]))


def size_feature(problem, fraction):
    charge(1.0, "feature")
    return math.log2(max(len(problem["data"]), 2))


def query_load(problem, fraction):
    charge(1.0, "feature")
    return math.log2(max(len(problem["queries"]), 1) + 1)


def build_program() -> PetaBricksProgram:
    space = ConfigurationSpace(
        [
            CategoricalParameter("method", ["linear", "binary", "hash"]),
            IntegerParameter("prefetch", 1, 8),
        ]
    )
    features = FeatureSet(
        [
            FeatureExtractor("sortedness", sortedness),
            FeatureExtractor("size", size_feature, level_fractions=[1.0, 1.0, 1.0]),
            FeatureExtractor("queries", query_load, level_fractions=[1.0, 1.0, 1.0]),
        ]
    )
    return PetaBricksProgram("search", space, run_search, features=features)


# --- an input population with real heterogeneity ------------------------------

def generate_inputs(n, seed=0):
    rng = np.random.default_rng(seed)
    inputs = []
    for i in range(n):
        size = int(rng.integers(200, 4000))
        data = rng.uniform(0, 1e6, size=size)
        if i % 3 == 0:
            data = np.sort(data)          # sorted lists: binary search territory
        n_queries = int(rng.integers(1, 4)) if i % 3 != 2 else int(rng.integers(50, 200))
        queries = rng.uniform(0, 1e6, size=n_queries)
        inputs.append({"data": data, "queries": queries})
    return inputs


def main() -> None:
    program = build_program()
    inputs = generate_inputs(90, seed=7)
    learner = InputAwareLearning(
        level1_config=Level1Config(n_clusters=6, tuner_generations=4, tuner_population=8),
        level2_config=Level2Config(max_subsets=32),
        seed=7,
    )
    training = learner.fit(program, inputs)

    print("landmarks found by the autotuner:")
    for index, landmark in enumerate(training.landmarks):
        print(f"  landmark {index}: method={landmark['method']}")
    print(f"production classifier: {training.production_classifier.name}\n")

    print("deployment decisions on fresh inputs:")
    for problem in generate_inputs(6, seed=99):
        outcome = training.deployed.run(problem)
        print(
            f"  n={len(problem['data']):5d} queries={len(problem['queries']):4d} "
            f"sorted={bool(np.all(problem['data'][:-1] <= problem['data'][1:]))!s:>5s} "
            f"-> {outcome.configuration['method']:<7s} cost={outcome.total_time:,.0f}"
        )


if __name__ == "__main__":
    main()
