"""Drift detection: is the live input population still the one we trained on?

The paper's central claim is that the *input* determines the best
algorithmic choice; the dual of that claim is that a selector is only as
good as the input population it was trained on.  :class:`DriftMonitor`
watches the feature vectors flowing through the feedback log and compares
their windowed distribution, feature by feature, against the frozen
training population -- PSI over reference-quantile bins plus the
two-sample KS statistic, both from :mod:`repro.ml.stats`.

A single noisy window must not trigger a (costly) retrain, so trips are
debounced two ways: ``patience`` consecutive over-threshold checks are
required before :meth:`check` reports drift, and after a retrain the
monitor holds a ``cooldown`` (checks during it never trip) while the new
model's population becomes the reference.  All state is plain counters --
the monitor is deterministic in the sequence of windows it sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.ml.stats import ks_statistic, population_stability_index


@dataclass(frozen=True)
class DriftConfig:
    """Thresholds and hysteresis for :class:`DriftMonitor`.

    Attributes:
        window: how many of the most recent feedback records form the live
            sample compared against the reference.
        min_window: checks with fewer than this many records are skipped
            (report ``insufficient``); a 3-record "window" says nothing.
        psi_threshold: per-feature PSI above this counts the feature as
            drifted (0.25 is the conventional "significant shift" line).
        ks_threshold: per-feature KS statistic above this counts the
            feature as drifted.
        min_drifted_features: how many features must individually drift
            for the window to count as drifted -- one jittery feature out
            of dozens should not page anyone.
        patience: consecutive drifted windows required before
            :meth:`DriftMonitor.check` reports ``drifted=True``.
        cooldown: number of checks after :meth:`DriftMonitor.notify_retrained`
            during which trips are suppressed while the fresh model's
            reference warms up.
        bins: quantile bins for PSI.
    """

    window: int = 64
    min_window: int = 16
    psi_threshold: float = 0.25
    ks_threshold: float = 0.35
    min_drifted_features: int = 2
    patience: int = 2
    cooldown: int = 4
    bins: int = 10

    def __post_init__(self) -> None:
        if self.window < 1 or self.min_window < 1:
            raise ValueError("window sizes must be >= 1")
        if self.min_window > self.window:
            raise ValueError("min_window cannot exceed window")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.min_drifted_features < 1:
            raise ValueError("min_drifted_features must be >= 1")


@dataclass(frozen=True)
class FeatureDrift:
    """Per-feature drift scores for one check."""

    feature: str
    psi: float
    ks: float
    drifted: bool


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one :meth:`DriftMonitor.check`.

    ``drifted`` is the debounced verdict (patience satisfied, not cooling
    down); ``window_drifted`` is the raw per-window verdict before
    hysteresis -- tests and telemetry want both.
    """

    drifted: bool
    window_drifted: bool
    insufficient: bool
    cooling_down: bool
    window_size: int
    consecutive: int
    features: List[FeatureDrift] = field(default_factory=list)

    @property
    def drifted_features(self) -> List[str]:
        return [score.feature for score in self.features if score.drifted]


class DriftMonitor:
    """Windowed per-feature drift detector with patience + cooldown.

    The reference is the feature matrix of the population the serving
    model was trained on; :meth:`set_reference` swaps it (the retrainer
    calls :meth:`notify_retrained`, which does that and starts the
    cooldown).  Constant reference columns are handled by the stats layer
    (PSI reads 0 while the live column sits at the same constant, high
    once it departs) rather than special-cased here.
    """

    def __init__(
        self,
        feature_names: Sequence[str],
        reference: np.ndarray,
        config: Optional[DriftConfig] = None,
    ) -> None:
        self.config = config or DriftConfig()
        self.feature_names = list(feature_names)
        self._reference = self._validated(reference)
        #: Consecutive window-drifted checks (patience accumulator).
        self.consecutive = 0
        #: Checks remaining in the post-retrain cooldown.
        self.cooldown_remaining = 0
        #: Counters for telemetry / reports.
        self.checks = 0
        self.trips = 0

    def _validated(self, reference: np.ndarray) -> np.ndarray:
        matrix = np.asarray(reference, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError("reference must be a non-empty (n, features) matrix")
        if matrix.shape[1] != len(self.feature_names):
            raise ValueError(
                f"reference has {matrix.shape[1]} columns for "
                f"{len(self.feature_names)} feature names"
            )
        return matrix

    @property
    def reference(self) -> np.ndarray:
        return self._reference

    def set_reference(self, reference: np.ndarray) -> None:
        """Replace the training population (does not touch hysteresis state)."""
        self._reference = self._validated(reference)

    def notify_retrained(self, reference: Optional[np.ndarray] = None) -> None:
        """A new model went live: reset patience, start the cooldown.

        Passing ``reference`` also freezes the new model's training
        population as the comparison baseline.
        """
        if reference is not None:
            self.set_reference(reference)
        self.consecutive = 0
        self.cooldown_remaining = self.config.cooldown

    def check(self, live: np.ndarray) -> DriftReport:
        """Score one live window against the reference.

        ``live`` is an (n, features) matrix -- typically
        ``FeedbackLog.feature_matrix(log.window(config.window))``.
        """
        self.checks += 1
        matrix = np.asarray(live, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] < self.config.min_window:
            # Too little evidence either way; patience is left untouched so
            # a thin window between two drifted ones does not reset it.
            return DriftReport(
                drifted=False,
                window_drifted=False,
                insufficient=True,
                cooling_down=self.cooldown_remaining > 0,
                window_size=0 if matrix.ndim != 2 else int(matrix.shape[0]),
                consecutive=self.consecutive,
            )
        if matrix.shape[1] != len(self.feature_names):
            raise ValueError(
                f"live window has {matrix.shape[1]} columns for "
                f"{len(self.feature_names)} feature names"
            )

        scores: List[FeatureDrift] = []
        for column, name in enumerate(self.feature_names):
            reference_column = self._reference[:, column]
            live_column = matrix[:, column]
            psi = population_stability_index(
                reference_column, live_column, bins=self.config.bins
            )
            ks = ks_statistic(reference_column, live_column)
            scores.append(
                FeatureDrift(
                    feature=name,
                    psi=psi,
                    ks=ks,
                    drifted=psi > self.config.psi_threshold
                    or ks > self.config.ks_threshold,
                )
            )

        drifted_count = sum(1 for score in scores if score.drifted)
        window_drifted = drifted_count >= self.config.min_drifted_features

        cooling_down = self.cooldown_remaining > 0
        if cooling_down:
            self.cooldown_remaining -= 1
            # Cooldown absorbs the window entirely: no patience accrual,
            # so a retrain's own transition window cannot re-trip.
            return DriftReport(
                drifted=False,
                window_drifted=window_drifted,
                insufficient=False,
                cooling_down=True,
                window_size=int(matrix.shape[0]),
                consecutive=self.consecutive,
                features=scores,
            )

        if window_drifted:
            self.consecutive += 1
        else:
            self.consecutive = 0

        drifted = self.consecutive >= self.config.patience
        if drifted:
            self.trips += 1
        return DriftReport(
            drifted=drifted,
            window_drifted=window_drifted,
            insufficient=False,
            cooling_down=False,
            window_size=int(matrix.shape[0]),
            consecutive=self.consecutive,
            features=scores,
        )
