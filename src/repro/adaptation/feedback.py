"""The feedback log: per-request training signal captured at serving time.

The paper trains its selector once, offline.  Closing the loop needs the
signal a live deployment produces anyway: for every served input, the
feature vector the classifier saw, the landmark it chose, and the cost and
accuracy the run actually observed.  :class:`FeedbackRecord` is one such
observation; :class:`FeedbackLog` is the bounded, append-only,
thread-safe buffer the :class:`~repro.serving.server.SelectorServer`
appends to (one record per *execution* -- coalesced duplicates share
their job's record) and the adaptation loop consumes windows from.

Records are JSON-serializable, so a log can be persisted as a JSONL trace
file and replayed offline -- the drift monitor and the retrainer operate
identically on a live log and on a replayed trace.  When the served input
itself is needed again (retraining re-measures landmarks on the logged
window), a record can carry it: either as an ``input_spec`` naming an
index of a per-index seeded population (a few bytes, the preferred shape)
or as a base64-pickled payload.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class FeedbackRecord:
    """One served request's training signal.

    Attributes:
        features: the full feature vector of the served input (every
            property at every sampling level, ordered like
            ``FeatureSet.feature_names()``) -- what the drift monitor
            compares against the training population.
        predicted_label: the label the classifier produced (after the
            one-off clamp :meth:`DeployedProgram.select_configuration`
            applies; a clamp is also counted in telemetry).
        chosen_landmark: index of the landmark configuration that actually
            ran.  Equal to ``predicted_label`` today; kept separate so a
            future routing policy (fallbacks, canaries) stays expressible
            in the same schema.
        observed_cost: the run's total deterministic cost -- execution
            work units plus the feature-extraction cost the selection
            charged.
        observed_accuracy: the run's accuracy score.
        input_spec: optional wire-shaped input description (the serving
            protocol's ``index`` / ``pickle`` encodings) that lets a
            replayed trace re-materialize the input exactly.
    """

    features: tuple
    predicted_label: int
    chosen_landmark: int
    observed_cost: float
    observed_accuracy: float
    input_spec: Optional[Dict[str, Any]] = None

    def to_json(self) -> Dict[str, Any]:
        """A plain-JSON view (one JSONL trace line)."""
        record: Dict[str, Any] = {
            "features": [float(value) for value in self.features],
            "predicted_label": int(self.predicted_label),
            "chosen_landmark": int(self.chosen_landmark),
            "observed_cost": float(self.observed_cost),
            "observed_accuracy": float(self.observed_accuracy),
        }
        if self.input_spec is not None:
            record["input_spec"] = self.input_spec
        return record

    @classmethod
    def from_json(cls, record: Dict[str, Any]) -> "FeedbackRecord":
        """Invert :meth:`to_json`.

        Raises:
            ValueError: on a structurally malformed record.
        """
        try:
            return cls(
                features=tuple(float(v) for v in record["features"]),
                predicted_label=int(record["predicted_label"]),
                chosen_landmark=int(record["chosen_landmark"]),
                observed_cost=float(record["observed_cost"]),
                observed_accuracy=float(record["observed_accuracy"]),
                input_spec=record.get("input_spec"),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed feedback record: {error}") from None

    def materialize_input(self, default_seed: int = 0) -> Any:
        """Rebuild the served input this record describes.

        Index-encoded specs rematerialize from the named per-index seeded
        population (bit-identical to what the server ran, by the input
        layer's purity contract); pickle-encoded specs decode their
        payload.

        Raises:
            ValueError: when the record carries no input spec, or the spec
                is malformed.
        """
        spec = self.input_spec
        if not isinstance(spec, dict):
            raise ValueError("feedback record carries no input spec")
        encoding = spec.get("encoding")
        if encoding == "pickle":
            from repro.runtime.distributed import decode_payload

            return decode_payload(spec["payload"])
        if encoding == "index":
            from repro.benchmarks_suite import get_benchmark

            test = spec.get("test")
            if not isinstance(test, str):
                raise ValueError("index feedback spec needs a 'test' name")
            index = int(spec["index"])
            seed = int(spec.get("seed", default_seed))
            variant = get_benchmark(test)
            variant_name = spec.get("variant") or variant.variant
            source = variant.benchmark.input_source(index + 1, variant_name, seed=seed)
            return source.materialize(index)
        raise ValueError(f"unknown feedback input encoding {encoding!r}")


class FeedbackLog:
    """Bounded, append-only, thread-safe buffer of feedback records.

    Appends past the capacity evict the oldest records (and count the
    evictions), so a long-lived server cannot grow memory without bound;
    the drift monitor only ever needs the most recent window anyway.
    ``total_appended`` keeps counting across evictions, which gives every
    record a stable global position -- the adaptation loop uses it to
    reason about "the last window" without caring what fell off the front.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._records: List[FeedbackRecord] = []
        #: Records evicted because the capacity was reached.
        self.evicted = 0
        #: Records ever appended (retained + evicted).
        self.total_appended = 0

    def append(self, record: FeedbackRecord) -> None:
        """Append one record, evicting the oldest past capacity."""
        with self._lock:
            self._records.append(record)
            self.total_appended += 1
            overflow = len(self._records) - self.capacity
            if overflow > 0:
                del self._records[:overflow]
                self.evicted += overflow

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[FeedbackRecord]:
        return iter(self.records())

    def records(self) -> List[FeedbackRecord]:
        """A snapshot copy of the retained records, oldest first."""
        with self._lock:
            return list(self._records)

    def window(self, n: int) -> List[FeedbackRecord]:
        """The most recent ``n`` retained records (fewer if the log is short)."""
        if n < 1:
            raise ValueError("window size must be >= 1")
        with self._lock:
            return list(self._records[-n:])

    def feature_matrix(self, records: Optional[Sequence[FeedbackRecord]] = None) -> np.ndarray:
        """The records' feature vectors stacked into an (n, M) array."""
        chosen = self.records() if records is None else list(records)
        if not chosen:
            return np.zeros((0, 0))
        return np.asarray([record.features for record in chosen], dtype=float)

    # -- trace persistence -------------------------------------------------

    def save_trace(self, path: str) -> int:
        """Write the retained records to ``path`` as JSONL; returns the count."""
        records = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record.to_json(), separators=(",", ":")))
                handle.write("\n")
        return len(records)

    @classmethod
    def load_trace(cls, path: str, capacity: Optional[int] = None) -> "FeedbackLog":
        """Rebuild a log from a JSONL trace file written by :meth:`save_trace`.

        Raises:
            ValueError: on a malformed trace line.
        """
        records: List[FeedbackRecord] = []
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(FeedbackRecord.from_json(json.loads(line)))
                except (json.JSONDecodeError, ValueError) as error:
                    raise ValueError(f"{path}:{lineno}: {error}") from None
        log = cls(capacity=capacity if capacity is not None else max(1, len(records)))
        for record in records:
            log.append(record)
        return log

    def __repr__(self) -> str:
        return (
            f"FeedbackLog(retained={len(self)}, capacity={self.capacity}, "
            f"evicted={self.evicted})"
        )
