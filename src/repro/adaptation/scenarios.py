"""Scripted drift scenarios and the offline adaptation replay harness.

The adaptation loop's correctness claim -- "a population shift trips the
monitor, retraining hot-swaps a better model, and regret drops" -- is only
testable if the shift itself is reproducible.  This module scripts it:

* :class:`MixtureInputSource` -- a lazy
  :class:`~repro.core.inputs.InputSource` whose population is a sequence
  of *phases*, each a weighted mixture over named generator families.
  Input *i* is a pure function of (scenario name, seed, i): one
  ``per_index_rng`` stream first draws the family by the phase's weights,
  then generates the item.  Shifting the weights between phases is the
  drift.
* :class:`DriftScenario` -- the full script: the training mixture the
  initial model learns, the phased serving stream, and the monitor /
  retrainer knobs.  :func:`sort_drift_scenario` builds the canonical one:
  train on sorted-ish lists, then shift the stream to heavy-duplicate and
  reverse-sorted lists the initial landmark set was never tuned for.
* :func:`replay_scenario` -- serve the stream twice through a
  :class:`~repro.serving.registry.ModelRegistry` (once with the
  adaptation loop live, once frozen on the initial model), then score
  both passes against the best *fixed* landmark in hindsight.  The
  difference is the selector's regret; adaptation has to strictly reduce
  it on the shifted tail, and the whole report must be bit-identical
  across executors (every cost is a deterministic work-unit count).

Everything runs through the measurement :class:`~repro.runtime.Runtime`,
so the replay reuses the run cache (the frozen pass re-serves inputs the
adaptive pass already executed) and fans out under any executor backend.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.benchmarks_suite import get_benchmark
from repro.benchmarks_suite.sort import generators as sort_generators
from repro.core.inputs import InputSource, per_index_rng
from repro.core.level1 import Level1Config, measure_performance
from repro.core.level2 import Level2Config
from repro.core.pipeline import InputAwareLearning
from repro.runtime import Runtime, default_runtime
from repro.serving.registry import ModelRegistry

from repro.adaptation.drift import DriftConfig, DriftMonitor
from repro.adaptation.feedback import FeedbackLog, FeedbackRecord
from repro.adaptation.retrainer import RetrainConfig, Retrainer

#: The sort benchmark's generator families, by name -- the building blocks
#: of every sort drift scenario.
SORT_FAMILIES: Dict[str, Callable[[np.random.Generator], np.ndarray]] = {
    family.__name__: family for family in sort_generators.SYNTHETIC_FAMILIES
}


@dataclass(frozen=True)
class MixturePhase:
    """``n`` inputs drawn from a weighted mixture of generator families."""

    n: int
    weights: Mapping[str, float]

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("phase length must be >= 0")
        if not self.weights:
            raise ValueError("phase needs at least one family weight")
        if any(weight < 0 for weight in self.weights.values()):
            raise ValueError("family weights must be >= 0")
        if sum(self.weights.values()) <= 0:
            raise ValueError("family weights must sum to > 0")


class MixtureInputSource(InputSource):
    """A phased family-mixture population, materialized per index.

    Input *i* belongs to the phase its index falls in; its RNG stream is
    ``per_index_rng(seed, i, "adapt.scenario", name)``, from which the
    family is drawn (by the phase's normalized weights, over the sorted
    family names -- insertion order of the mapping does not matter) and
    the item generated.  Purity in (name, seed, i) is what makes a
    scenario replayable bit-identically anywhere.
    """

    def __init__(
        self,
        phases: Sequence[MixturePhase],
        families: Mapping[str, Callable[[np.random.Generator], Any]],
        seed: int = 0,
        name: str = "mixture",
    ) -> None:
        if not phases:
            raise ValueError("need at least one phase")
        for phase in phases:
            unknown = sorted(set(phase.weights) - set(families))
            if unknown:
                raise KeyError(f"unknown families in phase weights: {unknown}")
        self.phases = list(phases)
        self.families = dict(families)
        self.seed = int(seed)
        self.name = name
        self._offsets: List[int] = []
        total = 0
        for phase in self.phases:
            self._offsets.append(total)
            total += phase.n
        self._n = total

    def __len__(self) -> int:
        return self._n

    def phase_bounds(self) -> List[Tuple[int, int]]:
        """Per phase, its [start, end) index range in the population."""
        return [
            (offset, offset + phase.n)
            for offset, phase in zip(self._offsets, self.phases)
        ]

    def phase_of(self, index: int) -> int:
        """Which phase the given input index belongs to."""
        if not 0 <= index < self._n:
            raise IndexError(index)
        position = int(np.searchsorted(self._offsets, index, side="right")) - 1
        # Skip backwards over zero-length phases sharing the offset.
        while self.phases[position].n == 0:
            position -= 1
        return position

    def materialize(self, index: int) -> Any:
        phase = self.phases[self.phase_of(index)]
        rng = per_index_rng(self.seed, index, "adapt.scenario", self.name)
        names = sorted(phase.weights)
        probabilities = np.asarray([phase.weights[name] for name in names], dtype=float)
        probabilities /= probabilities.sum()
        family = names[int(rng.choice(len(names), p=probabilities))]
        return self.families[family](rng)

    def __repr__(self) -> str:
        return (
            f"MixtureInputSource({self._n}, name={self.name!r}, "
            f"phases={len(self.phases)}, seed={self.seed})"
        )


@dataclass(frozen=True)
class DriftScenario:
    """One fully scripted drift experiment.

    Attributes:
        name: scenario label; namespaces every RNG stream.
        test: the Table-1 benchmark test being served.
        families: named generator families the mixtures draw from.
        training: the mixture the initial model is trained on.
        n_training: size of the initial training population.
        phases: the serving stream's phased mixture (the drift script).
        check_every: run a drift check after this many served requests.
        drift: monitor thresholds and hysteresis.
        retrain: retraining knobs.
        training_clusters / tuner_generations / tuner_population /
            tuning_neighbors / max_subsets: budget of the *initial*
            training run.
        seed: the single seed every stream derives from.
    """

    name: str
    test: str
    families: Mapping[str, Callable[[np.random.Generator], Any]]
    training: Mapping[str, float]
    n_training: int
    phases: Tuple[MixturePhase, ...]
    check_every: int = 16
    drift: DriftConfig = field(default_factory=DriftConfig)
    retrain: RetrainConfig = field(default_factory=RetrainConfig)
    training_clusters: int = 3
    tuner_generations: int = 2
    tuner_population: int = 6
    tuning_neighbors: int = 2
    max_subsets: int = 16
    seed: int = 0

    def training_source(self) -> MixtureInputSource:
        return MixtureInputSource(
            [MixturePhase(self.n_training, self.training)],
            self.families,
            seed=self.seed,
            name=f"{self.name}/train",
        )

    def serving_source(self) -> MixtureInputSource:
        return MixtureInputSource(
            list(self.phases),
            self.families,
            seed=self.seed,
            name=f"{self.name}/serve",
        )


#: Scale presets for the canonical sort scenario: (n_training, phase
#: lengths); drift-window/check cadence scale with them.
_SORT_SCALES: Dict[str, Dict[str, int]] = {
    "small": {"n_training": 24, "steady": 32, "shifted": 64, "window": 32},
    "medium": {"n_training": 36, "steady": 48, "shifted": 96, "window": 48},
    "large": {"n_training": 48, "steady": 64, "shifted": 160, "window": 64},
}

#: The population the initial sort model is trained on: order-friendly
#: lists (sorted, nearly sorted, some noise) -- no heavy duplication.
_SORT_TRAINING_WEIGHTS: Dict[str, float] = {
    "sorted_ascending": 0.35,
    "almost_sorted": 0.35,
    "uniform_random": 0.30,
}

#: The post-shift population: duplicate-heavy and reverse-ordered lists
#: the initial landmark set was never autotuned for.
_SORT_SHIFTED_WEIGHTS: Dict[str, float] = {
    "heavy_duplicates": 0.50,
    "reverse_sorted": 0.30,
    "narrow_range": 0.20,
}


def sort_drift_scenario(scale: str = "small", seed: int = 0) -> DriftScenario:
    """The canonical scenario: a sort service drifts into duplicate-heavy data.

    Phase 1 replays the training mixture (steady state -- the monitor must
    stay quiet); phase 2 switches to the shifted mixture (the monitor must
    trip, and retraining must find landmark configurations -- e.g. radix
    variants -- that the sorted-ish training population never asked for).

    Raises:
        KeyError: on an unknown scale name.
    """
    if scale not in _SORT_SCALES:
        raise KeyError(
            f"unknown scale {scale!r}; available: {sorted(_SORT_SCALES)}"
        )
    sizes = _SORT_SCALES[scale]
    window = sizes["window"]
    return DriftScenario(
        name=f"sort-shift-{scale}",
        test="sort2",
        families=SORT_FAMILIES,
        training=_SORT_TRAINING_WEIGHTS,
        n_training=sizes["n_training"],
        phases=(
            MixturePhase(sizes["steady"], _SORT_TRAINING_WEIGHTS),
            MixturePhase(sizes["shifted"], _SORT_SHIFTED_WEIGHTS),
        ),
        check_every=window // 2,
        # Thresholds sized for small windows: with ~32-64 live samples
        # against a few-dozen-input reference, per-feature PSI has a noise
        # floor of a few tenths (measured ~0.2 for same-mixture windows at
        # the small scale), while a genuine family shift lands > 2.  Demand
        # a full window, strong per-feature evidence, and 3 features
        # agreeing -- the steady phase stays quiet, the shift still trips
        # within one patience cycle.
        drift=DriftConfig(
            window=window,
            min_window=window,
            psi_threshold=1.0,
            ks_threshold=0.5,
            min_drifted_features=3,
            patience=2,
            cooldown=2,
            bins=5,
        ),
        retrain=RetrainConfig(
            n_clusters=3,
            tuner_generations=2,
            tuner_population=6,
            tuning_neighbors=2,
            max_subsets=16,
            seed=seed,
        ),
        seed=seed,
    )


SCENARIOS: Dict[str, Callable[[str, int], DriftScenario]] = {
    "sort-shift": sort_drift_scenario,
}


def get_scenario(name: str, scale: str = "small", seed: int = 0) -> DriftScenario:
    """Look up a named scenario at the given scale.

    Raises:
        KeyError: on an unknown scenario name.
    """
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}")
    return SCENARIOS[name](scale, seed)


@dataclass
class ServePass:
    """One pass of the serving stream through the registry."""

    served_costs: List[float]
    served_labels: List[int]
    drift_checks: int
    drift_trips: int
    drift_events: List[Dict[str, Any]]
    swaps: List[Dict[str, Any]]
    retrains: int
    retrains_rejected: int
    retrains_failed: int
    final_version: int
    final_landmark_count: int
    registry: ModelRegistry
    feedback: FeedbackLog


@dataclass
class ReplayReport:
    """Everything one :func:`replay_scenario` produced, JSON-ready."""

    scenario: str
    test: str
    seed: int
    n_training: int
    n_requests: int
    phase_bounds: List[Tuple[int, int]]
    adapted: ServePass
    frozen: ServePass
    hindsight_landmark: int
    hindsight_cost_total: float
    hindsight_cost_shifted: float
    regret_adapted_total: float
    regret_frozen_total: float
    regret_adapted_shifted: float
    regret_frozen_shifted: float

    @property
    def shifted_improvement(self) -> float:
        """Regret removed on the shifted tail by adapting (positive = win)."""
        return self.regret_frozen_shifted - self.regret_adapted_shifted

    def to_json(self) -> Dict[str, Any]:
        def passes(serve: ServePass) -> Dict[str, Any]:
            return {
                "served_cost_total": float(sum(serve.served_costs)),
                "served_costs": [float(cost) for cost in serve.served_costs],
                "served_labels": [int(label) for label in serve.served_labels],
                "drift_checks": serve.drift_checks,
                "drift_trips": serve.drift_trips,
                "drift_events": serve.drift_events,
                "swaps": serve.swaps,
                "retrains": serve.retrains,
                "retrains_rejected": serve.retrains_rejected,
                "retrains_failed": serve.retrains_failed,
                "final_version": serve.final_version,
                "final_landmark_count": serve.final_landmark_count,
            }

        return {
            "scenario": self.scenario,
            "test": self.test,
            "seed": self.seed,
            "n_training": self.n_training,
            "n_requests": self.n_requests,
            "phase_bounds": [list(bounds) for bounds in self.phase_bounds],
            "adapted": passes(self.adapted),
            "frozen": passes(self.frozen),
            "hindsight": {
                "landmark": self.hindsight_landmark,
                "cost_total": self.hindsight_cost_total,
                "cost_shifted": self.hindsight_cost_shifted,
            },
            "regret": {
                "adapted_total": self.regret_adapted_total,
                "frozen_total": self.regret_frozen_total,
                "adapted_shifted": self.regret_adapted_shifted,
                "frozen_shifted": self.regret_frozen_shifted,
                "shifted_improvement": self.shifted_improvement,
            },
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON -- the bit-identity fingerprint."""
        canonical = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _train_initial_model(
    scenario: DriftScenario, runtime: Optional[Runtime]
):
    variant = get_benchmark(scenario.test)
    program = variant.benchmark.program
    inputs = scenario.training_source().materialized()
    learner = InputAwareLearning(
        level1_config=Level1Config(
            n_clusters=scenario.training_clusters,
            seed=scenario.seed,
            tuner_generations=scenario.tuner_generations,
            tuner_population=scenario.tuner_population,
            tuning_neighbors=scenario.tuning_neighbors,
        ),
        level2_config=Level2Config(
            max_subsets=scenario.max_subsets, seed=scenario.seed
        ),
        test_fraction=0.5,
        seed=scenario.seed,
        runtime=runtime,
    )
    return program, learner.fit(program, inputs)


def _serve_stream(
    scenario: DriftScenario,
    runtime: Optional[Runtime],
    adapt: bool,
) -> ServePass:
    """Serve the scenario stream once; with ``adapt`` the loop is live."""
    program, training = _train_initial_model(scenario, runtime)
    registry = ModelRegistry()
    registry.publish(scenario.test, training.deployed)
    monitor = DriftMonitor(
        feature_names=program.features.feature_names(),
        reference=training.dataset.features,
        config=scenario.drift,
    )
    retrainer = Retrainer(
        program,
        registry,
        scenario.test,
        config=scenario.retrain,
        runtime=runtime,
    )
    log = FeedbackLog(capacity=max(scenario.drift.window * 4, 64))
    stream = scenario.serving_source()

    served_costs: List[float] = []
    served_labels: List[int] = []
    recent_inputs: List[Any] = []
    drift_events: List[Dict[str, Any]] = []
    swaps: List[Dict[str, Any]] = []
    checks = trips = retrains = rejected = failed = 0

    for index in range(len(stream)):
        program_input = stream.materialize(index)
        entry = registry.get(scenario.test)
        outcome = entry.deployed.run(program_input)
        values, _ = program.features.extract_vector(program_input)
        log.append(
            FeedbackRecord(
                features=tuple(float(v) for v in values),
                predicted_label=outcome.landmark_index,
                chosen_landmark=outcome.landmark_index,
                observed_cost=outcome.total_time,
                observed_accuracy=outcome.result.accuracy,
            )
        )
        recent_inputs.append(program_input)
        if len(recent_inputs) > scenario.drift.window:
            del recent_inputs[0]
        served_costs.append(float(outcome.total_time))
        served_labels.append(int(outcome.landmark_index))

        if not adapt or (index + 1) % scenario.check_every != 0:
            continue
        window_records = log.window(scenario.drift.window)
        report = monitor.check(log.feature_matrix(window_records))
        checks += 1
        drift_events.append(
            {
                "at": index + 1,
                "drifted": report.drifted,
                "window_drifted": report.window_drifted,
                "cooling_down": report.cooling_down,
                "insufficient": report.insufficient,
                "drifted_features": report.drifted_features,
            }
        )
        if not report.drifted:
            continue
        trips += 1
        retrains += 1
        result = retrainer.retrain_on_inputs(list(recent_inputs))
        swaps.append(
            {
                "at": index + 1,
                "swapped": result.swapped,
                "reason": result.reason,
                "version": result.entry.version,
                "old_cost": result.old_cost,
                "new_cost": result.new_cost,
                "landmarks_before": result.landmarks_before,
                "landmarks_after": result.landmarks_after,
            }
        )
        if result.swapped:
            monitor.notify_retrained(result.window_features)
        else:
            rejected += result.reason == "rejected"
            failed += result.reason.startswith("failed")
            # Back off either way: re-running the same retrain on the next
            # check would redo the tuning work just to fail identically.
            monitor.notify_retrained()

    final = registry.get(scenario.test)
    return ServePass(
        served_costs=served_costs,
        served_labels=served_labels,
        drift_checks=checks,
        drift_trips=trips,
        drift_events=drift_events,
        swaps=swaps,
        retrains=retrains,
        retrains_rejected=rejected,
        retrains_failed=failed,
        final_version=final.version,
        final_landmark_count=len(final.deployed.landmarks),
        registry=registry,
        feedback=log,
    )


def replay_scenario(
    scenario: DriftScenario, runtime: Optional[Runtime] = None
) -> ReplayReport:
    """Run the full before/after experiment and score the regret.

    Two serving passes -- adaptation live, then frozen on the initial
    model -- share one runtime, so the frozen pass recalls from the cache
    every run the adaptive pass already took.  Both are scored against the
    best fixed landmark in hindsight, drawn from the adaptive pass's
    *final* landmark set (a superset of the initial one after a swap, so
    the hindsight baseline is at least as strong as any model that
    served); regret is served cost minus that fixed selector's cost.
    """
    runtime = runtime if runtime is not None else default_runtime()
    variant = get_benchmark(scenario.test)
    program = variant.benchmark.program

    with runtime.telemetry.phase("adapt.replay.adapted"):
        adapted = _serve_stream(scenario, runtime, adapt=True)
    with runtime.telemetry.phase("adapt.replay.frozen"):
        frozen = _serve_stream(scenario, runtime, adapt=False)

    stream = scenario.serving_source()
    hindsight_landmarks = adapted.registry.get(scenario.test).deployed.landmarks
    with runtime.telemetry.phase("adapt.replay.hindsight"):
        measured = measure_performance(
            program, stream, hindsight_landmarks, runtime=runtime
        )
    times = measured["times"]
    totals = times.sum(axis=0)
    best_landmark = int(np.argmin(totals))

    shifted_start, n_requests = stream.phase_bounds()[-1][0], len(stream)
    shifted_totals = times[shifted_start:].sum(axis=0)
    hindsight_total = float(totals[best_landmark])
    hindsight_shifted = float(shifted_totals[best_landmark])

    def regret(costs: Sequence[float], start: int, hindsight: float) -> float:
        return float(sum(costs[start:]) - hindsight)

    return ReplayReport(
        scenario=scenario.name,
        test=scenario.test,
        seed=scenario.seed,
        n_training=scenario.n_training,
        n_requests=n_requests,
        phase_bounds=stream.phase_bounds(),
        adapted=adapted,
        frozen=frozen,
        hindsight_landmark=best_landmark,
        hindsight_cost_total=hindsight_total,
        hindsight_cost_shifted=hindsight_shifted,
        regret_adapted_total=regret(adapted.served_costs, 0, hindsight_total),
        regret_frozen_total=regret(frozen.served_costs, 0, hindsight_total),
        regret_adapted_shifted=regret(
            adapted.served_costs, shifted_start, hindsight_shifted
        ),
        regret_frozen_shifted=regret(
            frozen.served_costs, shifted_start, hindsight_shifted
        ),
    )
