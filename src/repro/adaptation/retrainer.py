"""Live retraining: re-tune landmarks for the drifted region and hot-swap.

When the :class:`~repro.adaptation.drift.DriftMonitor` trips, the serving
model's landmark set was tuned for a population that no longer arrives.
:class:`Retrainer` runs the paper's two-level pipeline again, but scoped
to the logged window that exhibits the drift:

1. cluster the window's feature vectors and autotune a landmark per
   cluster (:func:`~repro.core.level1.create_landmarks`) -- these are the
   configurations the *new* population wants;
2. take the union of the serving landmarks and the new ones, **serving
   landmarks first** -- the old classifier's labels stay valid column
   indices into the union-ordered matrices, which is what makes the
   old-vs-new validation below an apples-to-apples comparison;
3. measure every union landmark on every window input
   (:func:`~repro.core.level1.measure_performance` -- this is the step
   that rides :meth:`Runtime.run_tasks`, so it streams, caches, and fans
   out over whatever executor the runtime has);
4. retrain the Level-2 classifier zoo on the window dataset and select a
   production classifier (:func:`~repro.core.level2.run_level2`);
5. **validate before swapping**: score the old and the candidate
   classifier on the same held-out window rows; a candidate that is not
   strictly cheaper is rejected and the old model keeps serving;
6. publish the new :class:`~repro.core.pipeline.DeployedProgram` through
   the :class:`~repro.serving.registry.ModelRegistry` -- atomic by the
   registry's immutable-snapshot contract, so in-flight requests finish
   on the model they resolved and no request ever sees a half-swap.

Any exception inside the pipeline is contained: the old model keeps
serving, the failure is counted in telemetry
(``adapt_retrain_failures``), and no partial state reaches the registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.core.level1 import (
    Level1Config,
    cluster_inputs,
    create_landmarks,
    extract_features,
    measure_performance,
    representative_input_indices,
)
from repro.core.level2 import Level2Config, run_level2
from repro.core.dataset import PerformanceDataset
from repro.core.pipeline import DeployedProgram
from repro.core.selection import evaluate_classifier
from repro.lang.program import PetaBricksProgram
from repro.ml.crossval import train_test_split
from repro.runtime import Runtime, default_runtime
from repro.serving.registry import ModelEntry, ModelRegistry

from repro.adaptation.feedback import FeedbackRecord


@dataclass(frozen=True)
class RetrainConfig:
    """Knobs of one retraining pass.

    Attributes:
        n_clusters: how many clusters (hence candidate landmarks) to tune
            on the drifted window -- small, because the window is a slice
            of the population, not all of it.
        tuner_generations / tuner_population / tuning_neighbors: autotuner
            budget per window cluster (see :class:`Level1Config`).
        test_fraction: held-out fraction of the window used both to select
            the Level-2 production classifier and to validate old vs new.
        max_subsets: Level-2 feature-subset cap (kept small: retraining
            happens on the serving path's clock, not offline).
        cost_weight: Level-2 cost-matrix lambda.
        seed: seed for clustering, tuning, and the split -- a retrain is
            deterministic in (window, seed).
    """

    n_clusters: int = 3
    tuner_generations: int = 3
    tuner_population: int = 6
    tuning_neighbors: int = 2
    test_fraction: float = 0.5
    max_subsets: int = 32
    cost_weight: float = 0.5
    seed: int = 0

    def level1_config(self) -> Level1Config:
        return Level1Config(
            n_clusters=self.n_clusters,
            seed=self.seed,
            tuner_generations=self.tuner_generations,
            tuner_population=self.tuner_population,
            tuning_neighbors=self.tuning_neighbors,
        )

    def level2_config(self) -> Level2Config:
        return Level2Config(
            accuracy_cost_weight=self.cost_weight,
            max_subsets=self.max_subsets,
            seed=self.seed,
        )


@dataclass
class RetrainOutcome:
    """What one :meth:`Retrainer.retrain_on_inputs` call did.

    Attributes:
        swapped: True when a new model was published.
        reason: ``"swapped"``, ``"rejected"`` (candidate not better), or
            ``"failed: <error>"`` (pipeline raised; old model untouched).
        old_cost / new_cost: mean per-input validation cost of the serving
            and the candidate classifier on the held-out window rows
            (``inf`` marks an invalid classifier; ``None`` when the
            pipeline failed before validation).
        entry: the registry entry that is serving after the call -- the
            new one on a swap, the untouched old one otherwise.
        landmarks_before / landmarks_after: union set size bookkeeping
            (equal when every tuned landmark already existed).
        window_size: inputs the retrain saw.
        window_features: the window's feature matrix -- the caller hands
            it to :meth:`DriftMonitor.notify_retrained` as the new
            reference population after a swap.
        dataset: the window performance dataset (None on failure).
    """

    swapped: bool
    reason: str
    entry: ModelEntry
    old_cost: Optional[float] = None
    new_cost: Optional[float] = None
    landmarks_before: int = 0
    landmarks_after: int = 0
    window_size: int = 0
    window_features: Optional[np.ndarray] = None
    dataset: Optional[PerformanceDataset] = None


class Retrainer:
    """Re-tunes, revalidates, and hot-swaps one test's serving model."""

    def __init__(
        self,
        program: PetaBricksProgram,
        registry: ModelRegistry,
        test: str,
        config: Optional[RetrainConfig] = None,
        runtime: Optional[Runtime] = None,
    ) -> None:
        self.program = program
        self.registry = registry
        self.test = test
        self.config = config or RetrainConfig()
        self.runtime = runtime

    def _runtime(self) -> Runtime:
        return self.runtime if self.runtime is not None else default_runtime()

    def retrain(self, records: Sequence[FeedbackRecord]) -> RetrainOutcome:
        """Retrain from feedback records (inputs rebuilt from their specs)."""
        inputs = [record.materialize_input() for record in records]
        return self.retrain_on_inputs(inputs)

    def retrain_on_inputs(self, inputs: Sequence[Any]) -> RetrainOutcome:
        """Run the re-tune / revalidate / hot-swap pipeline on a window.

        Never raises for pipeline errors -- failure leaves the registry
        untouched and is reported in the outcome and in telemetry.
        """
        runtime = self._runtime()
        current = self.registry.get(self.test)
        runtime.telemetry.count("adapt_retrains")
        try:
            outcome = self._retrain_validated(list(inputs), current, runtime)
        except Exception as error:  # contained: old model keeps serving
            runtime.telemetry.count("adapt_retrain_failures")
            return RetrainOutcome(
                swapped=False,
                reason=f"failed: {error}",
                entry=self.registry.get(self.test),
                window_size=len(inputs),
            )
        if outcome.swapped:
            runtime.telemetry.count("adapt_swaps")
        else:
            runtime.telemetry.count("adapt_retrains_rejected")
        return outcome

    def _retrain_validated(
        self,
        inputs: List[Any],
        current: ModelEntry,
        runtime: Runtime,
    ) -> RetrainOutcome:
        config = self.config
        if len(inputs) < 4:
            raise ValueError("retraining needs at least 4 window inputs")
        base_landmarks = list(current.deployed.landmarks)

        with runtime.telemetry.phase("adapt.features"):
            extracted = extract_features(self.program, inputs)
        n_clusters = min(config.n_clusters, len(inputs))
        with runtime.telemetry.phase("adapt.cluster"):
            clustering = cluster_inputs(
                extracted["features"], n_clusters, seed=config.seed
            )
        representatives = representative_input_indices(
            clustering["normalized"],
            clustering["labels"],
            clustering["centroids"],
            n_neighbors=config.tuning_neighbors,
        )
        with runtime.telemetry.phase("adapt.tune"):
            tuned = create_landmarks(
                self.program,
                inputs,
                representatives,
                config.level1_config(),
                runtime=runtime,
            )

        # Union, serving landmarks first: the old classifier's labels stay
        # valid column indices, so it can be scored on the window dataset.
        landmarks = list(base_landmarks)
        for landmark in tuned["landmarks"]:
            if landmark not in landmarks:
                landmarks.append(landmark)

        with runtime.telemetry.phase("adapt.measure"):
            measured = measure_performance(
                self.program, inputs, landmarks, runtime=runtime
            )
        dataset = PerformanceDataset(
            feature_names=self.program.features.feature_names(),
            features=extracted["features"],
            extraction_costs=extracted["costs"],
            times=measured["times"],
            accuracies=measured["accuracies"],
            landmarks=landmarks,
            requirement=self.program.accuracy_requirement,
            inputs=inputs,
        )

        train_rows, test_rows = train_test_split(
            len(inputs), test_fraction=config.test_fraction, random_state=config.seed
        )
        with runtime.telemetry.phase("adapt.level2"):
            level2 = run_level2(
                dataset,
                train_rows,
                test_rows,
                config=config.level2_config(),
                runtime=runtime,
            )

        # Validation guard: both classifiers scored on the same held-out
        # window rows of the same dataset.  Not strictly cheaper -> reject.
        old_eval = evaluate_classifier(current.deployed.classifier, dataset, test_rows)
        new_eval = evaluate_classifier(level2.production.classifier, dataset, test_rows)
        common = dict(
            old_cost=old_eval.effective_cost,
            new_cost=new_eval.effective_cost,
            landmarks_before=len(base_landmarks),
            landmarks_after=len(landmarks),
            window_size=len(inputs),
            window_features=extracted["features"],
            dataset=dataset,
        )
        if not new_eval.effective_cost < old_eval.effective_cost:
            return RetrainOutcome(
                swapped=False, reason="rejected", entry=current, **common
            )

        deployed = DeployedProgram(
            program=self.program,
            landmarks=landmarks,
            classifier=level2.production.classifier,
            runtime=runtime,
        )
        entry = self.registry.publish(self.test, deployed)
        return RetrainOutcome(swapped=True, reason="swapped", entry=entry, **common)
