"""Online adaptation: drift detection, live retraining, and hot-swap.

The layer that closes the loop the paper leaves open: the selector is
trained once offline, but a live service sees its input population move.
:class:`FeedbackLog` captures the per-request signal the serving layer
already produces, :class:`DriftMonitor` watches its feature distribution
against the frozen training population, and :class:`Retrainer` re-tunes
landmarks and retrains the Level-2 classifier on the drifted window,
hot-swapping the result through the serving
:class:`~repro.serving.registry.ModelRegistry` only after validating it
against the incumbent.  :mod:`repro.adaptation.scenarios` scripts
deterministic population shifts and replays them end to end (the
``repro adapt-replay`` CLI), scoring selector regret before and after
adaptation.  See docs/adaptation.md.
"""

from repro.adaptation.drift import (
    DriftConfig,
    DriftMonitor,
    DriftReport,
    FeatureDrift,
)
from repro.adaptation.feedback import FeedbackLog, FeedbackRecord
from repro.adaptation.retrainer import RetrainConfig, RetrainOutcome, Retrainer
from repro.adaptation.scenarios import (
    DriftScenario,
    MixtureInputSource,
    MixturePhase,
    ReplayReport,
    SCENARIOS,
    get_scenario,
    replay_scenario,
    sort_drift_scenario,
)

__all__ = [
    "DriftConfig",
    "DriftMonitor",
    "DriftReport",
    "DriftScenario",
    "FeatureDrift",
    "FeedbackLog",
    "FeedbackRecord",
    "MixtureInputSource",
    "MixturePhase",
    "ReplayReport",
    "RetrainConfig",
    "RetrainOutcome",
    "Retrainer",
    "SCENARIOS",
    "get_scenario",
    "replay_scenario",
    "sort_drift_scenario",
]
