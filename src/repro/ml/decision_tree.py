"""Cost-sensitive CART decision tree.

The paper's Level-2 "Exhaustive Feature Subsets" classifiers are decision
trees trained on candidate feature subsets; because the label space has
``K1`` classes (one per landmark configuration) and misclassification costs
are highly asymmetric (predicting a slightly slower landmark is cheap,
predicting one that misses the accuracy target is catastrophic), the learning
algorithm must honour a full ``K1 x K1`` cost matrix (Section 3.2, "Setting
Up the Cost Matrix").

This implementation is a standard binary CART on numeric features with two
twists:

* the split criterion and leaf predictions can use an explicit cost matrix
  ``C[i, j]`` = cost of predicting ``j`` when the truth is ``i``;
* the number of candidate thresholds per feature is capped, which keeps
  training fast on the datasets used in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


def _sorted_quantile(sorted_values: np.ndarray, quantiles: np.ndarray) -> np.ndarray:
    """``np.quantile`` (linear method) on already-sorted data, bit-for-bit.

    Replicates NumPy's virtual-index arithmetic and its two-sided lerp
    (which switches to the ``b - (b-a)*(1-t)`` form at ``t >= 0.5``), so the
    results match ``np.quantile(values, quantiles)`` exactly while skipping
    the internal partition.
    """
    n = sorted_values.shape[0]
    virtual = quantiles * (n - 1)
    previous = np.floor(virtual)
    gamma = virtual - previous
    lower = sorted_values[previous.astype(np.int64)]
    upper = sorted_values[np.ceil(virtual).astype(np.int64)]
    diff = upper - lower
    result = lower + diff * gamma
    high = gamma >= 0.5
    result[high] = upper[high] - diff[high] * (1.0 - gamma[high])
    return result


@dataclass
class _Node:
    """A tree node; leaves carry a prediction, internal nodes a split."""

    prediction: int
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None or self.right is None


class DecisionTreeClassifier:
    """Binary-split decision tree with optional misclassification-cost matrix.

    Args:
        max_depth: maximum tree depth (root is depth 0).
        min_samples_split: do not split nodes smaller than this.
        min_samples_leaf: both children of a split must have at least this
            many samples.
        max_thresholds: cap on candidate thresholds per feature per node
            (quantile-based), trading a little split optimality for speed.
        cost_matrix: optional (n_classes, n_classes) array; entry (i, j) is
            the cost of predicting class j for a sample of true class i.
            When omitted, 0/1 misclassification cost (i.e. Gini-like
            behaviour) is used.
        random_state: seed used only to break ties deterministically.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_thresholds: int = 24,
        cost_matrix: Optional[np.ndarray] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self.cost_matrix = None if cost_matrix is None else np.asarray(cost_matrix, dtype=float)
        self.random_state = random_state
        self._root: Optional[_Node] = None
        self._flat_cache: Optional[tuple] = None
        self.n_classes_: int = 0
        self.classes_: Optional[np.ndarray] = None

    # -- public API -----------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Grow the tree on features ``X`` (n_samples, n_features) and labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ValueError("y must be 1-D and aligned with X")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")

        self.classes_ = np.unique(y)
        self.n_classes_ = int(self.classes_.max()) + 1
        if self.cost_matrix is not None:
            if self.cost_matrix.shape[0] < self.n_classes_ or self.cost_matrix.shape[1] < self.n_classes_:
                raise ValueError(
                    "cost_matrix is smaller than the number of classes "
                    f"({self.cost_matrix.shape} vs {self.n_classes_})"
                )
        # Presort every column once (stable); each node's sorted order is the
        # root order filtered by membership -- identical to re-sorting the
        # node's rows (stable sort of a subsequence preserves the original
        # relative order of equal elements), without the per-node argsort.
        self._fit_X = X
        self._fit_y = y
        orders = [np.argsort(X[:, f], kind="stable") for f in range(X.shape[1])]
        try:
            self._root = self._grow(orders, depth=0)
        finally:
            del self._fit_X, self._fit_y
        self._flat_cache = None
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for every row of ``X`` (vectorized).

        Whole chunks descend the flattened tree together: at each step every
        still-internal row gathers its node's feature and threshold and moves
        to a child, so the work per tree level is a few array ops instead of
        a Python node walk per row.  Identical comparisons, identical labels.
        """
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if X.shape[0] == 0:
            return np.empty(0, dtype=int)
        features, thresholds, lefts, rights, predictions = self._flat()
        nodes = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            internal = features[nodes] >= 0
            if not internal.any():
                break
            rows = np.flatnonzero(internal)
            at = nodes[rows]
            go_left = X[rows, features[at]] <= thresholds[at]
            nodes[rows] = np.where(go_left, lefts[at], rights[at])
        return predictions[nodes].astype(int)

    def predict_one(self, x: np.ndarray) -> int:
        """Predict the class label of a single feature vector."""
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        return self._predict_one(np.asarray(x, dtype=float))

    def depth(self) -> int:
        """Actual depth of the grown tree."""
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        return self._depth_of(self._root)

    def n_leaves(self) -> int:
        """Number of leaves in the grown tree."""
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        return self._count_leaves(self._root)

    # -- internals ------------------------------------------------------

    def _class_counts(self, y: np.ndarray) -> np.ndarray:
        return np.bincount(y, minlength=self.n_classes_).astype(float)

    def _expected_costs(self, counts: np.ndarray) -> np.ndarray:
        """Expected cost of predicting each class: ``sum_i counts[i] * C[i, j]``.

        Accepts a single ``(n_classes,)`` count vector or a stacked
        ``(n, n_classes)`` matrix.  Both shapes reduce over the true-class
        axis with the same in-order accumulation, so the batched threshold
        scan and the one-vector-at-a-time path produce bit-identical costs.
        """
        matrix = self.cost_matrix[: self.n_classes_, : self.n_classes_]
        return (counts[..., :, None] * matrix).sum(axis=-2)

    def _leaf_prediction(self, counts: np.ndarray) -> int:
        """The class minimizing expected cost under the node's distribution."""
        if self.cost_matrix is None:
            return int(np.argmax(counts))
        return int(np.argmin(self._expected_costs(counts)))

    def _node_impurity(self, counts: np.ndarray) -> float:
        """Expected cost (or Gini impurity) of the best single prediction."""
        total = counts.sum()
        if total <= 0:
            return 0.0
        if self.cost_matrix is None:
            probabilities = counts / total
            return float(1.0 - np.sum(probabilities ** 2))
        return float(np.min(self._expected_costs(counts)) / total)

    def _impurity_rows(self, counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
        """:meth:`_node_impurity` for a stack of count vectors at once.

        ``totals`` must be the (positive) per-row count sums; every row's
        value is bit-identical to the scalar helper's.
        """
        if self.cost_matrix is None:
            probabilities = counts / totals[:, None]
            return 1.0 - np.sum(probabilities ** 2, axis=1)
        return np.min(self._expected_costs(counts), axis=1) / totals

    def _grow(self, orders: List[np.ndarray], depth: int) -> _Node:
        y = self._fit_y[orders[0]]
        counts = self._class_counts(y)
        prediction = self._leaf_prediction(counts)
        node = _Node(prediction=prediction)

        if (
            depth >= self.max_depth
            or y.shape[0] < self.min_samples_split
            or np.count_nonzero(counts) <= 1
        ):
            return node

        split = self._best_split(orders, counts)
        if split is None:
            return node
        feature, threshold = split
        go_left = self._fit_X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow([o[go_left[o]] for o in orders], depth + 1)
        node.right = self._grow([o[~go_left[o]] for o in orders], depth + 1)
        return node

    def _best_split(
        self, orders: List[np.ndarray], parent_counts: np.ndarray
    ) -> Optional[tuple]:
        n_samples = orders[0].shape[0]
        n_features = len(orders)
        parent_impurity = self._node_impurity(parent_counts)
        best_gain = 1e-12
        best: Optional[tuple] = None

        for feature in range(n_features):
            order = orders[feature]
            column = self._fit_X[order, feature]  # ascending by construction
            thresholds = self._candidate_thresholds_sorted(column)
            if thresholds.shape[0] == 0:
                continue
            # The left side of threshold t is exactly the first
            # searchsorted(t) samples of the sorted column, so cumulative
            # one-hot label counts give every threshold's (integer-exact)
            # class counts in one pass instead of a mask + bincount per
            # threshold.
            cumulative = np.zeros((n_samples + 1, self.n_classes_), dtype=np.int64)
            cumulative[np.arange(1, n_samples + 1), self._fit_y[order]] = 1
            np.cumsum(cumulative, axis=0, out=cumulative)
            n_left = np.searchsorted(column, thresholds, side="right")
            n_right = n_samples - n_left
            valid = (n_left >= self.min_samples_leaf) & (n_right >= self.min_samples_leaf)
            if not valid.any():
                continue
            candidates = np.flatnonzero(valid)
            left_counts = cumulative[n_left[candidates]].astype(float)
            right_counts = parent_counts - left_counts
            impurity = (
                n_left[candidates] * self._impurity_rows(left_counts, left_counts.sum(axis=1))
                + n_right[candidates] * self._impurity_rows(right_counts, right_counts.sum(axis=1))
            ) / n_samples
            gains = parent_impurity - impurity
            # Replicates the scalar scan's tie-breaking: the running best is
            # replaced only on strict improvement, so within a feature the
            # winner is the *first* threshold attaining the maximum gain.
            pick = int(np.argmax(gains))
            if gains[pick] > best_gain:
                best_gain = float(gains[pick])
                best = (feature, float(thresholds[candidates[pick]]))
        return best

    def _candidate_thresholds(self, column: np.ndarray) -> np.ndarray:
        unique = np.unique(column)
        if unique.shape[0] <= 1:
            return np.empty(0)
        midpoints = (unique[:-1] + unique[1:]) / 2.0
        if midpoints.shape[0] <= self.max_thresholds:
            return midpoints
        quantiles = np.linspace(0.0, 1.0, self.max_thresholds + 2)[1:-1]
        return np.unique(np.quantile(column, quantiles))

    def _candidate_thresholds_sorted(self, column: np.ndarray) -> np.ndarray:
        """:meth:`_candidate_thresholds` for an already-ascending column.

        Distinct values fall out of a run-boundary scan and quantiles out of
        direct order-statistic interpolation, skipping the sort/partition
        that ``np.unique``/``np.quantile`` would redo per node per feature.
        NaN-bearing columns (whose NaNs ``np.unique`` collapses but a
        ``!=`` scan would not) fall back to the reference implementation.
        """
        n = column.shape[0]
        if n == 0:
            return np.empty(0)
        if column[-1] != column[-1]:  # sorted => NaNs, if any, are at the end
            return self._candidate_thresholds(column)
        keep = np.empty(n, dtype=bool)
        keep[0] = True
        np.not_equal(column[1:], column[:-1], out=keep[1:])
        unique = column[keep]
        if unique.shape[0] <= 1:
            return np.empty(0)
        midpoints = (unique[:-1] + unique[1:]) / 2.0
        if midpoints.shape[0] <= self.max_thresholds:
            return midpoints
        quantiles = np.linspace(0.0, 1.0, self.max_thresholds + 2)[1:-1]
        return np.unique(_sorted_quantile(column, quantiles))

    def _flat(self) -> tuple:
        """Array view of the tree for vectorized descent.

        Returns ``(features, thresholds, lefts, rights, predictions)`` where
        ``features[i] == -1`` marks a leaf.  Built lazily and memoized
        (``getattr`` so trees unpickled from older caches work too).
        """
        cache = getattr(self, "_flat_cache", None)
        if cache is None:
            features: List[int] = []
            thresholds: List[float] = []
            lefts: List[int] = []
            rights: List[int] = []
            predictions: List[int] = []

            def visit(node: _Node) -> int:
                index = len(features)
                features.append(-1)
                thresholds.append(0.0)
                lefts.append(0)
                rights.append(0)
                predictions.append(node.prediction)
                if not node.is_leaf:
                    features[index] = node.feature
                    thresholds[index] = node.threshold
                    lefts[index] = visit(node.left)  # type: ignore[arg-type]
                    rights[index] = visit(node.right)  # type: ignore[arg-type]
                return index

            assert self._root is not None
            visit(self._root)
            cache = (
                np.asarray(features, dtype=np.int64),
                np.asarray(thresholds, dtype=float),
                np.asarray(lefts, dtype=np.int64),
                np.asarray(rights, dtype=np.int64),
                np.asarray(predictions, dtype=np.int64),
            )
            self._flat_cache = cache
        return cache

    def _predict_one(self, x: np.ndarray) -> int:
        node = self._root
        assert node is not None
        while not node.is_leaf:
            if x[node.feature] <= node.threshold:
                node = node.left  # type: ignore[assignment]
            else:
                node = node.right  # type: ignore[assignment]
        return node.prediction

    def _depth_of(self, node: _Node) -> int:
        if node.is_leaf:
            return 0
        return 1 + max(self._depth_of(node.left), self._depth_of(node.right))  # type: ignore[arg-type]

    def _count_leaves(self, node: _Node) -> int:
        if node.is_leaf:
            return 1
        return self._count_leaves(node.left) + self._count_leaves(node.right)  # type: ignore[arg-type]
