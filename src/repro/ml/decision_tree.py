"""Cost-sensitive CART decision tree.

The paper's Level-2 "Exhaustive Feature Subsets" classifiers are decision
trees trained on candidate feature subsets; because the label space has
``K1`` classes (one per landmark configuration) and misclassification costs
are highly asymmetric (predicting a slightly slower landmark is cheap,
predicting one that misses the accuracy target is catastrophic), the learning
algorithm must honour a full ``K1 x K1`` cost matrix (Section 3.2, "Setting
Up the Cost Matrix").

This implementation is a standard binary CART on numeric features with two
twists:

* the split criterion and leaf predictions can use an explicit cost matrix
  ``C[i, j]`` = cost of predicting ``j`` when the truth is ``i``;
* the number of candidate thresholds per feature is capped, which keeps
  training fast on the datasets used in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class _Node:
    """A tree node; leaves carry a prediction, internal nodes a split."""

    prediction: int
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None or self.right is None


class DecisionTreeClassifier:
    """Binary-split decision tree with optional misclassification-cost matrix.

    Args:
        max_depth: maximum tree depth (root is depth 0).
        min_samples_split: do not split nodes smaller than this.
        min_samples_leaf: both children of a split must have at least this
            many samples.
        max_thresholds: cap on candidate thresholds per feature per node
            (quantile-based), trading a little split optimality for speed.
        cost_matrix: optional (n_classes, n_classes) array; entry (i, j) is
            the cost of predicting class j for a sample of true class i.
            When omitted, 0/1 misclassification cost (i.e. Gini-like
            behaviour) is used.
        random_state: seed used only to break ties deterministically.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_thresholds: int = 24,
        cost_matrix: Optional[np.ndarray] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self.cost_matrix = None if cost_matrix is None else np.asarray(cost_matrix, dtype=float)
        self.random_state = random_state
        self._root: Optional[_Node] = None
        self.n_classes_: int = 0
        self.classes_: Optional[np.ndarray] = None

    # -- public API -----------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Grow the tree on features ``X`` (n_samples, n_features) and labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.ndim != 1 or y.shape[0] != X.shape[0]:
            raise ValueError("y must be 1-D and aligned with X")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")

        self.classes_ = np.unique(y)
        self.n_classes_ = int(self.classes_.max()) + 1
        if self.cost_matrix is not None:
            if self.cost_matrix.shape[0] < self.n_classes_ or self.cost_matrix.shape[1] < self.n_classes_:
                raise ValueError(
                    "cost_matrix is smaller than the number of classes "
                    f"({self.cost_matrix.shape} vs {self.n_classes_})"
                )
        self._root = self._grow(X, y, depth=0)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for every row of ``X``."""
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return np.array([self._predict_one(row) for row in X], dtype=int)

    def predict_one(self, x: np.ndarray) -> int:
        """Predict the class label of a single feature vector."""
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        return self._predict_one(np.asarray(x, dtype=float))

    def depth(self) -> int:
        """Actual depth of the grown tree."""
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        return self._depth_of(self._root)

    def n_leaves(self) -> int:
        """Number of leaves in the grown tree."""
        if self._root is None:
            raise RuntimeError("classifier is not fitted")
        return self._count_leaves(self._root)

    # -- internals ------------------------------------------------------

    def _class_counts(self, y: np.ndarray) -> np.ndarray:
        return np.bincount(y, minlength=self.n_classes_).astype(float)

    def _leaf_prediction(self, counts: np.ndarray) -> int:
        """The class minimizing expected cost under the node's distribution."""
        if self.cost_matrix is None:
            return int(np.argmax(counts))
        # expected cost of predicting j = sum_i counts[i] * C[i, j]
        expected = counts @ self.cost_matrix[: self.n_classes_, : self.n_classes_]
        return int(np.argmin(expected))

    def _node_impurity(self, counts: np.ndarray) -> float:
        """Expected cost (or Gini impurity) of the best single prediction."""
        total = counts.sum()
        if total <= 0:
            return 0.0
        if self.cost_matrix is None:
            probabilities = counts / total
            return float(1.0 - np.sum(probabilities ** 2))
        expected = counts @ self.cost_matrix[: self.n_classes_, : self.n_classes_]
        return float(np.min(expected) / total)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        counts = self._class_counts(y)
        prediction = self._leaf_prediction(counts)
        node = _Node(prediction=prediction)

        if (
            depth >= self.max_depth
            or y.shape[0] < self.min_samples_split
            or np.unique(y).shape[0] <= 1
        ):
            return node

        split = self._best_split(X, y, counts)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, parent_counts: np.ndarray
    ) -> Optional[tuple]:
        n_samples, n_features = X.shape
        parent_impurity = self._node_impurity(parent_counts)
        best_gain = 1e-12
        best: Optional[tuple] = None

        for feature in range(n_features):
            column = X[:, feature]
            thresholds = self._candidate_thresholds(column)
            for threshold in thresholds:
                mask = column <= threshold
                n_left = int(mask.sum())
                n_right = n_samples - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                left_counts = self._class_counts(y[mask])
                right_counts = parent_counts - left_counts
                impurity = (
                    n_left * self._node_impurity(left_counts)
                    + n_right * self._node_impurity(right_counts)
                ) / n_samples
                gain = parent_impurity - impurity
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold))
        return best

    def _candidate_thresholds(self, column: np.ndarray) -> np.ndarray:
        unique = np.unique(column)
        if unique.shape[0] <= 1:
            return np.empty(0)
        midpoints = (unique[:-1] + unique[1:]) / 2.0
        if midpoints.shape[0] <= self.max_thresholds:
            return midpoints
        quantiles = np.linspace(0.0, 1.0, self.max_thresholds + 2)[1:-1]
        return np.unique(np.quantile(column, quantiles))

    def _predict_one(self, x: np.ndarray) -> int:
        node = self._root
        assert node is not None
        while not node.is_leaf:
            if x[node.feature] <= node.threshold:
                node = node.left  # type: ignore[assignment]
            else:
                node = node.right  # type: ignore[assignment]
        return node.prediction

    def _depth_of(self, node: _Node) -> int:
        if node.is_leaf:
            return 0
        return 1 + max(self._depth_of(node.left), self._depth_of(node.right))  # type: ignore[arg-type]

    def _count_leaves(self, node: _Node) -> int:
        if node.is_leaf:
            return 1
        return self._count_leaves(node.left) + self._count_leaves(node.right)  # type: ignore[arg-type]
