"""Discretized naive-Bayes model for the incremental-feature classifier.

The paper's "Incremental Feature Examination classifier" (Section 3.2,
method 4) divides every feature into decision regions, models the
per-class probability of landing in each region, and at deployment time
acquires features one at a time, updating class posteriors until one class
exceeds a confidence threshold.

This module provides the probabilistic core: per-feature, per-class
categorical distributions over quantile-based decision regions, with Laplace
smoothing, plus posterior updates that can be applied feature by feature.
The deployment-time sequential logic lives in
:mod:`repro.core.classifiers`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class DiscretizedNaiveBayes:
    """Per-feature decision-region likelihood model with class priors.

    Args:
        n_regions: number of decision regions per feature (quantile bins).
        smoothing: Laplace smoothing constant added to every region count.
    """

    def __init__(self, n_regions: int = 8, smoothing: float = 1.0) -> None:
        if n_regions < 2:
            raise ValueError("n_regions must be >= 2")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.n_regions = n_regions
        self.smoothing = smoothing
        self.n_classes_: int = 0
        self.n_features_: int = 0
        self.priors_: Optional[np.ndarray] = None
        # bin edges per feature: list of arrays of length (n_regions - 1)
        self.edges_: List[np.ndarray] = []
        # likelihoods_[f][region, class] = P(feature f in region | class)
        self.likelihoods_: List[np.ndarray] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DiscretizedNaiveBayes":
        """Estimate priors, decision regions, and per-region likelihoods."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if y.shape[0] != X.shape[0]:
            raise ValueError("X and y are misaligned")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")

        self.n_classes_ = int(y.max()) + 1
        self.n_features_ = X.shape[1]

        class_counts = np.bincount(y, minlength=self.n_classes_).astype(float)
        self.priors_ = (class_counts + self.smoothing) / (
            class_counts.sum() + self.smoothing * self.n_classes_
        )

        self.edges_ = []
        self.likelihoods_ = []
        for feature in range(self.n_features_):
            column = X[:, feature]
            edges = self._decision_region_edges(column)
            regions = self._assign_regions(column, edges)
            likelihood = np.full(
                (len(edges) + 1, self.n_classes_), self.smoothing, dtype=float
            )
            np.add.at(likelihood, (regions, y), 1.0)
            likelihood /= likelihood.sum(axis=0, keepdims=True)
            self.edges_.append(edges)
            self.likelihoods_.append(likelihood)
        return self

    # -- querying -------------------------------------------------------

    def region_of(self, feature: int, value: float) -> int:
        """Map a raw feature value to its decision-region index."""
        self._check_fitted()
        return int(np.searchsorted(self.edges_[feature], value, side="right"))

    def log_likelihood(self, feature: int, value: float) -> np.ndarray:
        """Per-class log likelihood of observing ``value`` for ``feature``."""
        self._check_fitted()
        region = self.region_of(feature, value)
        return np.log(self.likelihoods_[feature][region])

    def log_prior(self) -> np.ndarray:
        """Per-class log prior probabilities."""
        self._check_fitted()
        assert self.priors_ is not None
        return np.log(self.priors_)

    def posterior(self, feature_values: Sequence[tuple]) -> np.ndarray:
        """Class posterior given a set of ``(feature_index, value)`` observations.

        The returned vector sums to one.  Passing an empty sequence returns
        the prior.
        """
        self._check_fitted()
        log_posterior = self.log_prior().copy()
        for feature, value in feature_values:
            log_posterior += self.log_likelihood(feature, value)
        log_posterior -= log_posterior.max()
        posterior = np.exp(log_posterior)
        return posterior / posterior.sum()

    def log_likelihood_batch(self, feature: int, values: np.ndarray) -> np.ndarray:
        """Per-class log likelihoods for a whole column of raw values.

        Region assignment is one ``np.searchsorted`` over all rows; the
        returned ``(n, n_classes)`` matrix's row ``i`` is bit-identical to
        ``log_likelihood(feature, values[i])``.
        """
        self._check_fitted()
        regions = self._assign_regions(np.asarray(values, dtype=float), self.edges_[feature])
        return np.log(self.likelihoods_[feature])[regions]

    def posterior_batch(
        self, X: np.ndarray, features: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Class posteriors for many observation rows in one log-space pass.

        Args:
            X: ``(n, len(features))`` raw feature values, one column per
                observed feature.
            features: the model feature index of each column; defaults to
                ``0..n_features-1`` (all features, in order).

        Returns:
            ``(n, n_classes)`` posteriors; row ``i`` is bit-identical to
            ``posterior(list(zip(features, X[i])))`` -- the log-likelihood
            columns accumulate in the same order, and the max-shift /
            exponentiation / normalization apply row-wise identically.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if features is None:
            features = range(self.n_features_)
        log_posterior = np.tile(self.log_prior(), (X.shape[0], 1))
        for column, feature in enumerate(features):
            log_posterior += self.log_likelihood_batch(int(feature), X[:, column])
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        posterior = np.exp(log_posterior)
        return posterior / posterior.sum(axis=1, keepdims=True)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Maximum-a-posteriori prediction using all features."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return np.argmax(self.posterior_batch(X), axis=1).astype(int)

    # -- internals ------------------------------------------------------

    def _decision_region_edges(self, column: np.ndarray) -> np.ndarray:
        """Quantile-based region edges; duplicates collapse for discrete columns."""
        quantiles = np.linspace(0.0, 1.0, self.n_regions + 1)[1:-1]
        edges = np.unique(np.quantile(column, quantiles))
        return edges

    @staticmethod
    def _assign_regions(column: np.ndarray, edges: np.ndarray) -> np.ndarray:
        return np.searchsorted(edges, column, side="right")

    def _check_fitted(self) -> None:
        if self.priors_ is None:
            raise RuntimeError("model is not fitted")
