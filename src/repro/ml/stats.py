"""Small statistics helpers shared by the learning framework.

Besides the aggregation means used by the experiment reporting, this module
holds the two distribution-shift statistics the adaptation layer's
:class:`~repro.adaptation.drift.DriftMonitor` runs per feature:
:func:`population_stability_index` (PSI, the banking-industry drift score
over quantile bins of the reference population) and :func:`ks_statistic`
(the two-sample Kolmogorov-Smirnov sup-distance between empirical CDFs).
Both are pure NumPy and deterministic in their inputs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def argmin_with_ties(values: Sequence[float], tolerance: float = 1e-12) -> List[int]:
    """Return all indices whose value is within ``tolerance`` of the minimum.

    The Level-2 labelling step needs "the best landmark for this input";
    when several landmarks tie (common for tiny inputs where every algorithm
    costs the same) downstream code may want to break the tie deterministically
    or by a secondary criterion, so we return all of them.

    Raises:
        ValueError: if ``values`` is empty.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("argmin_with_ties: empty input")
    minimum = float(np.min(array))
    return [int(i) for i in np.flatnonzero(array <= minimum + tolerance)]


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean.

    Raises:
        ValueError: on length mismatch or non-positive total weight.
    """
    values_array = np.asarray(list(values), dtype=float)
    weights_array = np.asarray(list(weights), dtype=float)
    if values_array.shape != weights_array.shape:
        raise ValueError("weighted_mean: length mismatch")
    total = float(np.sum(weights_array))
    if total <= 0:
        raise ValueError("weighted_mean: total weight must be positive")
    return float(np.dot(values_array, weights_array) / total)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for aggregate speedups).

    Raises:
        ValueError: if any value is non-positive or the input is empty.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("geometric_mean: empty input")
    if np.any(array <= 0):
        raise ValueError("geometric_mean: values must be positive")
    return float(np.exp(np.mean(np.log(array))))


def quantile_bin_edges(reference: Sequence[float], bins: int = 10) -> np.ndarray:
    """Interior bin edges at the reference population's quantiles.

    Returns up to ``bins - 1`` strictly increasing edges; duplicates from a
    discrete or constant reference are collapsed, so the result may be
    shorter (a constant reference keeps a single edge at its value -- live
    samples at that constant score PSI 0, samples that moved off it land in
    the other bin and score high, which is the right reading of drift in a
    constant feature).

    Raises:
        ValueError: on an empty reference or ``bins < 2``.
    """
    array = np.asarray(list(reference), dtype=float)
    if array.size == 0:
        raise ValueError("quantile_bin_edges: empty reference")
    if bins < 2:
        raise ValueError("quantile_bin_edges: need at least 2 bins")
    quantiles = np.linspace(0.0, 1.0, bins + 1)[1:-1]
    return np.unique(np.quantile(array, quantiles))


def _bin_proportions(values: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Fraction of ``values`` per bin, bins being the edge-separated cells.

    ``len(edges) + 1`` open-ended bins: ``(-inf, e0], (e0, e1], ...,
    (e_last, inf)``.  Open ends mean a live value outside the reference's
    range still lands in a bin (the outermost one) instead of vanishing.
    """
    positions = np.searchsorted(edges, values, side="left")
    counts = np.bincount(positions, minlength=edges.size + 1).astype(float)
    return counts / values.size


def population_stability_index(
    reference: Sequence[float],
    live: Sequence[float],
    bins: int = 10,
    epsilon: float = 1e-4,
) -> float:
    """PSI of a live sample against a reference population.

    Bins come from the reference's quantiles (so every bin holds roughly
    equal reference mass and the score is scale free); both samples are
    histogrammed into them and the index is
    ``sum((p_live - p_ref) * ln(p_live / p_ref))`` with ``epsilon``
    flooring empty cells.  The conventional reading: < 0.1 stable,
    0.1-0.25 moderate shift, > 0.25 significant shift.

    Always >= 0, and 0 exactly when the binned proportions coincide.

    Raises:
        ValueError: if either sample is empty.
    """
    live_array = np.asarray(list(live), dtype=float)
    if live_array.size == 0:
        raise ValueError("population_stability_index: empty live sample")
    edges = quantile_bin_edges(reference, bins=bins)
    reference_array = np.asarray(list(reference), dtype=float)
    expected = np.maximum(_bin_proportions(reference_array, edges), epsilon)
    actual = np.maximum(_bin_proportions(live_array, edges), epsilon)
    return float(np.sum((actual - expected) * np.log(actual / expected)))


def ks_statistic(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic: sup |ECDF_a - ECDF_b|.

    In [0, 1]; 0 when the samples are identical, 1 when their supports are
    disjoint.  No p-value is attached -- the drift monitor compares the raw
    statistic against a configured threshold, which keeps the check
    deterministic and dependency free.

    Raises:
        ValueError: if either sample is empty.
    """
    a = np.sort(np.asarray(list(sample_a), dtype=float))
    b = np.sort(np.asarray(list(sample_b), dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("ks_statistic: empty sample")
    support = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, support, side="right") / a.size
    cdf_b = np.searchsorted(b, support, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean of positive values.

    Raises:
        ValueError: if any value is non-positive or the input is empty.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("harmonic_mean: empty input")
    if np.any(array <= 0):
        raise ValueError("harmonic_mean: values must be positive")
    return float(array.size / np.sum(1.0 / array))
