"""Small statistics helpers shared by the learning framework."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def argmin_with_ties(values: Sequence[float], tolerance: float = 1e-12) -> List[int]:
    """Return all indices whose value is within ``tolerance`` of the minimum.

    The Level-2 labelling step needs "the best landmark for this input";
    when several landmarks tie (common for tiny inputs where every algorithm
    costs the same) downstream code may want to break the tie deterministically
    or by a secondary criterion, so we return all of them.

    Raises:
        ValueError: if ``values`` is empty.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("argmin_with_ties: empty input")
    minimum = float(np.min(array))
    return [int(i) for i in np.flatnonzero(array <= minimum + tolerance)]


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean.

    Raises:
        ValueError: on length mismatch or non-positive total weight.
    """
    values_array = np.asarray(list(values), dtype=float)
    weights_array = np.asarray(list(weights), dtype=float)
    if values_array.shape != weights_array.shape:
        raise ValueError("weighted_mean: length mismatch")
    total = float(np.sum(weights_array))
    if total <= 0:
        raise ValueError("weighted_mean: total weight must be positive")
    return float(np.dot(values_array, weights_array) / total)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for aggregate speedups).

    Raises:
        ValueError: if any value is non-positive or the input is empty.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("geometric_mean: empty input")
    if np.any(array <= 0):
        raise ValueError("geometric_mean: values must be positive")
    return float(np.exp(np.mean(np.log(array))))


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean of positive values.

    Raises:
        ValueError: if any value is non-positive or the input is empty.
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("harmonic_mean: empty input")
    if np.any(array <= 0):
        raise ValueError("harmonic_mean: values must be positive")
    return float(array.size / np.sum(1.0 / array))
