"""Machine-learning substrate.

The paper's learning framework relies on standard ML machinery -- K-means
clustering for Level-1 input grouping, decision trees for the exhaustive
feature-subset classifiers, a discretized Bayes model for the incremental
feature-examination classifier, and cross-validation for classifier
evaluation.  scikit-learn is not available in this offline environment, so
this subpackage implements the needed pieces from scratch on top of numpy.

All estimators follow a small common convention: ``fit(X, y)`` /
``predict(X)`` with numpy arrays, explicit ``random_state`` seeds for
determinism, and no hidden global state.
"""

from repro.ml.crossval import StratifiedKFold, train_test_split
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.kmeans import KMeans, KMeansResult
from repro.ml.naive_bayes import DiscretizedNaiveBayes
from repro.ml.normalize import MinMaxNormalizer, ZScoreNormalizer
from repro.ml.pca import PCA
from repro.ml.stats import argmin_with_ties, geometric_mean, weighted_mean

__all__ = [
    "argmin_with_ties",
    "DecisionTreeClassifier",
    "DiscretizedNaiveBayes",
    "geometric_mean",
    "KMeans",
    "KMeansResult",
    "MinMaxNormalizer",
    "PCA",
    "StratifiedKFold",
    "train_test_split",
    "weighted_mean",
    "ZScoreNormalizer",
]
