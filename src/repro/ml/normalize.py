"""Feature normalization.

Step 2 of Level 1 ("Input Clustering") normalizes input feature vectors
"to avoid biases imposed by the different value scales in different
dimensions" before running K-means.  Both a z-score and a min-max normalizer
are provided; the pipeline uses z-score by default.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ZScoreNormalizer:
    """Standardize columns to zero mean and unit variance.

    Constant columns (zero variance) are mapped to zero rather than dividing
    by zero; this happens routinely for features that are identical across a
    benchmark's input set (e.g. "zeros" on dense matrices).
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "ZScoreNormalizer":
        """Learn per-column mean and standard deviation."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D array, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.std_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned standardization."""
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("normalizer is not fitted")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) / self.std_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)


class MinMaxNormalizer:
    """Rescale columns to the [0, 1] interval.

    Constant columns are mapped to 0.5 (the centre of the target interval).
    """

    def __init__(self) -> None:
        self.min_: Optional[np.ndarray] = None
        self.range_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "MinMaxNormalizer":
        """Learn per-column minima and ranges."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D array, got shape {X.shape}")
        self.min_ = X.min(axis=0)
        value_range = X.max(axis=0) - self.min_
        self.range_ = value_range
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the learned rescaling."""
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("normalizer is not fitted")
        X = np.asarray(X, dtype=float)
        result = np.empty_like(X, dtype=float)
        nonzero = self.range_ != 0.0
        result[:, nonzero] = (X[:, nonzero] - self.min_[nonzero]) / self.range_[nonzero]
        result[:, ~nonzero] = 0.5
        return result

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)
