"""Train/test splitting and stratified k-fold cross-validation.

The paper trains its exhaustive-feature-subset classifiers with 10-fold
cross-validation ("to avoid any learning to the data") and evaluates the
whole system on a held-out half of the inputs.  These utilities provide the
splits, with stratification by label so that rare landmark classes appear in
every fold whenever possible.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np


def train_test_split(
    n_samples: int,
    test_fraction: float = 0.5,
    random_state: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shuffle indices 0..n-1 and split them into (train, test) index arrays.

    Args:
        n_samples: total number of samples.
        test_fraction: fraction of samples assigned to the test set.
        random_state: seed for reproducibility.

    Raises:
        ValueError: if ``test_fraction`` is outside (0, 1) or there are not
            enough samples to populate both sides.
    """
    if not (0.0 < test_fraction < 1.0):
        raise ValueError("test_fraction must be in (0, 1)")
    if n_samples < 2:
        raise ValueError("need at least 2 samples to split")
    rng = np.random.default_rng(random_state)
    permutation = rng.permutation(n_samples)
    n_test = int(round(n_samples * test_fraction))
    n_test = min(max(n_test, 1), n_samples - 1)
    test_indices = np.sort(permutation[:n_test])
    train_indices = np.sort(permutation[n_test:])
    return train_indices, test_indices


class StratifiedKFold:
    """Stratified k-fold splitter.

    Samples of each class are dealt round-robin into folds so every fold's
    class distribution approximates the global one.  Classes with fewer
    members than folds simply appear in a subset of the folds.

    Args:
        n_splits: number of folds.
        shuffle: whether to shuffle within each class before dealing.
        random_state: seed used when shuffling.
    """

    def __init__(
        self,
        n_splits: int = 10,
        shuffle: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, y: np.ndarray) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) pairs, one per fold."""
        y = np.asarray(y, dtype=int)
        if y.ndim != 1:
            raise ValueError("y must be 1-D")
        n_samples = y.shape[0]
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot make {self.n_splits} folds from {n_samples} samples"
            )
        rng = np.random.default_rng(self.random_state)

        fold_assignment = np.empty(n_samples, dtype=int)
        next_fold = 0
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(members)
            for offset, index in enumerate(members):
                fold_assignment[index] = (next_fold + offset) % self.n_splits
            next_fold = (next_fold + members.shape[0]) % self.n_splits

        all_indices = np.arange(n_samples)
        for fold in range(self.n_splits):
            test_mask = fold_assignment == fold
            if not test_mask.any():
                continue
            yield all_indices[~test_mask], all_indices[test_mask]

    def n_effective_splits(self, y: np.ndarray) -> int:
        """Number of folds that actually contain test samples."""
        return sum(1 for _ in self.split(y))


def cross_val_accuracy(classifier_factory, X: np.ndarray, y: np.ndarray,
                       n_splits: int = 10, random_state: Optional[int] = None) -> List[float]:
    """Train/evaluate a classifier across stratified folds and return accuracies.

    Args:
        classifier_factory: zero-argument callable returning a fresh unfitted
            classifier exposing ``fit(X, y)`` and ``predict(X)``.
        X: feature matrix.
        y: labels.
        n_splits: number of folds (reduced automatically for tiny datasets).
        random_state: seed for the fold assignment.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    effective_splits = min(n_splits, max(2, min(np.bincount(y).max(), X.shape[0] // 2)))
    splitter = StratifiedKFold(n_splits=effective_splits, random_state=random_state)
    accuracies: List[float] = []
    for train_indices, test_indices in splitter.split(y):
        model = classifier_factory()
        model.fit(X[train_indices], y[train_indices])
        predictions = model.predict(X[test_indices])
        accuracies.append(float(np.mean(predictions == y[test_indices])))
    return accuracies
