"""K-means clustering with k-means++ seeding.

Level 1 of the paper's framework groups training inputs into ``K1`` clusters
(100 in their experiments) by running "a standard clustering algorithm (e.g.,
K-means)" on normalized feature vectors, then autotunes the program on each
cluster's centroid.  This module provides that clustering algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class KMeansResult:
    """Outcome of a K-means run.

    Attributes:
        centroids: array of shape (k, n_features).
        labels: cluster index per row of the input, shape (n_samples,).
        inertia: sum of squared distances of samples to their centroid.
        n_iterations: Lloyd iterations actually performed.
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iterations: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return int(self.centroids.shape[0])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Nearest-centroid cluster index for every row of ``X`` at once."""
        return assign_clusters(np.asarray(X, dtype=float), self.centroids)


class KMeans:
    """Lloyd's algorithm with k-means++ initialization.

    Args:
        n_clusters: requested number of clusters; automatically reduced to the
            number of distinct points when the data cannot support more.
        max_iterations: cap on Lloyd iterations.
        tolerance: relative centroid-movement threshold for convergence.
        n_init: number of independent restarts; the best (lowest inertia)
            result is kept.
        random_state: seed for reproducibility.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        n_init: int = 3,
        random_state: Optional[int] = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.n_init = n_init
        self.random_state = random_state

    def fit(self, X: np.ndarray) -> KMeansResult:
        """Cluster the rows of ``X`` and return the best of ``n_init`` runs."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D array, got shape {X.shape}")
        if X.shape[0] == 0:
            raise ValueError("cannot cluster an empty dataset")

        unique_rows = np.unique(X, axis=0)
        effective_k = min(self.n_clusters, unique_rows.shape[0])
        rng = np.random.default_rng(self.random_state)

        best: Optional[KMeansResult] = None
        for _ in range(self.n_init):
            result = self._fit_once(X, effective_k, rng)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best

    # -- internals ------------------------------------------------------

    def _fit_once(self, X: np.ndarray, k: int, rng: np.random.Generator) -> KMeansResult:
        centroids = self._kmeans_plus_plus(X, k, rng)
        labels = np.zeros(X.shape[0], dtype=int)
        n_iterations = 0
        for iteration in range(self.max_iterations):
            n_iterations = iteration + 1
            distances = _pairwise_sq_distances(X, centroids)
            labels = np.argmin(distances, axis=1)
            new_centroids = centroids.copy()
            for cluster in range(k):
                members = X[labels == cluster]
                if members.shape[0] > 0:
                    new_centroids[cluster] = members.mean(axis=0)
                else:
                    # Empty-cluster repair: re-seed at the point farthest from
                    # its assigned centroid.
                    farthest = int(np.argmax(distances[np.arange(X.shape[0]), labels]))
                    new_centroids[cluster] = X[farthest]
            movement = float(np.linalg.norm(new_centroids - centroids))
            scale = float(np.linalg.norm(centroids)) + 1e-12
            centroids = new_centroids
            if movement / scale < self.tolerance:
                break
        distances = _pairwise_sq_distances(X, centroids)
        labels = np.argmin(distances, axis=1)
        inertia = float(np.sum(distances[np.arange(X.shape[0]), labels]))
        return KMeansResult(
            centroids=centroids,
            labels=labels,
            inertia=inertia,
            n_iterations=n_iterations,
        )

    @staticmethod
    def _kmeans_plus_plus(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centroids proportionally to
        squared distance from the nearest already-chosen centroid."""
        n_samples = X.shape[0]
        centroids = np.empty((k, X.shape[1]), dtype=float)
        first = int(rng.integers(n_samples))
        centroids[0] = X[first]
        closest_sq = np.sum((X - centroids[0]) ** 2, axis=1)
        for i in range(1, k):
            total = float(np.sum(closest_sq))
            if total <= 0.0:
                # All remaining points coincide with a centroid; pick randomly.
                choice = int(rng.integers(n_samples))
            else:
                probabilities = closest_sq / total
                choice = int(rng.choice(n_samples, p=probabilities))
            centroids[i] = X[choice]
            new_sq = np.sum((X - centroids[i]) ** 2, axis=1)
            closest_sq = np.minimum(closest_sq, new_sq)
        return centroids


def assign_clusters(X: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Batched nearest-centroid assignment (one distance matrix, one argmin).

    This is the deployment-side "predict" of K-means: whole chunks of
    feature vectors are labeled per call instead of row by row.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    return np.argmin(_pairwise_sq_distances(X, centroids), axis=1)


def _pairwise_sq_distances(X: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance between every row of X and every centroid."""
    # (a - b)^2 = a^2 + b^2 - 2ab, computed without forming the 3-D tensor.
    x_sq = np.sum(X ** 2, axis=1)[:, None]
    c_sq = np.sum(centroids ** 2, axis=1)[None, :]
    cross = X @ centroids.T
    distances = x_sq + c_sq - 2.0 * cross
    np.maximum(distances, 0.0, out=distances)
    return distances
