"""Principal component analysis.

The paper argues that "standard unsupervised feature selection (e.g., PCA)
does not solve the problem" of mapping disparity: directions of large
variance in the predefined input-feature space need not correlate with which
algorithmic configuration performs best.  This module provides a small PCA
implementation so that claim can be tested directly: the
``one_level_pca`` ablation in :mod:`repro.experiments.ablations` clusters
inputs on the leading principal components instead of the raw features and
compares the resulting one-level system against the two-level method.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class PCA:
    """Principal component analysis via the covariance eigendecomposition.

    Args:
        n_components: number of components to keep; defaults to all.
    """

    def __init__(self, n_components: Optional[int] = None) -> None:
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "PCA":
        """Estimate the principal directions of the rows of ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected 2-D array, got shape {X.shape}")
        if X.shape[0] < 2:
            raise ValueError("PCA needs at least two samples")
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        covariance = centered.T @ centered / (X.shape[0] - 1)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = eigenvalues[order]
        eigenvectors = eigenvectors[:, order]
        keep = self.n_components or X.shape[1]
        keep = min(keep, X.shape[1])
        self.components_ = eigenvectors[:, :keep].T
        self.explained_variance_ = np.maximum(eigenvalues[:keep], 0.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project rows of ``X`` onto the kept principal components."""
        if self.components_ is None or self.mean_ is None:
            raise RuntimeError("PCA is not fitted")
        X = np.asarray(X, dtype=float)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)

    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total variance captured by each kept component."""
        if self.explained_variance_ is None:
            raise RuntimeError("PCA is not fitted")
        total = float(self.explained_variance_.sum())
        if total <= 0:
            return np.zeros_like(self.explained_variance_)
        return self.explained_variance_ / total
