"""Distributed-executor worker: connect, lease chunks, stream results back.

One worker process serves one coordinator (see
:mod:`repro.runtime.distributed` for the protocol).  The coordinator spawns
workers through ``multiprocessing`` by default, but any machine-local
process can attach to a running coordinator::

    python -m repro.worker --connect 127.0.0.1:PORT

The worker keeps a bounded local :class:`~repro.runtime.cache.RunCache`:
program runs repeated across its leases (the same (config, input) showing
up in the tuner's populations, say, or re-measured rows) are answered from
memory instead of re-executed, and on the ``rows`` path the per-entry
``run_key`` travels back with each measurement so the coordinator can fold
the entries into *its* cache -- and from there into the sharded on-disk
store -- without ever shipping the inputs in either direction.
"""

from __future__ import annotations

import argparse
import os
import socket
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lang.program import RunResult
from repro.resilience.faults import FaultError, install_from_env, maybe_fail
from repro.resilience.retry import RetryPolicy
from repro.runtime.cache import RunCache
from repro.runtime.distributed import (
    PROTOCOL_VERSION,
    decode_payload,
    encode_payload,
    recv_messages,
    send_message,
)
from repro.runtime.executors import _invoke_call, _substitute_shared
from repro.runtime.keys import config_key, input_key, program_fingerprint, run_key

#: In-memory entry cap of the worker-local run cache; measurements only, so
#: this bounds the worker at a few MB while still absorbing tuner-style
#: repeats within a session.
WORKER_CACHE_ENTRIES = 50_000

#: Connect retry: a worker racing a restarting coordinator (fixed-port
#: rebind) or a briefly saturated listen backlog retries with backoff
#: instead of dying on the first ConnectionRefusedError.
CONNECT_POLICY = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=1.0)


def _strip_output(result: RunResult) -> RunResult:
    """A copy of ``result`` without the program output (cheap to cache/ship)."""
    if result.output is None:
        return result
    return RunResult(
        output=None, time=result.time, accuracy=result.accuracy, extra=result.extra
    )


def execute_lease(
    kind: str, context: Any, payload: Any, cache: RunCache
) -> Tuple[Any, int]:
    """Execute one chunk lease; returns ``(result, local_cache_hits)``.

    The three kinds mirror :mod:`repro.runtime.distributed`:

    * ``pairs`` -- run each (config, input) task of the chunk through the
      context program; results keep their outputs (callers strip them).
    * ``calls`` -- invoke each generic call task, resolving
      :class:`~repro.runtime.SharedRef` arguments against the context
      registry.  Never cached: call results are memoized coordinator-side
      by the task cache, under keys this layer does not know.
    * ``rows`` -- materialize rows ``payload = (start, stop)`` from the
      context input source and measure every context configuration on each,
      returning ``{"entries": [(run_key, time, accuracy, extra), ...],
      "cache_hits": n}`` in row-major order.
    """
    # Fault site: an injected raise here unwinds as a worker death (the
    # chunk requeues on another worker); an injected kill is a hard crash.
    maybe_fail("worker.execute", detail=kind)
    if kind == "pairs":
        program = context
        results: List[RunResult] = []
        hits = 0
        prefix = f"{program.name}:{program_fingerprint(program)}"
        for config, program_input in payload:
            key = f"{prefix}:{config_key(config)}:{input_key(program_input)}"
            cached = cache.get(key)
            if cached is not None:
                hits += 1
                results.append(cached)
                continue
            result = _strip_output(program.run(config, program_input))
            cache.put(key, result, has_output=False)
            results.append(result)
        return results, hits

    if kind == "calls":
        shared: Dict[str, Any] = context or {}
        outputs = [
            _invoke_call(_substitute_shared(call, shared)) for call in payload
        ]
        return outputs, 0

    if kind == "rows":
        program, configs, source = context
        start, stop = payload
        prefix = f"{program.name}:{program_fingerprint(program)}"
        config_keys = [config_key(config) for config in configs]
        entries: List[Tuple[str, float, float, Dict[str, Any]]] = []
        hits = 0
        for index in range(start, stop):
            program_input = source.materialize(index)
            ik = input_key(program_input)
            for config, ck in zip(configs, config_keys):
                key = f"{prefix}:{ck}:{ik}"
                cached = cache.get(key)
                if cached is None:
                    cached = _strip_output(program.run(config, program_input))
                    cache.put(key, cached, has_output=False)
                else:
                    hits += 1
                entries.append((key, cached.time, cached.accuracy, cached.extra))
        return {"entries": entries, "cache_hits": hits}, hits

    raise ValueError(f"unknown lease kind {kind!r}")


def worker_main(host: str, port: int) -> None:
    """Connect to a coordinator and serve leases until shutdown or EOF.

    The entry point both for spawned workers (``multiprocessing`` target)
    and the ``python -m repro.worker`` CLI.
    """
    install_from_env()
    conn = CONNECT_POLICY.run(
        lambda: socket.create_connection((host, int(port))),
        retryable=(ConnectionRefusedError, TimeoutError),
    )
    try:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    cache = RunCache(max_entries=WORKER_CACHE_ENTRIES)
    #: batch id -> (kind, decoded context); only the latest few batches are
    #: kept, since leases only ever reference the current batch.
    contexts: Dict[int, Tuple[str, Any]] = {}
    buffer = bytearray()
    try:
        send_message(
            conn, {"type": "hello", "protocol": PROTOCOL_VERSION, "pid": os.getpid()}
        )
        while True:
            data = conn.recv(1 << 16)
            if not data:
                return
            for message in recv_messages(buffer, data):
                kind = message.get("type")
                if kind == "shutdown":
                    return
                if kind == "context":
                    batch = int(message["batch"])
                    contexts[batch] = (message["kind"], decode_payload(message["payload"]))
                    for stale in [b for b in contexts if b < batch - 2]:
                        del contexts[stale]
                    continue
                if kind == "lease":
                    lease_id = message["lease_id"]
                    batch = int(lease_id.split(":", 1)[0])
                    try:
                        lease_kind, context = contexts[batch]
                        payload = decode_payload(message["payload"])
                        result, _hits = execute_lease(
                            lease_kind, context, payload, cache
                        )
                        send_message(
                            conn,
                            {"type": "result", "lease_id": lease_id,
                             "payload": encode_payload(result)},
                        )
                    except FaultError:
                        # An injected worker fault models a *crash*, not a
                        # task error: unwind to the transport handler so the
                        # coordinator requeues the chunk on another worker.
                        raise
                    except Exception:
                        send_message(
                            conn,
                            {"type": "error", "lease_id": lease_id,
                             "error": traceback.format_exc(limit=20)},
                        )
    except (OSError, EOFError):  # coordinator went away; nothing to report to
        return
    finally:
        try:
            conn.close()
        except OSError:
            pass


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``python -m repro.worker --connect HOST:PORT``."""
    parser = argparse.ArgumentParser(
        prog="repro.worker",
        description="attach a worker process to a running repro coordinator",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address printed by the distributed executor",
    )
    args = parser.parse_args(argv)
    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")
    worker_main(host, int(port))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
