"""The Section 4.3 theoretical model: diminishing returns in landmarks.

The model assumes the input space is partitioned into regions, each dominated
by one optimal configuration; region ``i`` has size (probability mass)
``p_i`` and yields speedup ``s_i`` when its dominant configuration is used
(and no speedup otherwise).  If ``k`` landmark configurations are sampled
uniformly at random, the chance of missing region ``i`` is ``(1 - p_i)^k``,
so the expected lost speedup is

    L = sum_i (1 - p_i)^k * p_i * s_i / sum_i s_i.

Differentiating with respect to ``p_i`` shows the worst-case region size is
``p = 1 / (k + 1)``; plugging it back in gives the diminishing-returns curve
of Figure 7b.  Figure 7a plots ``L`` as a function of region size for several
``k`` (all ``s_i`` equal).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

ArrayLike = Union[float, Sequence[float], np.ndarray]


def expected_speedup_loss(
    region_sizes: ArrayLike,
    n_landmarks: int,
    speedups: ArrayLike = None,
) -> float:
    """Expected lost speedup L for given region sizes and landmark count.

    Args:
        region_sizes: the p_i values (each in [0, 1]).
        n_landmarks: k, the number of uniformly sampled landmarks.
        speedups: the s_i values; defaults to all ones.

    Raises:
        ValueError: if any region size is outside [0, 1] or k < 0.
    """
    p = np.atleast_1d(np.asarray(region_sizes, dtype=float))
    if np.any((p < 0.0) | (p > 1.0)):
        raise ValueError("region sizes must lie in [0, 1]")
    if n_landmarks < 0:
        raise ValueError("n_landmarks must be non-negative")
    if speedups is None:
        s = np.ones_like(p)
    else:
        s = np.atleast_1d(np.asarray(speedups, dtype=float))
        if s.shape != p.shape:
            raise ValueError("speedups must match region_sizes in length")
    total = float(np.sum(s))
    if total <= 0:
        raise ValueError("total speedup must be positive")
    return float(np.sum((1.0 - p) ** n_landmarks * p * s) / total)


def loss_curve(region_sizes: ArrayLike, n_landmarks: int) -> np.ndarray:
    """Figure 7a: per-region-size loss contribution (all speedups equal).

    Returns an array of the same shape as ``region_sizes`` with the value of
    ``(1 - p)^k * p`` for each p.
    """
    p = np.asarray(region_sizes, dtype=float)
    if np.any((p < 0.0) | (p > 1.0)):
        raise ValueError("region sizes must lie in [0, 1]")
    return (1.0 - p) ** n_landmarks * p


def worst_case_region_size(n_landmarks: int) -> float:
    """The region size maximizing the expected loss: ``p = 1 / (k + 1)``.

    Obtained by solving ``dL/dp = 0`` for a single region.
    """
    if n_landmarks < 0:
        raise ValueError("n_landmarks must be non-negative")
    return 1.0 / (n_landmarks + 1)


def worst_case_loss(n_landmarks: int) -> float:
    """Expected loss at the worst-case region size for ``k`` landmarks."""
    p = worst_case_region_size(n_landmarks)
    return float((1.0 - p) ** n_landmarks * p)


def fraction_of_full_speedup(n_landmarks: Union[int, Sequence[int]]) -> np.ndarray:
    """Figure 7b: predicted fraction of the full speedup vs. landmark count.

    Normalized so the curve approaches 1 as ``k`` grows (the model's own
    scaling constant is problem specific and the paper omits y-axis units).
    """
    ks = np.atleast_1d(np.asarray(n_landmarks, dtype=int))
    losses = np.array([worst_case_loss(int(k)) for k in ks])
    return 1.0 - losses
