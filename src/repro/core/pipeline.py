"""End-to-end input-aware learning pipeline and deployment object.

:class:`InputAwareLearning` wires the two levels together exactly as the
paper's Figure 3 describes: training consumes the program (with its
algorithmic choices and ``input_feature`` extractors) plus a set of training
inputs, and produces an *input classifier* together with the set of
*input-optimized programs* (the landmark configurations).  The resulting
:class:`DeployedProgram` is what a user runs in production: for each incoming
input it extracts only the features the production classifier needs, selects
the landmark configuration predicted to perform best, and runs the program
with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classifiers import CandidateClassifier
from repro.core.dataset import PerformanceDataset
from repro.core.level1 import Level1Config, Level1Result, run_level1
from repro.core.level2 import Level2Config, Level2Result, run_level2
from repro.lang.config import Configuration
from repro.lang.program import PetaBricksProgram, RunResult
from repro.ml.crossval import train_test_split
from repro.runtime import Runtime, default_runtime


class LandmarkMismatchError(ValueError):
    """The classifier's label is irreconcilable with the landmark set.

    Raised when a deployed classifier predicts a label so far outside the
    landmark range (``label >= 2 * len(landmarks)``, or below
    ``-len(landmarks)``) that it cannot be a rounding artifact: the
    classifier was almost certainly trained against a different landmark
    set than the one deployed, and silently clamping would route every such
    input to an arbitrary landmark.
    """


@dataclass
class DeploymentOutcome:
    """Result of running one input through a deployed program.

    Attributes:
        result: the program's run result (output, time, accuracy).
        configuration: the landmark configuration that was selected.
        landmark_index: its index in the landmark list.
        feature_extraction_cost: work spent probing the input's features.
        cache_hit: True when the run was recalled from the run cache rather
            than executed -- recall latency must not be mistaken for
            execution time in serving statistics.
        total_time: execution time plus feature-extraction cost.
    """

    result: RunResult
    configuration: Configuration
    landmark_index: int
    feature_extraction_cost: float
    cache_hit: bool = False

    @property
    def total_time(self) -> float:
        return self.result.time + self.feature_extraction_cost


class DeployedProgram:
    """The deployment-time artifact: classifier + input-optimized programs."""

    def __init__(
        self,
        program: PetaBricksProgram,
        landmarks: Sequence[Configuration],
        classifier: CandidateClassifier,
        runtime: Optional[Runtime] = None,
    ) -> None:
        if not landmarks:
            raise ValueError("a deployed program needs at least one landmark")
        self.program = program
        self.landmarks = list(landmarks)
        self.classifier = classifier
        self.runtime = runtime

    def _telemetry(self):
        runtime = self.runtime if self.runtime is not None else default_runtime()
        return runtime.telemetry

    def select_configuration(self, program_input: Any) -> Tuple[Configuration, int, float]:
        """Classify the input and return (configuration, index, extraction cost).

        A label one-off the landmark range is clamped to the nearest
        landmark (and counted under the ``selector_labels_clamped``
        telemetry counter -- a healthy deployment should show zero).  A
        label wildly outside the range means the classifier and landmark
        set do not belong together, and raises
        :class:`LandmarkMismatchError` instead of silently misrouting.
        """
        label, cost = self.classifier.classify_input(program_input, self.program.features)
        label = int(label)
        n = len(self.landmarks)
        if label >= 2 * n or label <= -n:
            raise LandmarkMismatchError(
                f"classifier for {self.program.name!r} predicted label {label}, "
                f"far outside the {n} deployed landmark(s); the classifier was "
                "likely trained against a different landmark set"
            )
        if not 0 <= label < n:
            self._telemetry().count("selector_labels_clamped")
            label = min(max(label, 0), n - 1)
        return self.landmarks[label], label, cost

    def run(self, program_input: Any) -> DeploymentOutcome:
        """Select the input-optimized program for this input and run it.

        Runs go through the measurement runtime when one is attached, so
        repeated deployments of cached inputs are recalled rather than
        re-executed.  ``need_output=True`` guarantees the outcome carries the
        program's real output even when a persisted (measurement-only) cache
        is in use.  The outcome's ``cache_hit`` flag records whether the run
        was a recall, so callers measuring deployment latency can separate
        the two populations.
        """
        configuration, index, cost = self.select_configuration(program_input)
        runtime = self.runtime if self.runtime is not None else default_runtime()
        result, cache_hit = runtime.run_info(
            self.program, configuration, program_input, need_output=True
        )
        return DeploymentOutcome(
            result=result,
            configuration=configuration,
            landmark_index=index,
            feature_extraction_cost=cost,
            cache_hit=cache_hit,
        )


@dataclass
class TrainingResult:
    """Everything produced by a full training run.

    Attributes:
        level1: the Level-1 result (clusters, landmarks, dataset).
        level2: the Level-2 result (labels, classifiers, production choice).
        deployed: the deployment-time object.
        train_rows / test_rows: the input split used.
    """

    level1: Level1Result
    level2: Level2Result
    deployed: DeployedProgram
    train_rows: np.ndarray
    test_rows: np.ndarray

    @property
    def dataset(self) -> PerformanceDataset:
        """The <F, T, A, E> datatable."""
        return self.level1.dataset

    @property
    def landmarks(self) -> List[Configuration]:
        """The landmark configurations."""
        return self.level1.landmarks

    @property
    def production_classifier(self) -> CandidateClassifier:
        """The classifier selected for production."""
        return self.level2.production.classifier


class InputAwareLearning:
    """The two-level input-aware learning framework (paper Section 3).

    Args:
        level1_config: Level-1 knobs (cluster count, autotuner budget, seed).
        level2_config: Level-2 knobs (cost-matrix lambda, subset cap, ...).
        test_fraction: fraction of inputs held out for classifier selection
            and evaluation (the paper uses roughly half).
        seed: seed for the train/test split.
        runtime: measurement runtime all program runs (autotuning, Level-1
            measurement, deployment) go through; defaults to the shared
            serial, cache-less runtime, which is bit-identical to running
            the programs directly.
    """

    def __init__(
        self,
        level1_config: Optional[Level1Config] = None,
        level2_config: Optional[Level2Config] = None,
        test_fraction: float = 0.5,
        seed: int = 0,
        runtime: Optional[Runtime] = None,
    ) -> None:
        self.level1_config = level1_config or Level1Config()
        self.level2_config = level2_config or Level2Config()
        if not (0.0 < test_fraction < 1.0):
            raise ValueError("test_fraction must be in (0, 1)")
        self.test_fraction = test_fraction
        self.seed = seed
        self.runtime = runtime

    def fit(
        self,
        program: PetaBricksProgram,
        inputs: Sequence[Any],
        progress: Optional[Callable[[str], None]] = None,
    ) -> TrainingResult:
        """Train the two-level system on the given program and inputs."""
        if len(inputs) < 4:
            raise ValueError("need at least 4 training inputs")

        runtime = self.runtime
        level1 = run_level1(
            program, inputs, config=self.level1_config, progress=progress, runtime=runtime
        )
        train_rows, test_rows = train_test_split(
            len(inputs), test_fraction=self.test_fraction, random_state=self.seed
        )
        telemetry = (runtime if runtime is not None else default_runtime()).telemetry
        with telemetry.phase("level2.train"):
            level2 = run_level2(
                level1.dataset,
                train_rows,
                test_rows,
                config=self.level2_config,
                level1_cluster_labels=level1.cluster_labels,
                cluster_to_landmark=level1.cluster_to_landmark,
                runtime=runtime,
            )
        deployed = DeployedProgram(
            program=program,
            landmarks=level1.landmarks,
            classifier=level2.production.classifier,
            runtime=runtime,
        )
        return TrainingResult(
            level1=level1,
            level2=level2,
            deployed=deployed,
            train_rows=train_rows,
            test_rows=test_rows,
        )
