"""Synthetic performance datasets for tests, benchmarks, and examples.

A :class:`~repro.core.dataset.PerformanceDataset` whose best landmark is
decided by a single cheap feature lets Level-2 components be exercised (and
raced across executors) without running Level 1 first: no input generation,
no clustering, no autotuning -- just a datatable with a known-learnable
structure.  :func:`synthetic_level2_dataset` builds one with ``n`` rows,
a configurable feature grid (``n_properties`` x ``n_levels`` sampling
levels, mirroring the paper's property to levels layout), and optionally a
variable-accuracy contract so the satisfaction-threshold paths of
selection and the cost matrix get exercised too.

The generator is a pure function of its ``seed`` -- every draw comes from
one ``numpy`` RNG constructed from it -- which is what the cross-executor
determinism suite (`tests/runtime/test_level2_parallel.py`), the streaming
determinism suite (`tests/runtime/test_streaming.py`), and the golden
snapshot test rely on: the same seed must produce the byte-identical
dataset on every host, run, and executor.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.lang.accuracy import AccuracyRequirement
from repro.lang.config import Configuration


def synthetic_level2_dataset(
    n: int = 80,
    seed: int = 0,
    variable_accuracy: bool = False,
    n_properties: int = 2,
    n_levels: int = 2,
) -> PerformanceDataset:
    """A dataset where the best landmark is decided by feature ``p0@0``.

    Landmark 0 is fast on inputs with ``p0@0 < 0`` and slow otherwise;
    landmark 1 is the reverse; landmark 2 is a mediocre-but-safe middle
    choice.  For the variable-accuracy variant, landmarks 0 and 1 are also
    inaccurate exactly where they are slow, so accuracy-aware labelling and
    cost matrices have real structure to find.

    Args:
        n: number of input rows.
        seed: RNG seed (the generator is fully deterministic given it).
        variable_accuracy: whether to enable an accuracy requirement.
        n_properties: number of feature properties ``p0 .. p{u-1}``.
        n_levels: sampling levels per property (``p@0 .. p@{z-1}``); higher
            levels repeat the property value with small noise and a higher
            extraction cost, mimicking progressively expensive sampling.
    """
    if n_properties < 1 or n_levels < 1:
        raise ValueError("need at least one property and one level")
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(n, n_properties))
    feature_names = []
    columns = []
    costs = []
    for prop in range(n_properties):
        for level in range(n_levels):
            feature_names.append(f"p{prop}@{level}")
            noise = rng.normal(scale=0.05, size=n) if level else np.zeros(n)
            columns.append(base[:, prop] + noise)
            costs.append(np.full(n, 1.0 + 4.0 * level))
    features = np.column_stack(columns)
    extraction_costs = np.column_stack(costs)

    a = base[:, 0]
    times = np.empty((n, 3))
    times[:, 0] = np.where(a < 0, 10.0, 100.0)
    times[:, 1] = np.where(a < 0, 100.0, 10.0)
    times[:, 2] = 40.0
    accuracies = np.ones((n, 3))
    if variable_accuracy:
        accuracies[:, 0] = np.where(a < 0, 1.0, 0.0)
        accuracies[:, 1] = np.where(a < 0, 0.0, 1.0)
    requirement = (
        AccuracyRequirement(accuracy_threshold=0.5)
        if variable_accuracy
        else AccuracyRequirement.disabled()
    )
    return PerformanceDataset(
        feature_names=feature_names,
        features=features,
        extraction_costs=extraction_costs,
        times=times,
        accuracies=accuracies,
        landmarks=[Configuration({"id": i}) for i in range(3)],
        requirement=requirement,
    )
