"""The paper's primary contribution: two-level input-aware learning.

The subpackage is organized along the paper's Section 3:

* :mod:`repro.core.level1` -- Figure 4: feature extraction, input-space
  clustering, landmark creation (evolutionary autotuning per cluster
  centroid), and performance measurement of every landmark on every training
  input.
* :mod:`repro.core.dataset` -- the resulting datatable of 4-tuples
  <F, T, A, E> that Level 2 consumes.
* :mod:`repro.core.level2` -- Figure 5: performance-based relabelling
  (cluster refinement), cost-matrix construction, training of the candidate
  classifier zoo, and selection of the production classifier.
* :mod:`repro.core.classifiers` -- the four classifier families of Section
  3.2 (Max-apriori, Exhaustive Feature Subsets, All Features, Incremental
  Feature Examination).
* :mod:`repro.core.selection` -- the classifier-efficacy objective (execution
  time + feature extraction time, subject to the accuracy satisfaction
  threshold).
* :mod:`repro.core.baselines` -- Static Oracle, Dynamic Oracle, and the
  traditional One-Level approach used for comparison in Table 1.
* :mod:`repro.core.pipeline` -- :class:`InputAwareLearning`, the end-to-end
  training pipeline, and :class:`DeployedProgram`, the deployment-time
  object that classifies each incoming input and runs the selected
  input-optimized program.
* :mod:`repro.core.model` -- the Section 4.3 theoretical model of
  diminishing returns in the number of landmark configurations.
* :mod:`repro.core.inputs` -- lazy :class:`InputSource` populations: known
  length, deterministic per-index materialization, chunked iteration -- the
  input side of the streaming (50k-input-regime) story.
"""

from repro.core.baselines import (
    DynamicOracle,
    OneLevelLearning,
    StaticOracle,
)
from repro.core.classifiers import (
    AllFeaturesClassifier,
    ClassifierDescription,
    IncrementalFeatureExaminationClassifier,
    MaxAprioriClassifier,
    SubsetDecisionTreeClassifier,
)
from repro.core.dataset import PerformanceDataset
from repro.core.inputs import (
    GeneratedInputSource,
    InputSource,
    MaterializedInputs,
    ObservedInputSource,
    ensure_source,
    per_index_rng,
)
from repro.core.level1 import Level1Config, Level1Result, run_level1
from repro.core.level2 import Level2Config, Level2Result, run_level2
from repro.core.model import (
    expected_speedup_loss,
    fraction_of_full_speedup,
    worst_case_region_size,
)
from repro.core.pipeline import DeployedProgram, InputAwareLearning, TrainingResult
from repro.core.selection import ClassifierEvaluation, evaluate_classifier, select_production_classifier

__all__ = [
    "AllFeaturesClassifier",
    "ClassifierDescription",
    "ClassifierEvaluation",
    "DeployedProgram",
    "DynamicOracle",
    "ensure_source",
    "evaluate_classifier",
    "expected_speedup_loss",
    "fraction_of_full_speedup",
    "GeneratedInputSource",
    "IncrementalFeatureExaminationClassifier",
    "InputAwareLearning",
    "InputSource",
    "MaterializedInputs",
    "ObservedInputSource",
    "per_index_rng",
    "Level1Config",
    "Level1Result",
    "Level2Config",
    "Level2Result",
    "MaxAprioriClassifier",
    "OneLevelLearning",
    "PerformanceDataset",
    "run_level1",
    "run_level2",
    "select_production_classifier",
    "StaticOracle",
    "SubsetDecisionTreeClassifier",
    "TrainingResult",
    "worst_case_region_size",
]
