"""Lazy input sources: known-length input populations materialized on demand.

The paper's headline experiments train on 50-60k inputs per benchmark.  The
measurement runtime already streams run/task batches in O(chunk) pieces
(:attr:`repro.runtime.Runtime.batch_chunk`), but a pipeline that begins with
``inputs = benchmark.generate_inputs(n, ...)`` still pays O(N) memory for
the input list itself before the first chunk is dispatched.  This module
removes that floor.

An :class:`InputSource` is a sequence-shaped view of an input population:

* it knows its **length** up front (splits, matrix shapes, and cluster
  counts need N without generating anything);
* it materializes **input i deterministically and independently** -- the
  contract is that ``source[i]`` is a pure function of (population, seed, i),
  so any access order, any chunking, and any number of re-materializations
  produce bit-identical objects (and therefore bit-identical run-cache keys,
  which is what keeps streamed experiments equal to materialized ones);
* iteration is **chunked and transient** -- :meth:`InputSource.iter_chunks`
  yields lists of at most ``chunk`` freshly materialized inputs, and plain
  iteration materializes one input at a time, so a consumer that does not
  hold references keeps peak memory at O(chunk), not O(N).

Per-index determinism comes from :func:`per_index_rng`: each input draws
from its own RNG seeded by (namespace, seed, index), so generating input
42 never requires generating inputs 0..41.  :class:`MaterializedInputs`
adapts a plain list to the same interface for callers that already hold
one; :func:`ensure_source` normalizes either shape.
"""

from __future__ import annotations

import abc
import hashlib
import time
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence

import numpy as np

#: Default chunk size for :meth:`InputSource.iter_chunks` when the caller
#: does not pass one.
DEFAULT_CHUNK = 256


def per_index_rng(seed: int, index: int, *namespace: str) -> np.random.Generator:
    """A fresh RNG for one (population, seed, index) triple.

    The namespace strings (benchmark and variant names, typically) are
    folded in through a stable SHA-256 digest -- never the builtin ``hash``,
    which is salted per process -- so distinct populations draw from
    disjoint streams even for equal (seed, index) pairs, and the stream for
    a given triple is identical across processes and platforms.
    """
    if index < 0:
        raise ValueError("index must be non-negative")
    digest = hashlib.sha256("\x1f".join(namespace).encode("utf-8")).digest()
    salt = int.from_bytes(digest[:8], "big")
    entropy = [salt, int(seed) & 0xFFFFFFFFFFFFFFFF, int(index)]
    return np.random.default_rng(np.random.SeedSequence(entropy))


class InputSource(abc.ABC, Sequence):
    """A known-length input population, materialized per index on demand.

    Subclasses implement :meth:`__len__` and :meth:`materialize`; everything
    else (indexing, iteration, chunking, selection) is derived.  The
    materialization contract -- ``materialize(i)`` is a pure function of the
    source and ``i`` -- is what every streaming guarantee in the repo rests
    on; :mod:`tests.benchmarks_suite.test_input_sources` enforces it for
    the six benchmarks.
    """

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of inputs in the population."""

    @abc.abstractmethod
    def materialize(self, index: int) -> Any:
        """Produce input ``index`` (0 <= index < len); pure and deterministic."""

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self.select(range(*index.indices(len(self))))
        i = int(index)
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(f"input index {index} out of range for {n} inputs")
        return self.materialize(i)

    def __iter__(self) -> Iterator[Any]:
        for i in range(len(self)):
            yield self.materialize(i)

    def iter_chunks(self, chunk: Optional[int] = None) -> Iterator[List[Any]]:
        """Yield the population as successive lists of at most ``chunk`` inputs.

        Each chunk is materialized only when requested and can be dropped by
        the consumer before the next is built, so a full pass costs O(chunk)
        peak memory.
        """
        chunk = DEFAULT_CHUNK if chunk is None else int(chunk)
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        n = len(self)
        for start in range(0, n, chunk):
            yield [self.materialize(i) for i in range(start, min(start + chunk, n))]

    def select(self, indices: Iterable[int]) -> "InputSource":
        """A lazy view of this source restricted to ``indices`` (in order)."""
        return _SelectedInputSource(self, indices)

    def materialized(self) -> List[Any]:
        """The whole population as a plain list (the O(N) legacy shape)."""
        return [self.materialize(i) for i in range(len(self))]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={len(self)})"


class GeneratedInputSource(InputSource):
    """An input population defined by a per-index generator function.

    Args:
        n: population size.
        seed: population seed, passed to every per-index call.
        item: callable ``item(index, seed) -> input``; must be a pure
            function of its arguments (see the module docstring).
        name: optional label for diagnostics.
    """

    def __init__(
        self,
        n: int,
        seed: int,
        item: Callable[[int, int], Any],
        name: Optional[str] = None,
    ) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self._n = int(n)
        self.seed = int(seed)
        self.item = item
        self.name = name

    def __len__(self) -> int:
        return self._n

    def materialize(self, index: int) -> Any:
        return self.item(index, self.seed)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"GeneratedInputSource({self._n},{label} seed={self.seed})"


class MaterializedInputs(InputSource):
    """Adapter: a plain in-memory input list behind the source interface.

    Backward-compatibility shape for callers that already hold a list (or
    for generators without a per-index form).  Costs the O(N) memory the
    list already costs; "materialization" is a lookup.
    """

    def __init__(self, inputs: Sequence[Any]) -> None:
        self._inputs = list(inputs)

    def __len__(self) -> int:
        return len(self._inputs)

    def materialize(self, index: int) -> Any:
        return self._inputs[index]

    def materialized(self) -> List[Any]:
        return list(self._inputs)


class _SelectedInputSource(InputSource):
    """A lazy index-selected view over another source."""

    def __init__(self, base: InputSource, indices: Iterable[int]) -> None:
        self._base = base
        self._indices = [int(i) for i in indices]

    def __len__(self) -> int:
        return len(self._indices)

    def materialize(self, index: int) -> Any:
        return self._base.materialize(self._indices[index])


class ObservedInputSource(InputSource):
    """A pass-through view that reports per-input generation time.

    The experiment runner wraps the streamed source in one of these so the
    cost of lazy generation -- which would otherwise vanish inside the
    measurement phases -- is attributed explicitly (the ``inputs.generate``
    phase and the ``inputs_generated`` counter in ``--runtime-stats``).

    Args:
        base: the source to observe.
        observer: callable ``observer(seconds)`` invoked after every
            materialization with the time it took.
    """

    def __init__(self, base: InputSource, observer: Callable[[float], None]) -> None:
        self._base = base
        self._observer = observer

    def __len__(self) -> int:
        return len(self._base)

    def materialize(self, index: int) -> Any:
        start = time.perf_counter()
        item = self._base.materialize(index)
        self._observer(time.perf_counter() - start)
        return item

    def __reduce__(self):
        # The observer is a closure over live telemetry and cannot (and
        # should not) cross a process boundary; a pickled copy -- e.g. the
        # input-source descriptor shipped to distributed workers -- observes
        # silently.  Materialized values are identical either way; only the
        # parent-side timing attribution is local.
        return (ObservedInputSource, (self._base, _silent_observer))


def _silent_observer(_seconds: float) -> None:
    """No-op observer installed when an :class:`ObservedInputSource` is unpickled."""


def ensure_source(inputs: Any) -> InputSource:
    """Normalize a list or source to an :class:`InputSource`."""
    if isinstance(inputs, InputSource):
        return inputs
    return MaterializedInputs(inputs)
