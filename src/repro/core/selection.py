"""Production-classifier selection (paper Section 3.2, "Candidate Selection").

Every candidate classifier is applied to the test portion of the dataset and
scored by the paper's efficacy measure:

* **time-only programs** -- the per-input cost is
  ``r_i = tau(i, c_i) + g_i`` where ``tau`` is the execution time of the
  predicted landmark and ``g_i`` the extraction cost of the features the
  classifier consulted; the classifier's score is the mean
  ``R = sum(r_i) / N``.
* **variable-accuracy programs** -- a classifier is *valid* only when the
  fraction of test inputs whose predicted landmark meets the accuracy
  threshold reaches the satisfaction threshold (``H2``, 95%); invalid
  classifiers are treated as incurring a huge cost.  Among valid classifiers
  the same performance cost ``R`` decides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.classifiers import CandidateClassifier
from repro.core.dataset import PerformanceDataset
from repro.ml.crossval import StratifiedKFold
from repro.runtime import Runtime, SharedRef, TaskSpec, content_key, default_runtime

#: Registry token under which fold batches ship the dataset to workers once
#: per pool (see :class:`repro.runtime.SharedRef`).
_CV_DATASET_TOKEN = "selection.cv.dataset"
_CV_DATASET_REF = SharedRef(_CV_DATASET_TOKEN)

#: Score assigned to classifiers that miss the satisfaction threshold.
INVALID_COST = float("inf")


@dataclass
class ClassifierEvaluation:
    """Measured efficacy of one candidate classifier on the test rows.

    Attributes:
        classifier: the evaluated classifier.
        performance_cost: mean per-input cost R (execution + extraction).
        performance_cost_no_extraction: mean cost ignoring extraction time.
        satisfaction_rate: fraction of test inputs whose predicted landmark
            meets the accuracy threshold.
        valid: whether the satisfaction threshold is met (always True for
            fixed-accuracy programs).
        mean_extraction_cost: mean feature-extraction cost per input.
    """

    classifier: CandidateClassifier
    performance_cost: float
    performance_cost_no_extraction: float
    satisfaction_rate: float
    valid: bool
    mean_extraction_cost: float

    @property
    def effective_cost(self) -> float:
        """Cost used for ranking (infinite when invalid)."""
        return self.performance_cost if self.valid else INVALID_COST


def evaluate_classifier(
    classifier: CandidateClassifier,
    dataset: PerformanceDataset,
    rows: Sequence[int],
) -> ClassifierEvaluation:
    """Score one classifier on the given dataset rows."""
    rows = np.asarray(rows, dtype=int)
    predictions = classifier.predict_rows(dataset, rows)
    predicted = predictions.labels
    execution_times = dataset.times[rows, predicted]
    accuracies = dataset.accuracies[rows, predicted]
    extraction = predictions.extraction_costs

    requirement = dataset.requirement
    if requirement.enabled:
        satisfaction = float(
            np.mean(accuracies >= requirement.accuracy_threshold)
        )
        valid = satisfaction >= requirement.satisfaction_threshold
    else:
        satisfaction = 1.0
        valid = True

    total_cost = execution_times + extraction
    return ClassifierEvaluation(
        classifier=classifier,
        performance_cost=float(np.mean(total_cost)),
        performance_cost_no_extraction=float(np.mean(execution_times)),
        satisfaction_rate=satisfaction,
        valid=valid,
        mean_extraction_cost=float(np.mean(extraction)),
    )


def _fit_and_evaluate_fold(
    classifier_factory: Callable[[], CandidateClassifier],
    dataset: PerformanceDataset,
    labels: np.ndarray,
    fold_train_rows: np.ndarray,
    fold_test_rows: np.ndarray,
) -> ClassifierEvaluation:
    """Task function: fit a fresh candidate on one fold and score its holdout."""
    classifier = classifier_factory().fit(dataset, fold_train_rows, labels)
    return evaluate_classifier(classifier, dataset, fold_test_rows)


def cross_validate_classifier(
    classifier_factory: Callable[[], CandidateClassifier],
    dataset: PerformanceDataset,
    labels: np.ndarray,
    rows: Sequence[int],
    n_splits: int = 10,
    seed: Optional[int] = 0,
    runtime: Optional[Runtime] = None,
    key_prefix: Optional[str] = None,
) -> List[ClassifierEvaluation]:
    """Cross-validated efficacy of one candidate, one fold per task.

    The paper trains its exhaustive-subset classifiers under 10-fold
    cross-validation; this scores a candidate the same way, fanning the
    per-fold fit-and-score work over the runtime's executor.  Folds are
    stratified by label and the fold assignment depends only on ``seed``,
    so the returned per-fold evaluations are deterministic across
    executors.  For the process executor the factory must be picklable --
    a classifier class or a ``functools.partial`` of a module-level
    function (as :func:`repro.core.level2.run_level2` passes); a closure
    makes the batch fall back to serial execution.

    Args:
        classifier_factory: zero-argument callable returning a fresh
            unfitted candidate.
        dataset: the performance dataset.
        labels: the Level-2 labels (full-length, indexed by row).
        rows: the rows to cross-validate within (typically the train split).
        n_splits: fold count (clamped to the available row count).
        seed: fold-assignment seed.
        runtime: measurement runtime; defaults to the shared serial one.
        key_prefix: content key identifying (dataset, labels, candidate) --
            everything the fold results depend on besides the fold rows.
            When given, fold tasks are memoized so a warm runtime skips
            refitting them (like the Level-2 candidate search); when
            ``None`` every call re-executes.
    """
    active = runtime if runtime is not None else default_runtime()
    rows = np.asarray(rows, dtype=int)
    if rows.size < 2:
        raise ValueError("cross-validation needs at least 2 rows")
    n_splits = min(n_splits, rows.size)
    if n_splits < 2:
        raise ValueError("n_splits must be >= 2")
    splitter = StratifiedKFold(n_splits=n_splits, random_state=seed)
    # The dataset positional argument rides the shared-argument registry
    # (once per pool); the factory may still close over a dataset of its
    # own -- e.g. the ``functools.partial`` run_level2 passes -- which then
    # re-pickles with each fold chunk.  Folds are few, so that residual
    # cost is noise next to the candidate search's registry win.
    tasks = [
        TaskSpec(
            fn=_fit_and_evaluate_fold,
            args=(
                classifier_factory,
                _CV_DATASET_REF,
                labels,
                rows[fold_train],
                rows[fold_test],
            ),
            key=(
                content_key(key_prefix, rows[fold_train], rows[fold_test])
                if key_prefix is not None
                else None
            ),
            label=f"cv-fold:{fold_index}",
        )
        for fold_index, (fold_train, fold_test) in enumerate(splitter.split(labels[rows]))
    ]
    return active.run_tasks(
        tasks, phase="selection.crossval", shared={_CV_DATASET_TOKEN: dataset.without_inputs()}
    )


def select_production_classifier(
    evaluations: Sequence[ClassifierEvaluation],
) -> ClassifierEvaluation:
    """Pick the production classifier.

    Valid classifiers are ranked by performance cost; if no classifier is
    valid (possible when the accuracy requirement is unattainable on the
    test inputs) the one with the highest satisfaction rate, breaking ties by
    cost, is returned so deployment still produces the best available
    quality.

    Raises:
        ValueError: if ``evaluations`` is empty.
    """
    evaluations = list(evaluations)
    if not evaluations:
        raise ValueError("no classifier evaluations to select from")
    valid = [e for e in evaluations if e.valid]
    if valid:
        return min(valid, key=lambda e: e.performance_cost)
    return min(
        evaluations,
        key=lambda e: (-e.satisfaction_rate, e.performance_cost),
    )


def rank_classifiers(
    evaluations: Sequence[ClassifierEvaluation],
) -> List[ClassifierEvaluation]:
    """All evaluations sorted best-first under the selection rule."""
    return sorted(
        evaluations,
        key=lambda e: (not e.valid, -e.satisfaction_rate if not e.valid else 0.0, e.performance_cost),
    )
