"""Level 1: feature extraction, input clustering, landmark creation,
performance measurement (the paper's Figure 4 pipeline).

Steps (Section 3.1):

1. **Feature Extraction** -- assemble the M-dimensional feature vector (every
   property at every sampling level) for every training input, recording the
   per-feature extraction cost.
2. **Input Clustering** -- normalize the vectors and run K-means with K1
   clusters.
3. **Landmark Creation** -- autotune the program once per cluster, using the
   cluster's representative input (the training input closest to the
   centroid) as the presumed input; the winning configuration is that
   cluster's *landmark*.  The paper feeds the centroid itself to the
   autotuner; using the nearest real input is equivalent for our purposes
   and avoids having to invert feature extraction.
4. **Performance Measurement** -- run every landmark on every training input,
   recording execution time and accuracy.

The output is a :class:`~repro.core.dataset.PerformanceDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.autotuner import EvolutionaryAutotuner
from repro.core.dataset import PerformanceDataset
from repro.core.inputs import InputSource
from repro.lang.config import Configuration
from repro.lang.program import PetaBricksProgram
from repro.ml.kmeans import KMeans
from repro.ml.normalize import ZScoreNormalizer
from repro.runtime import Runtime, default_runtime


@dataclass
class Level1Config:
    """Knobs of the Level-1 pipeline.

    Attributes:
        n_clusters: K1, the number of input clusters / landmarks (the paper
            uses 100; the reproduction defaults to a smaller value because
            Section 4.3 shows 10-30 landmarks already capture most of the
            benefit and the experiment matrix is N x K1 program runs).
        seed: RNG seed for clustering and autotuning.
        tuner_generations: generation budget of the evolutionary autotuner.
        tuner_population: population size of the evolutionary autotuner.
        tuning_neighbors: how many inputs nearest to each centroid the
            autotuner evaluates candidates on.  The paper tunes on the
            centroid itself; evaluating on a few nearby real inputs makes the
            landmark's accuracy guarantee hold with some confidence across
            the cluster, which matters for the variable-accuracy benchmarks.
        deduplicate_landmarks: drop duplicate configurations produced for
            different clusters (keeps the landmark set tight).
    """

    n_clusters: int = 15
    seed: int = 0
    tuner_generations: int = 10
    tuner_population: int = 10
    tuning_neighbors: int = 3
    deduplicate_landmarks: bool = True


@dataclass
class Level1Result:
    """Everything Level 1 produces.

    Attributes:
        dataset: the <F, T, A, E> datatable.
        cluster_labels: K-means cluster index per training input.
        centroids: cluster centroids in normalized feature space.
        representative_indices: per cluster, the indices of the training
            inputs used as the presumed inputs during autotuning (the
            ``tuning_neighbors`` members closest to the centroid).
        landmarks: the landmark configurations (deduplicated when requested).
        cluster_to_landmark: for each Level-1 cluster, the index of its
            landmark in ``landmarks`` (several clusters may share a landmark
            after deduplication).
        normalizer: the feature normalizer fitted on the training features
            (needed by the one-level baseline to classify new inputs).
        tuning_evaluations: total number of program runs spent autotuning.
    """

    dataset: PerformanceDataset
    cluster_labels: np.ndarray
    centroids: np.ndarray
    representative_indices: List[List[int]]
    landmarks: List[Configuration]
    cluster_to_landmark: List[int]
    normalizer: ZScoreNormalizer
    tuning_evaluations: int = 0


#: Inputs materialized at once by :func:`extract_features` -- bounds the
#: streaming path's transient memory while amortizing the batch setup.
_EXTRACT_CHUNK = 256


def extract_features(
    program: PetaBricksProgram, inputs: Sequence[Any]
) -> Dict[str, np.ndarray]:
    """Step 1: extract every feature of every input, with costs.

    Returns a dict with ``"features"`` (N, M) and ``"costs"`` (N, M).
    Inputs are consumed in bounded chunks through the vectorized
    :meth:`~repro.lang.features.FeatureSet.extract_batch`, so a lazy
    :class:`~repro.core.inputs.InputSource` streams through in O(chunk)
    transient memory -- only the two (N, M) matrices persist -- while every
    entry stays bit-identical to the one-input-at-a-time path.
    """
    n = len(inputs)
    m = program.features.num_features()
    features = np.zeros((n, m))
    costs = np.zeros((n, m))
    chunk: List[Any] = []
    start = 0
    for program_input in inputs:
        chunk.append(program_input)
        if len(chunk) >= _EXTRACT_CHUNK:
            features[start : start + len(chunk)], costs[start : start + len(chunk)] = (
                program.features.extract_batch(chunk)
            )
            start += len(chunk)
            chunk = []
    if chunk:
        features[start : start + len(chunk)], costs[start : start + len(chunk)] = (
            program.features.extract_batch(chunk)
        )
    return {"features": features, "costs": costs}


def cluster_inputs(
    features: np.ndarray, n_clusters: int, seed: int = 0
) -> Dict[str, Any]:
    """Step 2: normalize the feature vectors and K-means them into K1 groups."""
    normalizer = ZScoreNormalizer()
    normalized = normalizer.fit_transform(features)
    kmeans = KMeans(n_clusters=n_clusters, random_state=seed)
    result = kmeans.fit(normalized)
    return {
        "normalizer": normalizer,
        "normalized": normalized,
        "labels": result.labels,
        "centroids": result.centroids,
    }


def representative_input_indices(
    normalized_features: np.ndarray,
    labels: np.ndarray,
    centroids: np.ndarray,
    n_neighbors: int = 1,
) -> List[List[int]]:
    """For each cluster, the indices of the inputs closest to its centroid.

    Returns a list of index lists (one per cluster), each containing up to
    ``n_neighbors`` member indices ordered by distance to the centroid.
    Empty clusters (possible after k-means repair) fall back to the globally
    closest inputs.
    """
    n_neighbors = max(1, n_neighbors)
    representatives: List[List[int]] = []
    for cluster in range(centroids.shape[0]):
        members = np.flatnonzero(labels == cluster)
        if members.size == 0:
            distances = np.sum((normalized_features - centroids[cluster]) ** 2, axis=1)
            order = np.argsort(distances)[:n_neighbors]
            representatives.append([int(i) for i in order])
            continue
        distances = np.sum(
            (normalized_features[members] - centroids[cluster]) ** 2, axis=1
        )
        order = members[np.argsort(distances)][:n_neighbors]
        representatives.append([int(i) for i in order])
    return representatives


def create_landmarks(
    program: PetaBricksProgram,
    inputs: Sequence[Any],
    representative_indices: Sequence[Sequence[int]],
    config: Level1Config,
    progress: Optional[Callable[[str], None]] = None,
    runtime: Optional[Runtime] = None,
) -> Dict[str, Any]:
    """Step 3: autotune the program once per cluster.

    Each cluster's autotuning run evaluates candidates on that cluster's
    representative inputs (the ``tuning_neighbors`` inputs closest to the
    centroid), so the landmark's accuracy holds with some confidence across
    the cluster rather than on a single presumed input only.
    """
    landmarks: List[Configuration] = []
    evaluations = 0
    for rank, member_indices in enumerate(representative_indices):
        tuner = EvolutionaryAutotuner(
            population_size=config.tuner_population,
            offspring_per_generation=config.tuner_population,
            max_generations=config.tuner_generations,
            seed=config.seed + rank,
            runtime=runtime,
        )
        tuning_inputs = [inputs[i] for i in member_indices]
        result = tuner.tune(program, tuning_inputs)
        landmarks.append(result.best_config)
        evaluations += result.evaluations
        if progress is not None:
            progress(
                f"landmark {rank + 1}/{len(representative_indices)} tuned "
                f"({result.evaluations} runs)"
            )
    return {"landmarks": landmarks, "evaluations": evaluations}


def measure_performance(
    program: PetaBricksProgram,
    inputs: Sequence[Any],
    landmarks: Sequence[Configuration],
    progress: Optional[Callable[[str], None]] = None,
    runtime: Optional[Runtime] = None,
) -> Dict[str, np.ndarray]:
    """Step 4: run every landmark on every input, recording time and accuracy.

    The N x K matrix is submitted to the measurement runtime as one logical
    batch, so a parallel executor can spread the runs across workers and a
    shared cache can recall measurements already taken (e.g. by the
    autotuner or an earlier experiment).  When the runtime has a
    ``batch_chunk`` configured, the batch streams through in content-ordered
    chunks -- at the paper's 50-60k-input scale the task list never has to
    exist in memory at once -- with bit-identical results either way.
    """
    runtime = runtime if runtime is not None else default_runtime()
    n, k = len(inputs), len(landmarks)
    before = runtime.telemetry.cache_hits
    with runtime.telemetry.phase("level1.measure"):
        measured = runtime.measure(program, landmarks, inputs)
    if progress is not None:
        hits = runtime.telemetry.cache_hits - before
        progress(f"measured {k} landmarks on {n} inputs ({hits} cache hits)")
    return measured


def run_level1(
    program: PetaBricksProgram,
    inputs: Sequence[Any],
    config: Optional[Level1Config] = None,
    progress: Optional[Callable[[str], None]] = None,
    runtime: Optional[Runtime] = None,
) -> Level1Result:
    """Run the full Level-1 pipeline and assemble the performance dataset.

    ``inputs`` may be a plain list or a lazy
    :class:`~repro.core.inputs.InputSource`.  With a source, no stage holds
    the whole population: feature extraction consumes it one input at a
    time, landmark tuning materializes only each cluster's representatives,
    and the measurement matrix streams through :meth:`Runtime.measure`
    (re-materializing inputs per chunk), so peak memory stays O(chunk)
    rather than O(N) while every number stays bit-identical to the
    materialized path (per-index generation is deterministic, so the
    content-keyed run cache sees the same keys either way).
    """
    if config is None:
        config = Level1Config()
    if len(inputs) < 2:
        raise ValueError("Level 1 needs at least two training inputs")
    runtime = runtime if runtime is not None else default_runtime()

    with runtime.telemetry.phase("level1.features"):
        extracted = extract_features(program, inputs)
    n_clusters = min(config.n_clusters, len(inputs))
    with runtime.telemetry.phase("level1.cluster"):
        clustering = cluster_inputs(extracted["features"], n_clusters, seed=config.seed)
    representatives = representative_input_indices(
        clustering["normalized"],
        clustering["labels"],
        clustering["centroids"],
        n_neighbors=config.tuning_neighbors,
    )
    with runtime.telemetry.phase("level1.tune"):
        landmark_info = create_landmarks(
            program, inputs, representatives, config, progress=progress, runtime=runtime
        )

    raw_landmarks = landmark_info["landmarks"]
    if config.deduplicate_landmarks:
        landmarks = []
        cluster_to_landmark = []
        for landmark in raw_landmarks:
            if landmark not in landmarks:
                landmarks.append(landmark)
            cluster_to_landmark.append(landmarks.index(landmark))
    else:
        landmarks = list(raw_landmarks)
        cluster_to_landmark = list(range(len(raw_landmarks)))

    measured = measure_performance(
        program, inputs, landmarks, progress=progress, runtime=runtime
    )
    dataset = PerformanceDataset(
        feature_names=program.features.feature_names(),
        features=extracted["features"],
        extraction_costs=extracted["costs"],
        times=measured["times"],
        accuracies=measured["accuracies"],
        landmarks=list(landmarks),
        requirement=program.accuracy_requirement,
        # A lazy source is kept as-is -- materializing it here would
        # reintroduce the O(N) input list the streaming path removes; the
        # dataset's consumers only ever index or re-iterate it.
        inputs=inputs if isinstance(inputs, InputSource) else list(inputs),
    )
    return Level1Result(
        dataset=dataset,
        cluster_labels=clustering["labels"],
        centroids=clustering["centroids"],
        representative_indices=representatives,
        landmarks=list(landmarks),
        cluster_to_landmark=cluster_to_landmark,
        normalizer=clustering["normalizer"],
        tuning_evaluations=landmark_info["evaluations"],
    )
