"""The Level-1 output datatable consumed by Level 2.

Section 3.2 of the paper: "we make each set of example inputs, their
features, feature extraction costs, execution times and accuracy scores for
each landmark configuration, a row of a dataset ... a datatable of 4-tuples
<F, T, A, E>".

:class:`PerformanceDataset` stores exactly that:

* ``features``          -- F, shape (N, M): every property at every level;
* ``times``             -- T, shape (N, K1): execution time of every landmark
  on every input;
* ``accuracies``        -- A, shape (N, K1): accuracy of every landmark on
  every input;
* ``extraction_costs``  -- E, shape (N, M): per-feature extraction cost.

It also knows how to compute the Level-2 labels (the best landmark per
input under the paper's accuracy-then-time rule) and how to slice itself
into train/test subsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.core.inputs import InputSource
from repro.lang.accuracy import AccuracyRequirement
from repro.lang.config import Configuration


@dataclass
class PerformanceDataset:
    """The <F, T, A, E> datatable plus the landmark configurations.

    Attributes:
        feature_names: fully-qualified feature names (columns of F and E).
        features: F matrix, shape (N, M).
        extraction_costs: E matrix, shape (N, M).
        times: T matrix, shape (N, K1).
        accuracies: A matrix, shape (N, K1).
        landmarks: the K1 landmark configurations.
        requirement: the program's accuracy requirement (used for labelling).
        inputs: optionally, the raw input objects (kept by the pipeline for
            deployment-time evaluation; experiments that only need the
            matrices may drop them).  Either a plain list or a lazy
            :class:`~repro.core.inputs.InputSource` -- consumers index and
            iterate it the same way, but a source re-materializes inputs on
            demand instead of pinning the whole population in memory.
    """

    feature_names: List[str]
    features: np.ndarray
    extraction_costs: np.ndarray
    times: np.ndarray
    accuracies: np.ndarray
    landmarks: List[Configuration]
    requirement: AccuracyRequirement
    inputs: Optional[Sequence[Any]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=float)
        self.extraction_costs = np.asarray(self.extraction_costs, dtype=float)
        self.times = np.asarray(self.times, dtype=float)
        self.accuracies = np.asarray(self.accuracies, dtype=float)
        n, m = self.features.shape
        if self.extraction_costs.shape != (n, m):
            raise ValueError("extraction_costs shape mismatch")
        if self.times.shape[0] != n or self.accuracies.shape != self.times.shape:
            raise ValueError("times/accuracies shape mismatch")
        if self.times.shape[1] != len(self.landmarks):
            raise ValueError("number of landmarks does not match T columns")
        if len(self.feature_names) != m:
            raise ValueError("feature_names length does not match F columns")

    # -- basic properties -------------------------------------------------

    @property
    def n_inputs(self) -> int:
        """Number of rows N."""
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        """Number of features M."""
        return int(self.features.shape[1])

    @property
    def n_landmarks(self) -> int:
        """Number of landmark configurations K1."""
        return int(self.times.shape[1])

    def feature_index(self, feature_name: str) -> int:
        """Column index of a fully-qualified feature name."""
        try:
            return self.feature_names.index(feature_name)
        except ValueError as exc:
            raise KeyError(f"unknown feature {feature_name!r}") from exc

    def feature_columns(self, feature_names: Sequence[str]) -> np.ndarray:
        """Submatrix of F restricted to the named features."""
        indices = [self.feature_index(name) for name in feature_names]
        return self.features[:, indices]

    def extraction_cost_for(self, feature_names: Sequence[str]) -> np.ndarray:
        """Per-input total extraction cost of the named features (vector of length N)."""
        if not feature_names:
            return np.zeros(self.n_inputs)
        indices = [self.feature_index(name) for name in feature_names]
        return self.extraction_costs[:, indices].sum(axis=1)

    # -- labelling (cluster refinement) ------------------------------------

    def labels(self) -> np.ndarray:
        """Best landmark per input under the paper's accuracy-then-time rule.

        For time-only programs the label is simply ``argmin_j T[i, j]``.  For
        variable-accuracy programs the label is the fastest landmark among
        those meeting the accuracy threshold; if none meets it, the landmark
        with the maximum accuracy.
        """
        n = self.n_inputs
        labels = np.empty(n, dtype=int)
        if not self.requirement.enabled:
            return np.argmin(self.times, axis=1)
        threshold = self.requirement.accuracy_threshold
        for i in range(n):
            meets = self.accuracies[i] >= threshold
            if meets.any():
                candidates = np.flatnonzero(meets)
                labels[i] = int(candidates[np.argmin(self.times[i, candidates])])
            else:
                labels[i] = int(np.argmax(self.accuracies[i]))
        return labels

    def best_times(self) -> np.ndarray:
        """Per-input execution time of the label landmark (the dynamic oracle)."""
        labels = self.labels()
        return self.times[np.arange(self.n_inputs), labels]

    def without_inputs(self) -> "PerformanceDataset":
        """This datatable minus the raw inputs (matrices shared, memoized).

        The shape task batches ship to executor workers: Level-2 fitting,
        candidate scoring, and cross-validation read only the matrices, so
        the raw inputs are dead weight on the wire -- potentially large,
        and, for a streamed run, a lazy source whose observer callback
        would not survive pickling under a spawn start method.  The view is
        memoized so every batch hands the executor the *identical* object
        and the process pool's shared-argument registry is not rebuilt per
        batch.
        """
        if self.inputs is None:
            return self
        stripped = self.__dict__.get("_without_inputs")
        if stripped is None:
            stripped = PerformanceDataset(
                feature_names=self.feature_names,
                features=self.features,
                extraction_costs=self.extraction_costs,
                times=self.times,
                accuracies=self.accuracies,
                landmarks=self.landmarks,
                requirement=self.requirement,
                inputs=None,
            )
            self.__dict__["_without_inputs"] = stripped
        return stripped

    # -- slicing ------------------------------------------------------------

    def subset(self, indices: Sequence[int]) -> "PerformanceDataset":
        """A new dataset restricted to the given row indices.

        A lazy input source is narrowed with a lazy view (no
        materialization); a plain input list is sliced eagerly.
        """
        indices = np.asarray(indices, dtype=int)
        if self.inputs is None:
            inputs = None
        elif isinstance(self.inputs, InputSource):
            inputs = self.inputs.select(int(i) for i in indices)
        else:
            inputs = [self.inputs[int(i)] for i in indices]
        return PerformanceDataset(
            feature_names=list(self.feature_names),
            features=self.features[indices],
            extraction_costs=self.extraction_costs[indices],
            times=self.times[indices],
            accuracies=self.accuracies[indices],
            landmarks=list(self.landmarks),
            requirement=self.requirement,
            inputs=inputs,
        )

    def restrict_landmarks(self, landmark_indices: Sequence[int]) -> "PerformanceDataset":
        """A new dataset keeping only the given landmark columns.

        Used by the Figure-8 experiment, which re-evaluates the system with
        random subsets of the trained landmarks.
        """
        landmark_indices = list(landmark_indices)
        if not landmark_indices:
            raise ValueError("need at least one landmark")
        return PerformanceDataset(
            feature_names=list(self.feature_names),
            features=self.features,
            extraction_costs=self.extraction_costs,
            times=self.times[:, landmark_indices],
            accuracies=self.accuracies[:, landmark_indices],
            landmarks=[self.landmarks[int(i)] for i in landmark_indices],
            requirement=self.requirement,
            inputs=self.inputs,
        )

    def __repr__(self) -> str:
        return (
            f"PerformanceDataset(N={self.n_inputs}, M={self.n_features}, "
            f"K1={self.n_landmarks})"
        )
