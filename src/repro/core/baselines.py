"""The comparison methods of Table 1: Static Oracle, Dynamic Oracle, One-Level.

* **Static Oracle** -- one configuration for all inputs, chosen by trying
  each landmark and keeping the one with the best training-set performance
  among those meeting the satisfaction threshold.  This is "the performance
  that would be obtained by not using our system and instead using an
  autotuner without input adaptation".
* **Dynamic Oracle** -- the best landmark for each input individually, with
  no feature-extraction cost; the upper bound for any input classifier given
  the available landmarks.
* **One-Level learning** -- the traditional approach: cluster inputs on the
  predefined features, give each cluster its landmark, and at deployment
  assign a new input to the nearest centroid (which requires extracting all
  features).  It ignores feature-extraction overhead and the accuracy
  objective, which is why the paper observes up to 29x slowdowns and missed
  accuracy targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.core.level1 import Level1Result
from repro.lang.program import PetaBricksProgram
from repro.ml.kmeans import assign_clusters
from repro.runtime import Runtime, default_runtime


@dataclass
class BaselineEvaluation:
    """Per-input outcome of a baseline method on a set of dataset rows.

    Attributes:
        name: method name.
        labels: chosen landmark per row.
        times: execution time per row including any feature-extraction cost
            the method requires.
        times_no_extraction: execution time per row ignoring extraction cost.
        accuracies: accuracy of the chosen landmark per row.
        satisfaction_rate: fraction of rows meeting the accuracy threshold.
    """

    name: str
    labels: np.ndarray
    times: np.ndarray
    times_no_extraction: np.ndarray
    accuracies: np.ndarray
    satisfaction_rate: float


def _satisfaction(dataset: PerformanceDataset, accuracies: np.ndarray) -> float:
    if not dataset.requirement.enabled:
        return 1.0
    return float(np.mean(accuracies >= dataset.requirement.accuracy_threshold))


class StaticOracle:
    """The best single landmark for the whole training set."""

    name = "static_oracle"

    def __init__(self) -> None:
        self.chosen_landmark_: Optional[int] = None

    def fit(self, dataset: PerformanceDataset, train_rows: Sequence[int]) -> "StaticOracle":
        """Pick the landmark with the best mean training time that meets the
        satisfaction threshold (or the most satisfying one if none does)."""
        train_rows = np.asarray(train_rows, dtype=int)
        times = dataset.times[train_rows]
        mean_times = times.mean(axis=0)
        requirement = dataset.requirement
        if requirement.enabled:
            accuracies = dataset.accuracies[train_rows]
            satisfaction = np.mean(
                accuracies >= requirement.accuracy_threshold, axis=0
            )
            feasible = np.flatnonzero(satisfaction >= requirement.satisfaction_threshold)
            if feasible.size > 0:
                self.chosen_landmark_ = int(feasible[np.argmin(mean_times[feasible])])
            else:
                self.chosen_landmark_ = int(np.argmax(satisfaction))
        else:
            self.chosen_landmark_ = int(np.argmin(mean_times))
        return self

    def evaluate(self, dataset: PerformanceDataset, rows: Sequence[int]) -> BaselineEvaluation:
        """Apply the chosen landmark to the given rows."""
        if self.chosen_landmark_ is None:
            raise RuntimeError("StaticOracle is not fitted")
        rows = np.asarray(rows, dtype=int)
        labels = np.full(rows.size, self.chosen_landmark_, dtype=int)
        times = dataset.times[rows, labels]
        accuracies = dataset.accuracies[rows, labels]
        return BaselineEvaluation(
            name=self.name,
            labels=labels,
            times=times,
            times_no_extraction=times,
            accuracies=accuracies,
            satisfaction_rate=_satisfaction(dataset, accuracies),
        )


class DynamicOracle:
    """The best landmark for each input individually (no extraction cost)."""

    name = "dynamic_oracle"

    def evaluate(self, dataset: PerformanceDataset, rows: Sequence[int]) -> BaselineEvaluation:
        """Per-row best landmark under the accuracy-then-time rule."""
        rows = np.asarray(rows, dtype=int)
        labels = dataset.labels()[rows]
        times = dataset.times[rows, labels]
        accuracies = dataset.accuracies[rows, labels]
        return BaselineEvaluation(
            name=self.name,
            labels=labels,
            times=times,
            times_no_extraction=times,
            accuracies=accuracies,
            satisfaction_rate=_satisfaction(dataset, accuracies),
        )

    def evaluate_live(
        self,
        program: PetaBricksProgram,
        dataset: PerformanceDataset,
        rows: Sequence[int],
        runtime: Optional[Runtime] = None,
    ) -> BaselineEvaluation:
        """Oracle evaluation by *re-running* every landmark on every row.

        Instead of reading the Level-1 measurement matrix, this re-executes
        the full landmarks-times-inputs grid through the measurement
        runtime.  With a cache shared with Level 1 every run is recalled
        rather than re-executed; with a cold cache it is an independent
        re-measurement.  Either way the result must agree with
        :meth:`evaluate` because runs are deterministic -- the runtime tests
        rely on exactly that.
        """
        if dataset.inputs is None:
            raise ValueError("live evaluation needs the dataset's raw inputs")
        runtime = runtime if runtime is not None else default_runtime()
        rows = np.asarray(rows, dtype=int)
        row_inputs = [dataset.inputs[int(i)] for i in rows]
        with runtime.telemetry.phase("baselines.dynamic_oracle"):
            measured = runtime.measure(program, dataset.landmarks, row_inputs)
        live = PerformanceDataset(
            feature_names=dataset.feature_names,
            features=dataset.features[rows],
            extraction_costs=dataset.extraction_costs[rows],
            times=measured["times"],
            accuracies=measured["accuracies"],
            landmarks=list(dataset.landmarks),
            requirement=dataset.requirement,
            inputs=row_inputs,
        )
        return self.evaluate(live, np.arange(rows.size))


class OneLevelLearning:
    """The traditional one-level approach (nearest Level-1 centroid).

    Deployment-time classification extracts *all* predefined features
    (the method has no notion of extraction cost) and assigns the input to
    the nearest Level-1 cluster centroid; the input then runs with that
    cluster's landmark, regardless of whether that landmark meets the
    accuracy target on it.
    """

    name = "one_level"

    def __init__(self, level1: Level1Result) -> None:
        self._level1 = level1

    def evaluate(self, dataset: PerformanceDataset, rows: Sequence[int]) -> BaselineEvaluation:
        """Nearest-centroid assignment for the given rows."""
        rows = np.asarray(rows, dtype=int)
        labels = self._assign_labels(dataset, rows)

        execution = dataset.times[rows, labels]
        extraction = dataset.extraction_costs[rows].sum(axis=1)
        accuracies = dataset.accuracies[rows, labels]
        return BaselineEvaluation(
            name=self.name,
            labels=labels,
            times=execution + extraction,
            times_no_extraction=execution,
            accuracies=accuracies,
            satisfaction_rate=_satisfaction(dataset, accuracies),
        )

    def evaluate_live(
        self,
        program: PetaBricksProgram,
        dataset: PerformanceDataset,
        rows: Sequence[int],
        runtime: Optional[Runtime] = None,
    ) -> BaselineEvaluation:
        """Deployment-style evaluation: re-run each row's assigned landmark.

        The nearest-centroid assignment is computed as in :meth:`evaluate`,
        but the chosen landmark is then actually executed on the row's input
        through the measurement runtime (recalled from cache when warm).
        """
        if dataset.inputs is None:
            raise ValueError("live evaluation needs the dataset's raw inputs")
        runtime = runtime if runtime is not None else default_runtime()
        rows = np.asarray(rows, dtype=int)
        labels = self._assign_labels(dataset, rows)
        pairs = [
            (dataset.landmarks[int(label)], dataset.inputs[int(row)])
            for label, row in zip(labels, rows)
        ]
        with runtime.telemetry.phase("baselines.one_level"):
            results = runtime.run_pairs(program, pairs)
        execution = np.array([result.time for result in results])
        accuracies = np.array([result.accuracy for result in results])
        extraction = dataset.extraction_costs[rows].sum(axis=1)
        return BaselineEvaluation(
            name=self.name,
            labels=labels,
            times=execution + extraction,
            times_no_extraction=execution,
            accuracies=accuracies,
            satisfaction_rate=_satisfaction(dataset, accuracies),
        )

    def _assign_labels(self, dataset: PerformanceDataset, rows: np.ndarray) -> np.ndarray:
        """Nearest-Level-1-centroid landmark assignment for the given rows."""
        level1 = self._level1
        normalized = level1.normalizer.transform(dataset.features[rows])
        clusters = assign_clusters(normalized, level1.centroids)
        mapping = np.asarray(level1.cluster_to_landmark, dtype=int)
        return mapping[clusters]
