"""Level 2: cluster refinement, cost matrix, classifier zoo, selection
(the paper's Figure 5 pipeline).

Steps (Section 3.2):

1. **Cluster refinement / labelling** -- regroup the training inputs by
   their *best landmark configuration* (accuracy-then-time rule), closing
   the mapping-disparity gap between the Level-1 feature-space clusters and
   the performance space.
2. **Cost matrix** -- ``C[i, j] = lambda * Ca[i, j] * max_t(Cp[i, t]) +
   Cp[i, j]`` where ``Cp[i, j]`` is the mean execution-time penalty of
   running landmark ``j`` on inputs labelled ``i`` and ``Ca[i, j]`` the
   fraction of those inputs for which landmark ``j`` misses the accuracy
   threshold.  The paper found ``lambda = 0.5`` best and we default to it.
3. **Classifier learning** -- one Max-apriori classifier, one decision tree
   per enumerated feature subset (at most one level per property), the
   all-features tree, and incremental feature-examination classifiers at a
   few posterior thresholds.
4. **Production-classifier selection** -- every candidate is scored on the
   test rows with the efficacy objective of :mod:`repro.core.selection`.

The candidate search (steps 3-4) is expressed as a batch of content-keyed
tasks over the measurement runtime (:meth:`repro.runtime.Runtime.run_tasks`):
each candidate is described by a picklable :class:`CandidateSpec`, fitted
and scored by a module-level task function, and the batch fans out over
whatever executor the runtime carries.  Determinism is preserved by
construction -- candidates are enumerated, reassembled, and compared in
*enumeration order* (a deterministic key independent of completion order),
so the serial path, the thread pool, and the process pool all select the
identical production classifier with identical scores.  Per-candidate cache
keys (dataset digest + split + spec) let a warm runtime skip retraining
entirely.
"""

from __future__ import annotations

import functools
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classifiers import (
    AllFeaturesClassifier,
    CandidateClassifier,
    IncrementalFeatureExaminationClassifier,
    MaxAprioriClassifier,
    SubsetDecisionTreeClassifier,
    order_features_by_cost,
)
from repro.core.dataset import PerformanceDataset
from repro.core.selection import (
    ClassifierEvaluation,
    cross_validate_classifier,
    evaluate_classifier,
    select_production_classifier,
)
from repro.runtime import Runtime, SharedRef, TaskSpec, content_key, default_runtime

#: Registry token under which candidate batches ship the dataset to workers.
#: The dataset is by far the largest task argument (O(N x M) features plus the
#: N x K1 matrices), so it rides the process pool's initializer -- crossing
#: the process boundary once per pool -- while each task only carries this
#: tiny placeholder.  See :class:`repro.runtime.SharedRef`.
_DATASET_TOKEN = "level2.dataset"
_DATASET_REF = SharedRef(_DATASET_TOKEN)


@dataclass
class Level2Config:
    """Knobs of the Level-2 pipeline.

    Attributes:
        accuracy_cost_weight: the paper's lambda in the cost matrix (0.5).
        conservative_cost_weights: additional lambda values at which each
            feature-subset tree is retrained for variable-accuracy programs.
            The paper tuned lambda by trying values between 0.001 and 1 and
            keeping the best; exposing a few heavier weights in the candidate
            zoo lets the selection step pick a more accuracy-conservative
            tree when the default one misses the satisfaction threshold.
        max_subsets: cap on the number of enumerated feature subsets; when
            the full enumeration ``(z + 1)^u - 1`` exceeds this, a
            deterministic random sample of subsets is used instead.
        tree_max_depth: decision-tree depth cap.
        incremental_thresholds: posterior thresholds at which to instantiate
            incremental feature-examination classifiers.
        seed: RNG seed for subset sampling.
        cv_folds: when > 0, the selected production candidate is additionally
            scored with stratified k-fold cross-validation on the training
            rows (fanned out over the runtime's executor); the per-fold costs
            land in :attr:`Level2Result.production_cv_costs`.  0 (the
            default) skips the extra work and keeps legacy behaviour.
    """

    accuracy_cost_weight: float = 0.5
    conservative_cost_weights: Tuple[float, ...] = (4.0,)
    max_subsets: int = 256
    tree_max_depth: int = 8
    incremental_thresholds: Tuple[float, ...] = (0.5, 0.7, 0.9)
    seed: int = 0
    cv_folds: int = 0


@dataclass
class Level2Result:
    """Everything Level 2 produces.

    Attributes:
        labels: the refined (performance-based) label per training input.
        cost_matrix: the K1 x K1 misclassification cost matrix.
        classifiers: every trained candidate classifier.
        evaluations: the test-set evaluation of every candidate.
        production: the selected production classifier's evaluation.
        train_rows / test_rows: the row split used.
        relabel_shift: fraction of training rows whose refined label differs
            from the landmark of their Level-1 cluster (the paper reports
            73.4% for Kmeans); ``None`` when the Level-1 cluster mapping was
            not supplied.
        production_cv_costs: per-fold performance costs of the production
            candidate under cross-validation (only when
            ``Level2Config.cv_folds > 0``).
    """

    labels: np.ndarray
    cost_matrix: np.ndarray
    classifiers: List[CandidateClassifier]
    evaluations: List[ClassifierEvaluation]
    production: ClassifierEvaluation
    train_rows: np.ndarray
    test_rows: np.ndarray
    relabel_shift: Optional[float] = None
    production_cv_costs: Optional[List[float]] = None


def compute_labels(dataset: PerformanceDataset) -> np.ndarray:
    """The refined labels: best landmark per input (accuracy-then-time)."""
    return dataset.labels()


def build_cost_matrix(
    dataset: PerformanceDataset,
    labels: np.ndarray,
    accuracy_cost_weight: float = 0.5,
) -> np.ndarray:
    """The paper's misclassification cost matrix.

    ``Cp[i, j]`` is the mean extra execution time incurred by running
    landmark ``j`` instead of the best landmark on inputs labelled ``i``;
    ``Ca[i, j]`` is the fraction of those inputs for which landmark ``j``
    misses the accuracy threshold.  The combined cost is
    ``lambda * Ca * scale_i + Cp``.

    Two implementation details keep the matrix well behaved for
    variable-accuracy programs:

    * the per-input time difference is clamped at zero before averaging --
      a landmark that is *faster* than the label landmark is necessarily
      inaccurate on that input (otherwise it would have been the label), so
      rewarding the time saving would teach classifiers to violate accuracy;
    * the accuracy-penalty scale for class ``i`` is the larger of the
      paper's ``max_t Cp[i, t]`` and the class's mean label execution time,
      so the penalty does not vanish for classes whose label landmark is the
      most expensive one (where every ``Cp[i, t]`` is zero after clamping).
    """
    k = dataset.n_landmarks
    performance_penalty = np.zeros((k, k))
    accuracy_penalty = np.zeros((k, k))
    scale = np.zeros(k)
    requirement = dataset.requirement

    for i in range(k):
        members = np.flatnonzero(labels == i)
        if members.size == 0:
            continue
        member_times = dataset.times[members]
        best_times = member_times[:, i][:, None]
        performance_penalty[i] = np.mean(
            np.maximum(member_times - best_times, 0.0), axis=0
        )
        scale[i] = float(np.mean(member_times[:, i]))
        if requirement.enabled:
            member_accuracies = dataset.accuracies[members]
            accuracy_penalty[i] = np.mean(
                member_accuracies < requirement.accuracy_threshold, axis=0
            )

    row_scale = np.maximum(performance_penalty.max(axis=1), scale)[:, None]
    cost = accuracy_cost_weight * accuracy_penalty * row_scale + performance_penalty
    np.fill_diagonal(cost, 0.0)
    return cost


def enumerate_feature_subsets(
    dataset: PerformanceDataset,
    max_subsets: int,
    seed: int = 0,
) -> List[Tuple[str, ...]]:
    """Enumerate candidate feature subsets: at most one level per property.

    Every property independently contributes either nothing or exactly one of
    its sampling levels, mirroring the paper's ``(z + 1)^u`` enumeration
    (minus the empty subset).  When the enumeration is larger than
    ``max_subsets`` a deterministic random sample is drawn, always keeping
    the all-cheapest-level and all-top-level subsets.
    """
    if max_subsets < 1:
        raise ValueError("max_subsets must be >= 1")
    properties: Dict[str, List[str]] = {}
    for name in dataset.feature_names:
        prop, _, _ = name.rpartition("@")
        properties.setdefault(prop, []).append(name)

    options = [[None] + levels for levels in properties.values()]
    subsets: List[Tuple[str, ...]] = []
    for combination in itertools.product(*options):
        chosen = tuple(name for name in combination if name is not None)
        if chosen:
            subsets.append(chosen)

    if len(subsets) <= max_subsets:
        return subsets

    cheapest = tuple(levels[0] for levels in properties.values())
    richest = tuple(levels[-1] for levels in properties.values())
    # The sentinels coincide when every property has a single level; keeping
    # both would emit a duplicate (and undercut the cap).
    sentinels = [cheapest] if richest == cheapest else [cheapest, richest]
    rng = random.Random(seed)
    sampled = rng.sample(subsets, max(0, max_subsets - len(sentinels)))
    result = sentinels + [s for s in sampled if s not in sentinels]
    if len(result) < max_subsets:
        # The sample overlapped the sentinels; top up deterministically so
        # the cap is always used in full.
        used = set(result)
        for subset in subsets:
            if len(result) >= max_subsets:
                break
            if subset not in used:
                result.append(subset)
                used.add(subset)
    return result[:max_subsets]


@dataclass(frozen=True)
class CandidateSpec:
    """Picklable description of one candidate classifier.

    The unit of work of the Level-2 search: a spec plus its cost matrix is
    everything a worker needs to instantiate, fit, and score a candidate,
    and everything the task cache needs to key the result.

    Attributes:
        family: ``"max_apriori"``, ``"subset_tree"``, ``"all_features"``,
            or ``"incremental"``.
        name: the candidate's unique name within the run.
        feature_names: the feature subset (``subset_tree``) or the ordered
            acquisition pool (``incremental``); empty otherwise.
        max_depth: decision-tree depth cap (tree families).
        posterior_threshold: early-stopping threshold (``incremental``).
    """

    family: str
    name: str
    feature_names: Tuple[str, ...] = ()
    max_depth: int = 8
    posterior_threshold: float = 0.5


def instantiate_candidate(
    spec: CandidateSpec,
    dataset: PerformanceDataset,
    cost_matrix: Optional[np.ndarray],
) -> CandidateClassifier:
    """Build the (unfitted) classifier a spec describes."""
    if spec.family == "max_apriori":
        return MaxAprioriClassifier()
    if spec.family == "subset_tree":
        return SubsetDecisionTreeClassifier(
            feature_names=spec.feature_names,
            cost_matrix=cost_matrix,
            max_depth=spec.max_depth,
            name=spec.name,
        )
    if spec.family == "all_features":
        return AllFeaturesClassifier(
            dataset.feature_names, cost_matrix=cost_matrix, max_depth=spec.max_depth
        )
    if spec.family == "incremental":
        return IncrementalFeatureExaminationClassifier(
            feature_names=spec.feature_names,
            posterior_threshold=spec.posterior_threshold,
            name=spec.name,
        )
    raise ValueError(f"unknown candidate family {spec.family!r}")


def enumerate_candidates(
    dataset: PerformanceDataset,
    labels: np.ndarray,
    cost_matrix: np.ndarray,
    config: Level2Config,
) -> List[Tuple[CandidateSpec, Optional[np.ndarray]]]:
    """Enumerate every candidate of the zoo, in the canonical order.

    Returns ``(spec, cost_matrix)`` pairs.  The order -- max-apriori, then
    subset trees (per subset, per lambda), the all-features tree, and the
    incremental classifiers -- is the deterministic key the whole search
    sorts by: selection tie-breaks resolve by position in this list, so it
    must not depend on executor scheduling.
    """
    candidates: List[Tuple[CandidateSpec, Optional[np.ndarray]]] = []
    candidates.append((CandidateSpec(family="max_apriori", name="max_apriori"), None))

    # For variable-accuracy programs also train accuracy-conservative trees
    # (heavier lambda), giving the selection step valid candidates even when
    # the default-lambda trees miss the satisfaction threshold.
    cost_matrices: List[Tuple[str, np.ndarray]] = [("", cost_matrix)]
    if dataset.requirement.enabled:
        for weight in config.conservative_cost_weights:
            cost_matrices.append(
                (
                    f"|lam={weight:g}",
                    build_cost_matrix(dataset, labels, accuracy_cost_weight=weight),
                )
            )

    subsets = enumerate_feature_subsets(dataset, config.max_subsets, seed=config.seed)
    for subset in subsets:
        for suffix, matrix in cost_matrices:
            spec = CandidateSpec(
                family="subset_tree",
                name="dtree[" + ",".join(subset) + "]" + suffix,
                feature_names=tuple(subset),
                max_depth=config.tree_max_depth,
            )
            candidates.append((spec, matrix))

    candidates.append(
        (
            CandidateSpec(
                family="all_features",
                name="all_features",
                max_depth=config.tree_max_depth,
            ),
            cost_matrix,
        )
    )

    ordered = tuple(order_features_by_cost(dataset, dataset.feature_names))
    for threshold in config.incremental_thresholds:
        spec = CandidateSpec(
            family="incremental",
            name=f"incremental[t={threshold}]",
            feature_names=ordered,
            posterior_threshold=threshold,
        )
        candidates.append((spec, None))

    return candidates


def fit_candidate(
    spec: CandidateSpec,
    cost_matrix: Optional[np.ndarray],
    dataset: PerformanceDataset,
    labels: np.ndarray,
    train_rows: np.ndarray,
) -> CandidateClassifier:
    """Task function: instantiate and fit one candidate."""
    return instantiate_candidate(spec, dataset, cost_matrix).fit(
        dataset, train_rows, labels
    )


def fit_and_evaluate_candidate(
    spec: CandidateSpec,
    cost_matrix: Optional[np.ndarray],
    dataset: PerformanceDataset,
    labels: np.ndarray,
    train_rows: np.ndarray,
    test_rows: np.ndarray,
) -> Tuple[CandidateClassifier, ClassifierEvaluation]:
    """Task function: fit one candidate and score it on the test rows.

    Fitting and scoring live in one task so a candidate round-trips to a
    worker once and one cache entry covers both.
    """
    classifier = fit_candidate(spec, cost_matrix, dataset, labels, train_rows)
    return classifier, evaluate_classifier(classifier, dataset, test_rows)


def _search_fingerprint(
    dataset: PerformanceDataset, labels: np.ndarray, config: Level2Config
) -> str:
    """Digest of everything all candidates share (dataset content + knobs)."""
    return content_key(
        "level2",
        dataset.feature_names,
        dataset.features,
        dataset.extraction_costs,
        dataset.times,
        dataset.accuracies,
        dataset.requirement,
        labels,
        config,
    )


def _candidate_tasks(
    candidates: Sequence[Tuple[CandidateSpec, Optional[np.ndarray]]],
    fingerprint: str,
    fn,
    shared_args: Tuple,
) -> List[TaskSpec]:
    """One task per candidate, keyed by (search fingerprint, spec, matrix)."""
    return [
        TaskSpec(
            fn=fn,
            args=(spec, matrix) + shared_args,
            key=content_key(fn.__name__, fingerprint, spec, matrix),
            label=spec.name,
        )
        for spec, matrix in candidates
    ]


def train_classifier_zoo(
    dataset: PerformanceDataset,
    labels: np.ndarray,
    train_rows: Sequence[int],
    cost_matrix: np.ndarray,
    config: Level2Config,
    runtime: Optional[Runtime] = None,
) -> List[CandidateClassifier]:
    """Instantiate and fit every candidate classifier on the training rows.

    Training fans out over the runtime's executor as one task batch; the
    returned list is in enumeration order regardless of completion order,
    identical to the serial loop it replaces.
    """
    active = runtime if runtime is not None else default_runtime()
    train_rows = np.asarray(train_rows, dtype=int)
    candidates = enumerate_candidates(dataset, labels, cost_matrix, config)
    fingerprint = _search_fingerprint(dataset, labels, config)
    tasks = _candidate_tasks(
        candidates,
        content_key(fingerprint, train_rows),
        fit_candidate,
        (_DATASET_REF, labels, train_rows),
    )
    return active.run_tasks(
        tasks, phase="level2.fit", shared={_DATASET_TOKEN: dataset.without_inputs()}
    )


def run_level2(
    dataset: PerformanceDataset,
    train_rows: Sequence[int],
    test_rows: Sequence[int],
    config: Optional[Level2Config] = None,
    level1_cluster_labels: Optional[np.ndarray] = None,
    cluster_to_landmark: Optional[Sequence[int]] = None,
    runtime: Optional[Runtime] = None,
) -> Level2Result:
    """Run the full Level-2 pipeline.

    The candidate search -- one fit-and-score task per classifier -- fans
    out over the runtime's executor (``phase level2.candidates`` in the
    telemetry) and is memoized per candidate, so a warm runtime skips
    retraining.  Results are assembled in enumeration order whatever the
    executor, which makes the selected production classifier and all its
    scores identical across serial, thread, and process execution.

    Args:
        dataset: the Level-1 performance dataset.
        train_rows: rows used to fit the classifiers.
        test_rows: rows used to evaluate and select the production classifier.
        config: Level-2 knobs.
        level1_cluster_labels: optional Level-1 K-means cluster per row,
            used only to report the relabel-shift statistic.
        cluster_to_landmark: optional mapping from Level-1 cluster index to
            landmark index (needed together with ``level1_cluster_labels``).
        runtime: measurement runtime the search fans out over; defaults to
            the shared serial, cache-less runtime (bit-identical legacy
            behaviour).
    """
    if config is None:
        config = Level2Config()
    active = runtime if runtime is not None else default_runtime()
    train_rows = np.asarray(train_rows, dtype=int)
    test_rows = np.asarray(test_rows, dtype=int)
    if train_rows.size == 0 or test_rows.size == 0:
        raise ValueError("both train and test rows must be non-empty")
    # Validate the cross-validation knobs up front: failing after the full
    # candidate search would throw away all of its work.
    if config.cv_folds < 0 or config.cv_folds == 1:
        raise ValueError("cv_folds must be 0 (disabled) or >= 2")
    if config.cv_folds > 0 and train_rows.size < 2:
        raise ValueError("cv_folds > 0 needs at least 2 training rows")

    labels = compute_labels(dataset)
    cost_matrix = build_cost_matrix(
        dataset, labels, accuracy_cost_weight=config.accuracy_cost_weight
    )

    candidates = enumerate_candidates(dataset, labels, cost_matrix, config)
    fingerprint = _search_fingerprint(dataset, labels, config)
    tasks = _candidate_tasks(
        candidates,
        content_key(fingerprint, train_rows, test_rows),
        fit_and_evaluate_candidate,
        (_DATASET_REF, labels, train_rows, test_rows),
    )
    fitted = active.run_tasks(
        tasks, phase="level2.candidates", shared={_DATASET_TOKEN: dataset.without_inputs()}
    )
    classifiers = [classifier for classifier, _ in fitted]
    evaluations = [evaluation for _, evaluation in fitted]
    production = select_production_classifier(evaluations)

    production_cv_costs: Optional[List[float]] = None
    if config.cv_folds > 0:
        index = next(i for i, e in enumerate(evaluations) if e is production)
        spec, matrix = candidates[index]
        # functools.partial of a module-level function stays picklable, so
        # the CV folds parallelize under the process executor too (a lambda
        # here would silently serialize the whole batch).
        factory = functools.partial(instantiate_candidate, spec, dataset, matrix)
        folds = cross_validate_classifier(
            factory,
            dataset,
            labels,
            train_rows,
            n_splits=config.cv_folds,
            seed=config.seed,
            runtime=active,
            key_prefix=content_key("level2.cv", fingerprint, spec, matrix),
        )
        production_cv_costs = [fold.performance_cost for fold in folds]

    relabel_shift: Optional[float] = None
    if level1_cluster_labels is not None and cluster_to_landmark is not None:
        mapping = np.asarray(list(cluster_to_landmark), dtype=int)
        level1_landmarks = mapping[np.asarray(level1_cluster_labels, dtype=int)]
        relabel_shift = float(np.mean(level1_landmarks != labels))

    return Level2Result(
        labels=labels,
        cost_matrix=cost_matrix,
        classifiers=classifiers,
        evaluations=evaluations,
        production=production,
        train_rows=train_rows,
        test_rows=test_rows,
        relabel_shift=relabel_shift,
        production_cv_costs=production_cv_costs,
    )
