"""Level 2: cluster refinement, cost matrix, classifier zoo, selection
(the paper's Figure 5 pipeline).

Steps (Section 3.2):

1. **Cluster refinement / labelling** -- regroup the training inputs by
   their *best landmark configuration* (accuracy-then-time rule), closing
   the mapping-disparity gap between the Level-1 feature-space clusters and
   the performance space.
2. **Cost matrix** -- ``C[i, j] = lambda * Ca[i, j] * max_t(Cp[i, t]) +
   Cp[i, j]`` where ``Cp[i, j]`` is the mean execution-time penalty of
   running landmark ``j`` on inputs labelled ``i`` and ``Ca[i, j]`` the
   fraction of those inputs for which landmark ``j`` misses the accuracy
   threshold.  The paper found ``lambda = 0.5`` best and we default to it.
3. **Classifier learning** -- one Max-apriori classifier, one decision tree
   per enumerated feature subset (at most one level per property), the
   all-features tree, and incremental feature-examination classifiers at a
   few posterior thresholds.
4. **Production-classifier selection** -- every candidate is scored on the
   test rows with the efficacy objective of :mod:`repro.core.selection`.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classifiers import (
    AllFeaturesClassifier,
    CandidateClassifier,
    IncrementalFeatureExaminationClassifier,
    MaxAprioriClassifier,
    SubsetDecisionTreeClassifier,
    order_features_by_cost,
)
from repro.core.dataset import PerformanceDataset
from repro.core.selection import (
    ClassifierEvaluation,
    evaluate_classifier,
    select_production_classifier,
)


@dataclass
class Level2Config:
    """Knobs of the Level-2 pipeline.

    Attributes:
        accuracy_cost_weight: the paper's lambda in the cost matrix (0.5).
        conservative_cost_weights: additional lambda values at which each
            feature-subset tree is retrained for variable-accuracy programs.
            The paper tuned lambda by trying values between 0.001 and 1 and
            keeping the best; exposing a few heavier weights in the candidate
            zoo lets the selection step pick a more accuracy-conservative
            tree when the default one misses the satisfaction threshold.
        max_subsets: cap on the number of enumerated feature subsets; when
            the full enumeration ``(z + 1)^u - 1`` exceeds this, a
            deterministic random sample of subsets is used instead.
        tree_max_depth: decision-tree depth cap.
        incremental_thresholds: posterior thresholds at which to instantiate
            incremental feature-examination classifiers.
        seed: RNG seed for subset sampling.
    """

    accuracy_cost_weight: float = 0.5
    conservative_cost_weights: Tuple[float, ...] = (4.0,)
    max_subsets: int = 256
    tree_max_depth: int = 8
    incremental_thresholds: Tuple[float, ...] = (0.5, 0.7, 0.9)
    seed: int = 0


@dataclass
class Level2Result:
    """Everything Level 2 produces.

    Attributes:
        labels: the refined (performance-based) label per training input.
        cost_matrix: the K1 x K1 misclassification cost matrix.
        classifiers: every trained candidate classifier.
        evaluations: the test-set evaluation of every candidate.
        production: the selected production classifier's evaluation.
        train_rows / test_rows: the row split used.
        relabel_shift: fraction of training rows whose refined label differs
            from the landmark of their Level-1 cluster (the paper reports
            73.4% for Kmeans); ``None`` when the Level-1 cluster mapping was
            not supplied.
    """

    labels: np.ndarray
    cost_matrix: np.ndarray
    classifiers: List[CandidateClassifier]
    evaluations: List[ClassifierEvaluation]
    production: ClassifierEvaluation
    train_rows: np.ndarray
    test_rows: np.ndarray
    relabel_shift: Optional[float] = None


def compute_labels(dataset: PerformanceDataset) -> np.ndarray:
    """The refined labels: best landmark per input (accuracy-then-time)."""
    return dataset.labels()


def build_cost_matrix(
    dataset: PerformanceDataset,
    labels: np.ndarray,
    accuracy_cost_weight: float = 0.5,
) -> np.ndarray:
    """The paper's misclassification cost matrix.

    ``Cp[i, j]`` is the mean extra execution time incurred by running
    landmark ``j`` instead of the best landmark on inputs labelled ``i``;
    ``Ca[i, j]`` is the fraction of those inputs for which landmark ``j``
    misses the accuracy threshold.  The combined cost is
    ``lambda * Ca * scale_i + Cp``.

    Two implementation details keep the matrix well behaved for
    variable-accuracy programs:

    * the per-input time difference is clamped at zero before averaging --
      a landmark that is *faster* than the label landmark is necessarily
      inaccurate on that input (otherwise it would have been the label), so
      rewarding the time saving would teach classifiers to violate accuracy;
    * the accuracy-penalty scale for class ``i`` is the larger of the
      paper's ``max_t Cp[i, t]`` and the class's mean label execution time,
      so the penalty does not vanish for classes whose label landmark is the
      most expensive one (where every ``Cp[i, t]`` is zero after clamping).
    """
    k = dataset.n_landmarks
    performance_penalty = np.zeros((k, k))
    accuracy_penalty = np.zeros((k, k))
    scale = np.zeros(k)
    requirement = dataset.requirement

    for i in range(k):
        members = np.flatnonzero(labels == i)
        if members.size == 0:
            continue
        member_times = dataset.times[members]
        best_times = member_times[:, i][:, None]
        performance_penalty[i] = np.mean(
            np.maximum(member_times - best_times, 0.0), axis=0
        )
        scale[i] = float(np.mean(member_times[:, i]))
        if requirement.enabled:
            member_accuracies = dataset.accuracies[members]
            accuracy_penalty[i] = np.mean(
                member_accuracies < requirement.accuracy_threshold, axis=0
            )

    row_scale = np.maximum(performance_penalty.max(axis=1), scale)[:, None]
    cost = accuracy_cost_weight * accuracy_penalty * row_scale + performance_penalty
    np.fill_diagonal(cost, 0.0)
    return cost


def enumerate_feature_subsets(
    dataset: PerformanceDataset,
    max_subsets: int,
    seed: int = 0,
) -> List[Tuple[str, ...]]:
    """Enumerate candidate feature subsets: at most one level per property.

    Every property independently contributes either nothing or exactly one of
    its sampling levels, mirroring the paper's ``(z + 1)^u`` enumeration
    (minus the empty subset).  When the enumeration is larger than
    ``max_subsets`` a deterministic random sample is drawn, always keeping
    the all-cheapest-level and all-top-level subsets.
    """
    properties: Dict[str, List[str]] = {}
    for name in dataset.feature_names:
        prop, _, _ = name.rpartition("@")
        properties.setdefault(prop, []).append(name)

    options = [[None] + levels for levels in properties.values()]
    subsets: List[Tuple[str, ...]] = []
    for combination in itertools.product(*options):
        chosen = tuple(name for name in combination if name is not None)
        if chosen:
            subsets.append(chosen)

    if len(subsets) <= max_subsets:
        return subsets

    cheapest = tuple(levels[0] for levels in properties.values())
    richest = tuple(levels[-1] for levels in properties.values())
    rng = random.Random(seed)
    sampled = rng.sample(subsets, max_subsets - 2)
    result = [cheapest, richest] + [s for s in sampled if s not in (cheapest, richest)]
    return result[:max_subsets]


def train_classifier_zoo(
    dataset: PerformanceDataset,
    labels: np.ndarray,
    train_rows: Sequence[int],
    cost_matrix: np.ndarray,
    config: Level2Config,
) -> List[CandidateClassifier]:
    """Instantiate and fit every candidate classifier on the training rows."""
    classifiers: List[CandidateClassifier] = []

    classifiers.append(MaxAprioriClassifier().fit(dataset, train_rows, labels))

    # For variable-accuracy programs also train accuracy-conservative trees
    # (heavier lambda), giving the selection step valid candidates even when
    # the default-lambda trees miss the satisfaction threshold.
    cost_matrices = [("", cost_matrix)]
    if dataset.requirement.enabled:
        for weight in config.conservative_cost_weights:
            cost_matrices.append(
                (
                    f"|lam={weight:g}",
                    build_cost_matrix(dataset, labels, accuracy_cost_weight=weight),
                )
            )

    subsets = enumerate_feature_subsets(dataset, config.max_subsets, seed=config.seed)
    for subset in subsets:
        for suffix, matrix in cost_matrices:
            classifier = SubsetDecisionTreeClassifier(
                feature_names=subset,
                cost_matrix=matrix,
                max_depth=config.tree_max_depth,
                name="dtree[" + ",".join(subset) + "]" + suffix,
            )
            classifiers.append(classifier.fit(dataset, train_rows, labels))

    classifiers.append(
        AllFeaturesClassifier(
            dataset.feature_names, cost_matrix=cost_matrix, max_depth=config.tree_max_depth
        ).fit(dataset, train_rows, labels)
    )

    ordered = order_features_by_cost(dataset, dataset.feature_names)
    for threshold in config.incremental_thresholds:
        classifier = IncrementalFeatureExaminationClassifier(
            feature_names=ordered,
            posterior_threshold=threshold,
            name=f"incremental[t={threshold}]",
        )
        classifiers.append(classifier.fit(dataset, train_rows, labels))

    return classifiers


def run_level2(
    dataset: PerformanceDataset,
    train_rows: Sequence[int],
    test_rows: Sequence[int],
    config: Optional[Level2Config] = None,
    level1_cluster_labels: Optional[np.ndarray] = None,
    cluster_to_landmark: Optional[Sequence[int]] = None,
) -> Level2Result:
    """Run the full Level-2 pipeline.

    Args:
        dataset: the Level-1 performance dataset.
        train_rows: rows used to fit the classifiers.
        test_rows: rows used to evaluate and select the production classifier.
        config: Level-2 knobs.
        level1_cluster_labels: optional Level-1 K-means cluster per row,
            used only to report the relabel-shift statistic.
        cluster_to_landmark: optional mapping from Level-1 cluster index to
            landmark index (needed together with ``level1_cluster_labels``).
    """
    if config is None:
        config = Level2Config()
    train_rows = np.asarray(train_rows, dtype=int)
    test_rows = np.asarray(test_rows, dtype=int)
    if train_rows.size == 0 or test_rows.size == 0:
        raise ValueError("both train and test rows must be non-empty")

    labels = compute_labels(dataset)
    cost_matrix = build_cost_matrix(
        dataset, labels, accuracy_cost_weight=config.accuracy_cost_weight
    )
    classifiers = train_classifier_zoo(dataset, labels, train_rows, cost_matrix, config)
    evaluations = [
        evaluate_classifier(classifier, dataset, test_rows) for classifier in classifiers
    ]
    production = select_production_classifier(evaluations)

    relabel_shift: Optional[float] = None
    if level1_cluster_labels is not None and cluster_to_landmark is not None:
        mapping = np.asarray(list(cluster_to_landmark), dtype=int)
        level1_landmarks = mapping[np.asarray(level1_cluster_labels, dtype=int)]
        relabel_shift = float(np.mean(level1_landmarks != labels))

    return Level2Result(
        labels=labels,
        cost_matrix=cost_matrix,
        classifiers=classifiers,
        evaluations=evaluations,
        production=production,
        train_rows=train_rows,
        test_rows=test_rows,
        relabel_shift=relabel_shift,
    )
