"""The candidate classifier zoo (paper Section 3.2, "Classifier Learning").

Four classifier families are implemented, matching the paper:

1. :class:`MaxAprioriClassifier` -- predicts the most common label, extracts
   no features.
2. :class:`SubsetDecisionTreeClassifier` -- a cost-sensitive decision tree
   over one candidate feature subset (at most one sampling level per
   property).  Level 2 instantiates one of these for every enumerated
   subset; this is the "Exhaustive Feature Subsets" family.
3. :class:`AllFeaturesClassifier` -- the member of that family that uses
   every property (called out separately in the paper).
4. :class:`IncrementalFeatureExaminationClassifier` -- acquires features one
   at a time in a fixed order, updating class posteriors, and stops as soon
   as one class exceeds a confidence threshold; feature extraction cost is
   therefore input dependent.

All classifiers share a uniform interface: they are fit on rows of a
:class:`~repro.core.dataset.PerformanceDataset` and can then

* predict labels for dataset rows (using the stored F/E matrices -- no
  re-extraction), returning per-row feature-extraction costs so the
  selection objective can charge them; and
* classify a brand-new input at deployment time, extracting exactly the
  features they need via the program's
  :class:`~repro.lang.features.FeatureSet`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import PerformanceDataset
from repro.lang.features import FeatureSet
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.naive_bayes import DiscretizedNaiveBayes


@dataclass(frozen=True)
class ClassifierDescription:
    """Identity of a candidate classifier, for reports and Table-1 notes.

    Attributes:
        name: unique name within a Level-2 run.
        method: family name (``"max_apriori"``, ``"decision_tree"``,
            ``"all_features"``, ``"incremental"``).
        feature_names: the fully-qualified features the classifier may
            consult (for the incremental classifier, the ordered pool).
    """

    name: str
    method: str
    feature_names: Tuple[str, ...]


@dataclass
class DatasetPredictions:
    """Predictions of a classifier over dataset rows.

    Attributes:
        labels: predicted landmark index per row.
        extraction_costs: feature-extraction cost charged per row.
    """

    labels: np.ndarray
    extraction_costs: np.ndarray


class CandidateClassifier(abc.ABC):
    """Interface shared by every classifier family."""

    def __init__(self, description: ClassifierDescription) -> None:
        self.description = description

    @property
    def name(self) -> str:
        """Classifier name (unique within a Level-2 run)."""
        return self.description.name

    @property
    def feature_names(self) -> Tuple[str, ...]:
        """Features this classifier may consult."""
        return self.description.feature_names

    @abc.abstractmethod
    def fit(self, dataset: PerformanceDataset, rows: Sequence[int], labels: np.ndarray) -> "CandidateClassifier":
        """Train on the given dataset rows (labels are the Level-2 labels)."""

    @abc.abstractmethod
    def predict_rows(self, dataset: PerformanceDataset, rows: Sequence[int]) -> DatasetPredictions:
        """Predict labels (and charge extraction costs) for dataset rows."""

    @abc.abstractmethod
    def classify_input(self, program_input: Any, features: FeatureSet) -> Tuple[int, float]:
        """Classify a new input at deployment time.

        Returns:
            ``(landmark_index, feature_extraction_cost)``.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class MaxAprioriClassifier(CandidateClassifier):
    """Predict the empirically most common label; never extract features."""

    def __init__(self) -> None:
        super().__init__(
            ClassifierDescription(name="max_apriori", method="max_apriori", feature_names=())
        )
        self._label: int = 0

    def fit(self, dataset: PerformanceDataset, rows: Sequence[int], labels: np.ndarray) -> "MaxAprioriClassifier":
        row_labels = labels[np.asarray(rows, dtype=int)]
        counts = np.bincount(row_labels, minlength=dataset.n_landmarks)
        self._label = int(np.argmax(counts))
        return self

    def predict_rows(self, dataset: PerformanceDataset, rows: Sequence[int]) -> DatasetPredictions:
        n = len(rows)
        return DatasetPredictions(
            labels=np.full(n, self._label, dtype=int),
            extraction_costs=np.zeros(n),
        )

    def classify_input(self, program_input: Any, features: FeatureSet) -> Tuple[int, float]:
        return self._label, 0.0


class SubsetDecisionTreeClassifier(CandidateClassifier):
    """Cost-sensitive decision tree over one candidate feature subset."""

    def __init__(
        self,
        feature_names: Sequence[str],
        cost_matrix: Optional[np.ndarray] = None,
        max_depth: int = 8,
        name: Optional[str] = None,
        method: str = "decision_tree",
    ) -> None:
        if not feature_names:
            raise ValueError("a decision-tree classifier needs at least one feature")
        super().__init__(
            ClassifierDescription(
                name=name or "dtree[" + ",".join(feature_names) + "]",
                method=method,
                feature_names=tuple(feature_names),
            )
        )
        self._cost_matrix = cost_matrix
        self._max_depth = max_depth
        self._tree: Optional[DecisionTreeClassifier] = None

    def fit(self, dataset: PerformanceDataset, rows: Sequence[int], labels: np.ndarray) -> "SubsetDecisionTreeClassifier":
        rows = np.asarray(rows, dtype=int)
        X = dataset.feature_columns(self.feature_names)[rows]
        y = labels[rows]
        self._tree = DecisionTreeClassifier(
            max_depth=self._max_depth, cost_matrix=self._cost_matrix
        )
        self._tree.fit(X, y)
        return self

    def predict_rows(self, dataset: PerformanceDataset, rows: Sequence[int]) -> DatasetPredictions:
        if self._tree is None:
            raise RuntimeError("classifier is not fitted")
        rows = np.asarray(rows, dtype=int)
        X = dataset.feature_columns(self.feature_names)[rows]
        costs = dataset.extraction_cost_for(self.feature_names)[rows]
        return DatasetPredictions(labels=self._tree.predict(X), extraction_costs=costs)

    def classify_input(self, program_input: Any, features: FeatureSet) -> Tuple[int, float]:
        if self._tree is None:
            raise RuntimeError("classifier is not fitted")
        values, cost = features.extract_subset(program_input, self.feature_names)
        vector = np.array([values[name] for name in self.feature_names])
        return int(self._tree.predict_one(vector)), cost


class AllFeaturesClassifier(SubsetDecisionTreeClassifier):
    """The exhaustive-subset member that uses every property.

    The paper calls this classifier out separately; it uses all ``u`` unique
    properties (we take each property at its most accurate sampling level).
    """

    def __init__(
        self,
        dataset_feature_names: Sequence[str],
        cost_matrix: Optional[np.ndarray] = None,
        max_depth: int = 8,
    ) -> None:
        top_level: Dict[str, str] = {}
        for name in dataset_feature_names:
            prop, _, level = name.rpartition("@")
            current = top_level.get(prop)
            if current is None or int(level) > int(current.rpartition("@")[2]):
                top_level[prop] = name
        super().__init__(
            feature_names=list(top_level.values()),
            cost_matrix=cost_matrix,
            max_depth=max_depth,
            name="all_features",
            method="all_features",
        )


class IncrementalFeatureExaminationClassifier(CandidateClassifier):
    """Sequential feature acquisition with posterior-threshold early stopping.

    Features are consulted in a fixed order (cheapest first by default); after
    each feature the class posterior is updated via the discretized Bayes
    model, and classification stops as soon as the maximum posterior exceeds
    ``posterior_threshold``.  The per-input extraction cost therefore varies:
    easy inputs are classified after one cheap feature, ambiguous ones pay
    for more.
    """

    def __init__(
        self,
        feature_names: Sequence[str],
        posterior_threshold: float = 0.6,
        n_regions: int = 8,
        name: Optional[str] = None,
    ) -> None:
        if not feature_names:
            raise ValueError("the incremental classifier needs at least one feature")
        if not (0.0 < posterior_threshold <= 1.0):
            raise ValueError("posterior_threshold must be in (0, 1]")
        super().__init__(
            ClassifierDescription(
                name=name or "incremental[" + ",".join(feature_names) + "]",
                method="incremental",
                feature_names=tuple(feature_names),
            )
        )
        self.posterior_threshold = posterior_threshold
        self._n_regions = n_regions
        self._model: Optional[DiscretizedNaiveBayes] = None

    def fit(self, dataset: PerformanceDataset, rows: Sequence[int], labels: np.ndarray) -> "IncrementalFeatureExaminationClassifier":
        rows = np.asarray(rows, dtype=int)
        X = dataset.feature_columns(self.feature_names)[rows]
        y = labels[rows]
        self._model = DiscretizedNaiveBayes(n_regions=self._n_regions)
        self._model.fit(X, y)
        return self

    def _classify_vector(
        self, vector: np.ndarray, per_feature_costs: np.ndarray
    ) -> Tuple[int, float, int]:
        """Classify one feature vector, returning (label, cost, n_features_used)."""
        assert self._model is not None
        observations: List[Tuple[int, float]] = []
        cost = 0.0
        posterior = self._model.posterior(observations)
        for index in range(len(self.feature_names)):
            observations.append((index, float(vector[index])))
            cost += float(per_feature_costs[index])
            posterior = self._model.posterior(observations)
            if float(posterior.max()) >= self.posterior_threshold:
                break
        return int(np.argmax(posterior)), cost, len(observations)

    def predict_rows(self, dataset: PerformanceDataset, rows: Sequence[int]) -> DatasetPredictions:
        """Vectorized sequential acquisition: one batched posterior update
        per feature, with rows dropping out of the active set as soon as
        their posterior clears the threshold.  Per-row results (label, cost)
        are bit-identical to :meth:`_classify_vector` -- the log-likelihood
        accumulation order and the per-step normalization are the same.
        """
        if self._model is None:
            raise RuntimeError("classifier is not fitted")
        rows = np.asarray(rows, dtype=int)
        X = dataset.feature_columns(self.feature_names)[rows]
        indices = [dataset.feature_index(name) for name in self.feature_names]
        costs_matrix = dataset.extraction_costs[np.ix_(rows, indices)]
        n = len(rows)
        n_features = len(self.feature_names)
        labels = np.zeros(n, dtype=int)
        costs = np.zeros(n)
        if n == 0:
            return DatasetPredictions(labels=labels, extraction_costs=costs)
        if n_features == 0:
            labels[:] = int(np.argmax(self._model.posterior([])))
            return DatasetPredictions(labels=labels, extraction_costs=costs)
        log_posterior = np.tile(self._model.log_prior(), (n, 1))
        active = np.arange(n)
        for step in range(n_features):
            log_posterior[active] += self._model.log_likelihood_batch(
                step, X[active, step]
            )
            costs[active] += costs_matrix[active, step]
            shifted = log_posterior[active]
            shifted = shifted - shifted.max(axis=1, keepdims=True)
            posterior = np.exp(shifted)
            posterior /= posterior.sum(axis=1, keepdims=True)
            done = posterior.max(axis=1) >= self.posterior_threshold
            if step == n_features - 1:
                done = np.ones_like(done)
            finished = np.flatnonzero(done)
            if finished.size:
                labels[active[finished]] = np.argmax(posterior[finished], axis=1)
                active = active[~done]
                if active.size == 0:
                    break
        return DatasetPredictions(labels=labels, extraction_costs=costs)

    def classify_input(self, program_input: Any, features: FeatureSet) -> Tuple[int, float]:
        if self._model is None:
            raise RuntimeError("classifier is not fitted")
        observations: List[Tuple[int, float]] = []
        cost = 0.0
        posterior = self._model.posterior(observations)
        for index, feature_name in enumerate(self.feature_names):
            values, extraction_cost = features.extract_subset(program_input, [feature_name])
            cost += extraction_cost
            observations.append((index, values[feature_name]))
            posterior = self._model.posterior(observations)
            if float(posterior.max()) >= self.posterior_threshold:
                break
        return int(np.argmax(posterior)), cost


def order_features_by_cost(dataset: PerformanceDataset, feature_names: Sequence[str]) -> List[str]:
    """Order features by their mean extraction cost (cheapest first).

    This is the default acquisition order for the incremental classifier.
    """
    means = {
        name: float(dataset.extraction_costs[:, dataset.feature_index(name)].mean())
        for name in feature_names
    }
    return sorted(feature_names, key=lambda name: means[name])
