"""repro: a reproduction of "Autotuning Algorithmic Choice for Input
Sensitivity" (Ding et al., PLDI 2015).

The package is organized as:

* :mod:`repro.lang` -- a PetaBricks-like substrate: algorithmic choice sites,
  selectors, tunables, ``input_feature`` extractors with sampling levels,
  variable-accuracy contracts, and the deterministic work-unit cost model.
* :mod:`repro.autotuner` -- the evolutionary autotuner used to produce
  landmark configurations.
* :mod:`repro.ml` -- from-scratch ML machinery (K-means, cost-sensitive
  decision trees, discretized naive Bayes, cross-validation).
* :mod:`repro.benchmarks_suite` -- the six benchmarks of the paper's
  evaluation (Sort, Clustering, Bin Packing, SVD, Poisson 2D, Helmholtz 3D).
* :mod:`repro.core` -- the paper's contribution: the two-level input-aware
  learning framework, its classifier zoo, the comparison baselines, and the
  Section 4.3 theoretical model.
* :mod:`repro.runtime` -- the shared measurement runtime: serial /
  thread-pool / process-pool executors, a content-keyed run cache, and
  telemetry.  All program runs (autotuning, Level-1 measurement, baselines,
  deployment) go through it.
* :mod:`repro.experiments` -- drivers that regenerate Table 1 and Figures
  6, 7, and 8.

Typical usage::

    from repro.benchmarks_suite import get_benchmark
    from repro.core import InputAwareLearning, Level1Config

    variant = get_benchmark("sort2")
    inputs = variant.benchmark.generate_inputs(200, variant.variant, seed=0)
    learner = InputAwareLearning(Level1Config(n_clusters=10))
    training = learner.fit(variant.benchmark.program, inputs)
    outcome = training.deployed.run(inputs[0])
"""

from repro.core import InputAwareLearning
from repro.lang import PetaBricksProgram

__version__ = "1.0.0"

__all__ = ["InputAwareLearning", "PetaBricksProgram", "__version__"]
