"""Figure 6: distribution of per-input speedups over the static oracle.

The paper plots, for each test, the speedup of the two-level method on every
individual input, sorted ascending; the interesting observation is the heavy
right tail (small sets of inputs with very large speedups, up to 90x) even
where the mean speedup is modest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.runner import ExperimentConfig, ExperimentResult, run_experiment


@dataclass
class SpeedupDistribution:
    """The sorted per-input speedup series for one test (one Figure 6 panel).

    Attributes:
        test_name: which test the panel belongs to.
        speedups: per-input speedups over the static oracle, sorted ascending
            (this is exactly the series the paper plots).
    """

    test_name: str
    speedups: np.ndarray

    @property
    def mean(self) -> float:
        """Mean per-input speedup."""
        return float(np.mean(self.speedups))

    @property
    def maximum(self) -> float:
        """The largest per-input speedup (the tail the paper highlights)."""
        return float(np.max(self.speedups))

    def tail_fraction(self, factor: float = 2.0) -> float:
        """Fraction of inputs whose speedup exceeds ``factor``x."""
        return float(np.mean(self.speedups > factor))

    def quantiles(self, probabilities: Sequence[float] = (0.25, 0.5, 0.75)) -> np.ndarray:
        """Selected quantiles of the distribution."""
        return np.quantile(self.speedups, list(probabilities))


def distribution_from_result(result: ExperimentResult) -> SpeedupDistribution:
    """Build the Figure-6 panel data from an experiment result."""
    speedups = np.sort(result.speedups_over_static("two_level", with_extraction=True))
    return SpeedupDistribution(test_name=result.test_name, speedups=speedups)


def run_figure6(
    tests: Sequence[str],
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, SpeedupDistribution]:
    """Run the requested tests and return each panel's sorted speedup series."""
    panels: Dict[str, SpeedupDistribution] = {}
    for test_name in tests:
        result = run_experiment(test_name, config=config)
        panels[test_name] = distribution_from_result(result)
    return panels
