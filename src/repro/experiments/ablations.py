"""In-text ablations from the paper.

Two claims in the running text are reproduced here in addition to the main
table and figures:

* Section 3.1: with few landmarks, choosing them by clustering the inputs
  (k-means on input features) is substantially better than choosing them by
  uniform random sampling of training inputs ("with 5 configurations,
  uniformly picked landmarks result in 41% degradation of performance than
  selection with kmeans").  :func:`landmark_selection_ablation` measures the
  dynamic-oracle performance obtainable from landmarks tuned on k-means
  representatives vs. on uniformly sampled inputs.
* Section 4.2: "73.4% of the data points changed their clusters when the
  second-level clustering is applied."  The Level-2 result already records
  this as ``relabel_shift``; :func:`relabel_shift` simply surfaces it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.autotuner import EvolutionaryAutotuner
from repro.core.baselines import DynamicOracle, StaticOracle
from repro.core.dataset import PerformanceDataset
from repro.core.level1 import Level1Config, measure_performance
from repro.experiments.runner import ExperimentConfig, ExperimentResult, run_experiment
from repro.runtime import Runtime


@dataclass
class LandmarkSelectionAblation:
    """Outcome of the k-means-vs-random landmark selection ablation.

    Attributes:
        kmeans_speedup: mean dynamic-oracle speedup over the static oracle
            when landmarks come from k-means cluster representatives.
        random_speedup: same, when landmarks come from uniformly sampled
            training inputs.
        degradation: relative degradation of random vs. k-means
            (positive means random is worse, as the paper reports).
    """

    kmeans_speedup: float
    random_speedup: float

    @property
    def degradation(self) -> float:
        if self.kmeans_speedup <= 0:
            return 0.0
        return (self.kmeans_speedup - self.random_speedup) / self.kmeans_speedup


def _oracle_speedup(dataset: PerformanceDataset, train_rows, test_rows) -> float:
    static = StaticOracle().fit(dataset, train_rows).evaluate(dataset, test_rows)
    dynamic = DynamicOracle().evaluate(dataset, test_rows)
    return float(np.mean(static.times / np.maximum(dynamic.times, 1e-12)))


def landmark_selection_ablation(
    result: ExperimentResult,
    n_landmarks: int = 5,
    seed: int = 0,
    tuner_generations: int = 6,
    tuner_population: int = 8,
    runtime: Optional[Runtime] = None,
) -> LandmarkSelectionAblation:
    """Compare k-means-representative landmarks against random-input landmarks.

    Both alternatives get the same landmark budget; the k-means side reuses
    the already-trained experiment's landmarks (restricted to the budget by
    taking the first ``n_landmarks``), while the random side autotunes fresh
    landmarks on uniformly chosen training inputs and measures them on the
    same inputs.
    """
    training = result.training
    dataset = training.dataset
    program = training.deployed.program
    train_rows = training.level2.train_rows
    test_rows = training.level2.test_rows

    budget = min(n_landmarks, dataset.n_landmarks)
    kmeans_dataset = dataset.restrict_landmarks(list(range(budget)))
    kmeans_speedup = _oracle_speedup(kmeans_dataset, train_rows, test_rows)

    rng = random.Random(seed)
    assert dataset.inputs is not None, "ablation needs the raw inputs"
    candidate_rows = [int(i) for i in train_rows]
    chosen = rng.sample(candidate_rows, min(budget, len(candidate_rows)))
    landmarks = []
    for rank, row in enumerate(chosen):
        tuner = EvolutionaryAutotuner(
            population_size=tuner_population,
            offspring_per_generation=tuner_population,
            max_generations=tuner_generations,
            seed=seed + rank,
            runtime=runtime,
        )
        landmarks.append(tuner.tune(program, [dataset.inputs[row]]).best_config)

    measured = measure_performance(program, dataset.inputs, landmarks, runtime=runtime)
    random_dataset = PerformanceDataset(
        feature_names=dataset.feature_names,
        features=dataset.features,
        extraction_costs=dataset.extraction_costs,
        times=measured["times"],
        accuracies=measured["accuracies"],
        landmarks=landmarks,
        requirement=dataset.requirement,
        inputs=dataset.inputs,
    )
    random_speedup = _oracle_speedup(random_dataset, train_rows, test_rows)
    return LandmarkSelectionAblation(
        kmeans_speedup=kmeans_speedup, random_speedup=random_speedup
    )


def relabel_shift(result: ExperimentResult) -> Optional[float]:
    """Fraction of inputs whose Level-2 label differs from their Level-1 cluster's landmark."""
    return result.training.level2.relabel_shift


@dataclass
class PcaClusteringAblation:
    """Outcome of the PCA-based one-level clustering ablation.

    The paper argues that unsupervised feature selection such as PCA cannot
    close the mapping-disparity gap.  This ablation re-clusters the training
    inputs on their leading principal components (instead of the raw
    normalized features), assigns each cluster the landmark of its nearest
    original Level-1 cluster, and measures the resulting one-level-style
    performance on the test inputs.

    Attributes:
        pca_speedup: mean speedup over the static oracle of the PCA-clustered
            one-level assignment (execution time only, no extraction cost).
        two_level_speedup: the trained two-level method's speedup on the same
            rows (without extraction cost, for a like-for-like comparison).
    """

    pca_speedup: float
    two_level_speedup: float


def pca_clustering_ablation(
    result: ExperimentResult, n_components: int = 2, seed: int = 0
) -> PcaClusteringAblation:
    """Compare PCA-space one-level clustering against the two-level method."""
    from repro.ml.kmeans import KMeans
    from repro.ml.normalize import ZScoreNormalizer
    from repro.ml.pca import PCA

    training = result.training
    dataset = training.dataset
    train_rows = training.level2.train_rows
    test_rows = training.level2.test_rows

    normalizer = ZScoreNormalizer()
    normalized = normalizer.fit_transform(dataset.features[train_rows])
    pca = PCA(n_components=min(n_components, normalized.shape[1]))
    projected_train = pca.fit_transform(normalized)
    n_clusters = len(training.level1.cluster_to_landmark)
    clusters = KMeans(n_clusters=n_clusters, random_state=seed).fit(projected_train)

    # Each PCA cluster adopts the landmark that is best on average for its
    # training members (a one-level-style assignment with no accuracy logic).
    labels = np.asarray(clusters.labels)
    cluster_landmark = np.zeros(clusters.centroids.shape[0], dtype=int)
    for cluster in range(clusters.centroids.shape[0]):
        members = train_rows[np.flatnonzero(labels == cluster)]
        if members.size == 0:
            continue
        cluster_landmark[cluster] = int(np.argmin(dataset.times[members].mean(axis=0)))

    projected_test = pca.transform(normalizer.transform(dataset.features[test_rows]))
    distances = (
        np.sum(projected_test ** 2, axis=1)[:, None]
        + np.sum(clusters.centroids ** 2, axis=1)[None, :]
        - 2.0 * projected_test @ clusters.centroids.T
    )
    assigned = cluster_landmark[np.argmin(distances, axis=1)]

    static = StaticOracle().fit(dataset, train_rows).evaluate(dataset, test_rows)
    pca_times = dataset.times[test_rows, assigned]
    pca_speedup = float(np.mean(static.times / np.maximum(pca_times, 1e-12)))
    two_level_speedup = result.mean_speedup("two_level", with_extraction=False)
    return PcaClusteringAblation(
        pca_speedup=pca_speedup, two_level_speedup=two_level_speedup
    )


def run_ablations(
    test_name: str = "sort2",
    config: Optional[ExperimentConfig] = None,
    n_landmarks: int = 5,
    runtime: Optional[Runtime] = None,
) -> dict:
    """Run both ablations for one test and return a summary dict.

    The experiment and the landmark-selection ablation share one
    measurement runtime, so the ablation's re-measurements of already-seen
    (configuration, input) pairs come from the cache.
    """
    if config is None:
        config = ExperimentConfig()
    with config.runtime_scope(runtime) as active:
        result = run_experiment(test_name, config=config, runtime=active)
        selection = landmark_selection_ablation(
            result, n_landmarks=n_landmarks, runtime=active
        )
        return {
            "test_name": test_name,
            "kmeans_speedup": selection.kmeans_speedup,
            "random_speedup": selection.random_speedup,
            "random_degradation": selection.degradation,
            "relabel_shift": relabel_shift(result),
        }
