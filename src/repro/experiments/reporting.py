"""Plain-text rendering helpers for experiment output.

The experiment drivers (:mod:`repro.experiments.table1`, the figure
modules, the CLI commands) return structured data -- rows, curves, method
outcomes -- and deliberately know nothing about presentation; these helpers
turn that data into aligned ASCII tables (for the console and for
EXPERIMENTS.md) and into simple CSV strings.

Keeping every formatting concern here means a driver's output can be
snapshot-tested as data, the CLI stays a thin ``print`` loop, and a future
surface (HTML report, service endpoint) only needs a new renderer, not a
change to any driver.  Everything in this module is pure string
manipulation: no I/O, no numpy beyond what the caller already converted,
no dependency on the rest of the package.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Sequence


def format_table(header: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render an aligned ASCII table with a header rule."""
    rows = [list(map(str, row)) for row in rows]
    header = list(map(str, header))
    widths = [len(cell) for cell in header]
    for row in rows:
        if len(row) != len(header):
            raise ValueError("row length does not match header length")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [render_row(header), "-+-".join("-" * width for width in widths)]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def format_csv(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a minimal CSV string (no quoting of separators needed)."""
    buffer = io.StringIO()
    buffer.write(",".join(str(cell) for cell in header) + "\n")
    for row in rows:
        buffer.write(",".join(str(cell) for cell in row) + "\n")
    return buffer.getvalue()


def format_series(x: Sequence[float], y: Sequence[float], x_label: str = "x", y_label: str = "y") -> str:
    """Render a two-column series as an aligned table (for figure data)."""
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    rows = [[f"{a:g}", f"{b:g}"] for a, b in zip(x, y)]
    return format_table([x_label, y_label], rows)


def ascii_sparkline(values: Sequence[float], width: int = 60) -> str:
    """A tiny one-line visualization of a series (used in example scripts)."""
    values = list(values)
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    return "".join(
        blocks[min(len(blocks) - 1, int((v - low) / span * (len(blocks) - 1)))]
        for v in values
    )
