"""Plain-text rendering helpers for experiment output.

The experiment drivers return structured data; these helpers turn that data
into aligned ASCII tables (for the console and for EXPERIMENTS.md) and into
simple CSV strings, keeping all formatting concerns out of the drivers.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Sequence


def format_table(header: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Render an aligned ASCII table with a header rule."""
    rows = [list(map(str, row)) for row in rows]
    header = list(map(str, header))
    widths = [len(cell) for cell in header]
    for row in rows:
        if len(row) != len(header):
            raise ValueError("row length does not match header length")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [render_row(header), "-+-".join("-" * width for width in widths)]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def format_csv(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a minimal CSV string (no quoting of separators needed)."""
    buffer = io.StringIO()
    buffer.write(",".join(str(cell) for cell in header) + "\n")
    for row in rows:
        buffer.write(",".join(str(cell) for cell in row) + "\n")
    return buffer.getvalue()


def format_series(x: Sequence[float], y: Sequence[float], x_label: str = "x", y_label: str = "y") -> str:
    """Render a two-column series as an aligned table (for figure data)."""
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    rows = [[f"{a:g}", f"{b:g}"] for a, b in zip(x, y)]
    return format_table([x_label, y_label], rows)


def ascii_sparkline(values: Sequence[float], width: int = 60) -> str:
    """A tiny one-line visualization of a series (used in example scripts)."""
    values = list(values)
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    return "".join(
        blocks[min(len(blocks) - 1, int((v - low) / span * (len(blocks) - 1)))]
        for v in values
    )
