"""Experiment drivers that regenerate the paper's tables and figures.

* :mod:`repro.experiments.runner` -- shared orchestration: train the
  two-level system on a benchmark test and evaluate every comparison method
  on the held-out inputs.
* :mod:`repro.experiments.table1` -- Table 1 (mean speedups over the static
  oracle for all 8 tests, plus the one-level accuracy column).
* :mod:`repro.experiments.figure6` -- Figure 6 (per-input speedup
  distributions).
* :mod:`repro.experiments.figure7` -- Figure 7 (theoretical model curves).
* :mod:`repro.experiments.figure8` -- Figure 8 (measured speedup vs. number
  of landmarks, over random landmark subsets).
* :mod:`repro.experiments.ablations` -- the in-text ablations: k-means vs.
  random landmark selection, and the Level-2 relabel shift.
* :mod:`repro.experiments.reporting` -- plain-text rendering helpers.
"""

from repro.experiments.runner import ExperimentConfig, ExperimentResult, MethodOutcome, run_experiment
from repro.experiments.table1 import Table1Row, run_table1, summarize_headline
from repro.experiments.figure6 import SpeedupDistribution, run_figure6
from repro.experiments.figure7 import model_figure7a, model_figure7b
from repro.experiments.figure8 import LandmarkSweepPoint, run_figure8
from repro.experiments.reporting import format_table

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "format_table",
    "LandmarkSweepPoint",
    "MethodOutcome",
    "model_figure7a",
    "model_figure7b",
    "run_experiment",
    "run_figure6",
    "run_figure8",
    "run_table1",
    "SpeedupDistribution",
    "summarize_headline",
    "Table1Row",
]
