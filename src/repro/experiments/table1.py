"""Table 1: mean speedup over the static oracle for every test.

The paper's Table 1 has one row per test (sort1, sort2, clustering1,
clustering2, binpacking, svd, poisson2d, helmholtz3d) and columns for the
dynamic oracle, the two-level method with and without feature-extraction
time, the one-level method with and without feature-extraction time, and the
one-level method's accuracy-satisfaction percentage.

The expected *shape* (see DESIGN.md): dynamic oracle >= two-level >= 1.0,
two-level barely affected by feature-extraction cost, one-level degraded
(sometimes catastrophically) once extraction cost is charged, and one-level
satisfaction below 95% on most variable-accuracy tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentConfig, ExperimentResult, run_experiment
from repro.runtime import Runtime

#: The eight tests of Table 1, in the paper's order.
TABLE1_TESTS = (
    "sort1",
    "sort2",
    "clustering1",
    "clustering2",
    "binpacking",
    "svd",
    "poisson2d",
    "helmholtz3d",
)


@dataclass
class Table1Row:
    """One row of Table 1."""

    test_name: str
    dynamic_oracle: float
    two_level_no_extraction: float
    two_level_with_extraction: float
    one_level_no_extraction: float
    one_level_with_extraction: float
    one_level_accuracy: float
    two_level_accuracy: float
    variable_accuracy: bool

    def as_cells(self) -> List[str]:
        """Render the row the way the paper prints it."""
        accuracy = (
            f"{self.one_level_accuracy * 100:.2f}%" if self.variable_accuracy else "-"
        )
        return [
            self.test_name,
            f"{self.dynamic_oracle:.2f}x",
            f"{self.two_level_no_extraction:.2f}x",
            f"{self.two_level_with_extraction:.2f}x",
            f"{self.one_level_no_extraction:.2f}x",
            f"{self.one_level_with_extraction:.2f}x",
            accuracy,
        ]


def row_from_result(result: ExperimentResult) -> Table1Row:
    """Derive a Table-1 row from one experiment result."""
    requirement = result.training.dataset.requirement
    return Table1Row(
        test_name=result.test_name,
        dynamic_oracle=result.mean_speedup("dynamic_oracle"),
        two_level_no_extraction=result.mean_speedup("two_level", with_extraction=False),
        two_level_with_extraction=result.mean_speedup("two_level", with_extraction=True),
        one_level_no_extraction=result.mean_speedup("one_level", with_extraction=False),
        one_level_with_extraction=result.mean_speedup("one_level", with_extraction=True),
        one_level_accuracy=result.satisfaction("one_level"),
        two_level_accuracy=result.satisfaction("two_level"),
        variable_accuracy=requirement.enabled,
    )


def run_table1(
    tests: Sequence[str] = TABLE1_TESTS,
    config: Optional[ExperimentConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    runtime: Optional[Runtime] = None,
) -> Dict[str, Table1Row]:
    """Run every requested test and return its Table-1 row.

    All tests share one measurement runtime, so tests that share a program
    (``sort1``/``sort2``, ``clustering1``/``clustering2``) recall each
    other's measurements from the cache instead of re-executing them.
    """
    if config is None:
        config = ExperimentConfig()
    with config.runtime_scope(runtime) as active:
        rows: Dict[str, Table1Row] = {}
        for test_name in tests:
            if progress is not None:
                progress(f"running {test_name}")
            result = run_experiment(test_name, config=config, runtime=active)
            rows[test_name] = row_from_result(result)
        return rows


def format_table1(rows: Dict[str, Table1Row]) -> str:
    """Plain-text rendering in the paper's column order."""
    header = [
        "Benchmark",
        "Dynamic Oracle",
        "Two-level (w/o feat.)",
        "Two-level (w/ feat.)",
        "One-level (w/o feat.)",
        "One-level (w/ feat.)",
        "One-level accuracy",
    ]
    body = [rows[name].as_cells() for name in rows]
    return format_table(header, body)


def summarize_headline(rows: Dict[str, Table1Row]) -> Dict[str, float]:
    """The paper's headline numbers derived from Table 1.

    Returns a dict with:

    * ``max_two_level_speedup`` -- "up to a 3x speedup over using a single
      configuration for all inputs";
    * ``max_one_level_slowdown`` -- "as much as 29x slowdown" (reported as a
      factor >= 1);
    * ``max_two_over_one_level`` -- "a 34x speedup over a traditional
      one-level method".
    """
    max_two_level = max(row.two_level_with_extraction for row in rows.values())
    min_one_level = min(row.one_level_with_extraction for row in rows.values())
    max_ratio = max(
        row.two_level_with_extraction / max(row.one_level_with_extraction, 1e-12)
        for row in rows.values()
    )
    return {
        "max_two_level_speedup": max_two_level,
        "max_one_level_slowdown": 1.0 / max(min_one_level, 1e-12),
        "max_two_over_one_level": max_ratio,
    }
