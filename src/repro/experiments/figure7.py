"""Figure 7: the theoretical diminishing-returns model curves.

* Figure 7a plots the expected lost speedup contributed by an input-space
  region as a function of its size, for 2-9 sampled configurations.
* Figure 7b plots the predicted fraction of the full speedup achieved at the
  worst-case region size as the number of landmarks grows (10-100).

Both are closed-form evaluations of :mod:`repro.core.model`; no benchmark
runs are involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.model import fraction_of_full_speedup, loss_curve


@dataclass
class ModelCurve:
    """One plotted curve: x values and y values."""

    label: str
    x: np.ndarray
    y: np.ndarray


def model_figure7a(
    config_counts: Sequence[int] = (2, 3, 4, 5, 6, 7, 8, 9),
    n_points: int = 200,
) -> Dict[int, ModelCurve]:
    """The Figure-7a family of curves (loss vs. region size, one per k)."""
    region_sizes = np.linspace(0.0, 1.0, n_points)
    curves: Dict[int, ModelCurve] = {}
    for k in config_counts:
        curves[int(k)] = ModelCurve(
            label=f"{k} configs",
            x=region_sizes,
            y=loss_curve(region_sizes, int(k)),
        )
    return curves


def model_figure7b(landmark_counts: Sequence[int] = tuple(range(10, 101, 10))) -> ModelCurve:
    """The Figure-7b curve (fraction of full speedup vs. number of landmarks)."""
    ks = np.asarray(list(landmark_counts), dtype=int)
    return ModelCurve(
        label="worst-case region size",
        x=ks.astype(float),
        y=fraction_of_full_speedup(ks),
    )
