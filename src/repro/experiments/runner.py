"""Shared experiment orchestration.

:func:`run_experiment` takes one of the paper's eight test names (``sort1``,
``sort2``, ``clustering1``, ``clustering2``, ``binpacking``, ``svd``,
``poisson2d``, ``helmholtz3d``), trains the two-level system on a training
split of generated inputs, and evaluates four methods on the held-out test
split:

* the **static oracle** (baseline for every speedup number),
* the **dynamic oracle**,
* the **two-level** production classifier (with and without charging feature
  extraction),
* the **one-level** baseline (with and without charging feature extraction).

The result object carries per-input times and speedups so Table 1, Figure 6,
and Figure 8 can all be derived from the same run.
"""

from __future__ import annotations

import contextlib
import os
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

import numpy as np

from repro.benchmarks_suite import get_benchmark
from repro.core.baselines import DynamicOracle, OneLevelLearning, StaticOracle
from repro.core.inputs import ObservedInputSource
from repro.core.level1 import Level1Config
from repro.core.level2 import Level2Config
from repro.core.pipeline import InputAwareLearning, TrainingResult
from repro.runtime import RunCache, Runtime, default_runtime


def _env_executor() -> str:
    return os.environ.get("REPRO_EXECUTOR", "serial")


def _env_workers() -> Optional[int]:
    value = os.environ.get("REPRO_WORKERS")
    return int(value) if value else None


def _env_dist_workers() -> Optional[int]:
    """``REPRO_DIST_WORKERS``: local worker count for the distributed executor."""
    value = os.environ.get("REPRO_DIST_WORKERS")
    return int(value) if value else None


def _env_batch_chunk() -> Optional[int]:
    """``REPRO_BATCH_CHUNK`` as an int, or None when unset/unusable.

    Shared by ``ExperimentConfig`` and the CLI's ``--batch-chunk`` default;
    a malformed value degrades to "no chunking" with a warning instead of
    crashing before any useful output.
    """
    value = os.environ.get("REPRO_BATCH_CHUNK", "").strip()
    if not value:
        return None
    try:
        return int(value)
    except ValueError:
        warnings.warn(f"ignoring non-integer REPRO_BATCH_CHUNK={value!r}")
        return None


def _env_cache_max_entries() -> Optional[int]:
    """``REPRO_CACHE_MAX_ENTRIES`` as an entry cap, or the built-in default.

    Zero or negative means "unbounded" (an explicit opt-out of the LRU
    cap); unset or malformed falls back to
    :attr:`repro.runtime.RunCache.DEFAULT_MAX_ENTRIES`.
    """
    value = os.environ.get("REPRO_CACHE_MAX_ENTRIES", "").strip()
    if not value:
        return RunCache.DEFAULT_MAX_ENTRIES
    try:
        parsed = int(value)
    except ValueError:
        warnings.warn(f"ignoring non-integer REPRO_CACHE_MAX_ENTRIES={value!r}")
        return RunCache.DEFAULT_MAX_ENTRIES
    return parsed if parsed > 0 else None


def _env_stream_inputs() -> bool:
    """``REPRO_STREAM_INPUTS``: falsy values opt out of lazy input sources."""
    value = os.environ.get("REPRO_STREAM_INPUTS", "").strip().lower()
    return value not in ("0", "false", "no", "off")


@dataclass
class ExperimentConfig:
    """Size and seed knobs shared by all experiment drivers.

    The defaults are deliberately small-but-representative so the whole
    Table-1 matrix runs in minutes; raise ``n_inputs`` and ``n_clusters``
    to approach the paper's scale (50-60k inputs, 100 landmarks).

    Execution knobs (see ``repro.runtime``): ``executor`` picks the run
    strategy (``serial`` -- the bit-identical default -- ``thread``,
    ``process``, or ``distributed``, which leases content-keyed chunks to
    socket-attached worker processes; overridable via the
    ``REPRO_EXECUTOR`` / ``REPRO_WORKERS`` / ``REPRO_DIST_WORKERS``
    environment variables), ``use_cache`` deduplicates identical runs within
    and across pipeline stages, and ``cache_path`` persists measurements to
    a sharded on-disk store shared by later runs.  The executor carries
    program runs *and* the learning tasks built on the generalized task
    layer -- Level 2's candidate search and the autotuner's objective
    evaluations -- so a parallel executor accelerates training end to end,
    with results identical to serial by construction.

    ``batch_chunk`` (``--batch-chunk`` / ``REPRO_BATCH_CHUNK``) enables
    streaming measurement batches: the N x K1 matrix and the Level-2 task
    batches are dispatched in chunks of at most this many items, bounding
    peak memory by O(chunk) on the way to the paper's 50-60k-input regime.
    Results are bit-identical with or without it, whatever the executor.

    The remaining two memory knobs complete that story end to end.
    ``stream_inputs`` (on by default; ``--no-stream-inputs`` /
    ``REPRO_STREAM_INPUTS=0`` opt out) feeds the pipeline a lazy
    :class:`~repro.core.inputs.InputSource` instead of a materialized input
    list, so the inputs themselves are regenerated per index/chunk rather
    than pinned for the whole run.  ``cache_max_entries``
    (``--cache-max-entries`` / ``REPRO_CACHE_MAX_ENTRIES``; <= 0 for
    unbounded) caps the in-memory run cache.  With all three set, a run's
    peak memory is O(chunk) inputs + O(chunk) transient results +
    O(cache cap) -- not O(N) -- with bit-identical outputs.
    """

    n_inputs: int = 240
    n_clusters: int = 12
    seed: int = 0
    test_fraction: float = 0.5
    tuner_generations: int = 8
    tuner_population: int = 8
    tuning_neighbors: int = 4
    max_subsets: int = 192
    executor: str = field(default_factory=_env_executor)
    workers: Optional[int] = field(default_factory=_env_workers)
    dist_workers: Optional[int] = field(default_factory=_env_dist_workers)
    use_cache: bool = True
    cache_path: Optional[str] = None
    batch_chunk: Optional[int] = field(default_factory=_env_batch_chunk)
    cache_max_entries: Optional[int] = field(default_factory=_env_cache_max_entries)
    stream_inputs: bool = field(default_factory=_env_stream_inputs)
    #: Write a chunk-granular resume manifest next to the cache store
    #: (requires ``cache_path``); see ``docs/resilience.md``.
    checkpoint: bool = False
    #: Adopt a prior interrupted run's manifest: completed chunks replay as
    #: cache hits, producing bit-identical output.  Implies ``checkpoint``.
    resume: bool = False
    #: Distributed-executor socket/join timeouts (None = env default).
    dist_socket_timeout: Optional[float] = None
    dist_join_timeout: Optional[float] = None

    def make_runtime(self) -> Runtime:
        """Build the measurement runtime these knobs describe.

        For the ``distributed`` executor, ``dist_workers``
        (``--dist-workers`` / ``REPRO_DIST_WORKERS``) names the count of
        locally spawned lease workers; other executors keep using
        ``workers``.
        """
        workers = self.workers
        if self.executor.partition(":")[0].strip().lower() == "distributed":
            workers = self.dist_workers if self.dist_workers is not None else workers
        return Runtime.create(
            executor=self.executor,
            workers=workers,
            use_cache=self.use_cache,
            max_entries=self.cache_max_entries,
            cache_path=self.cache_path,
            batch_chunk=self.batch_chunk,
            executor_options={
                "socket_timeout": self.dist_socket_timeout,
                "join_timeout": self.dist_join_timeout,
            },
        )

    def checkpoint_digest(self, test_name: str) -> str:
        """Digest of the settings that define this experiment's identity.

        Two runs with equal digests produce bit-identical measurements, so
        resuming across them is sound; anything that changes the workload
        (test, sizes, seeds, tuner effort, chunking) changes the digest and
        makes ``--resume`` refuse.  Executor/worker knobs are deliberately
        excluded: they change *who* computes, never *what*.
        """
        from repro.resilience.checkpoint import config_digest

        return config_digest(
            {
                "test": test_name,
                "n_inputs": self.n_inputs,
                "n_clusters": self.n_clusters,
                "seed": self.seed,
                "test_fraction": self.test_fraction,
                "tuner_generations": self.tuner_generations,
                "tuner_population": self.tuner_population,
                "tuning_neighbors": self.tuning_neighbors,
                "max_subsets": self.max_subsets,
                "batch_chunk": self.batch_chunk,
                "stream_inputs": self.stream_inputs,
            }
        )

    @contextlib.contextmanager
    def runtime_scope(self, runtime: Optional[Runtime] = None) -> Iterator[Runtime]:
        """Yield ``runtime``, or own a fresh one built from these knobs.

        An owned runtime is persisted (when ``cache_path`` is set) and
        closed on exit; a caller-provided runtime is yielded untouched so
        it can be shared across several experiments.
        """
        if runtime is not None:
            yield runtime
            return
        owned = self.make_runtime()
        try:
            yield owned
        finally:
            if self.cache_path:
                owned.save_cache()
            owned.close()

    def level1(self) -> Level1Config:
        """Materialize the Level-1 configuration."""
        return Level1Config(
            n_clusters=self.n_clusters,
            seed=self.seed,
            tuner_generations=self.tuner_generations,
            tuner_population=self.tuner_population,
            tuning_neighbors=self.tuning_neighbors,
        )

    def level2(self) -> Level2Config:
        """Materialize the Level-2 configuration."""
        return Level2Config(max_subsets=self.max_subsets, seed=self.seed)


@dataclass
class MethodOutcome:
    """Per-input evaluation of one method on the test split.

    Attributes:
        name: method name.
        times: per-input cost including feature extraction where the method
            pays for it.
        times_no_extraction: per-input cost ignoring feature extraction.
        satisfaction_rate: fraction of test inputs meeting the accuracy
            threshold under this method.
    """

    name: str
    times: np.ndarray
    times_no_extraction: np.ndarray
    satisfaction_rate: float


@dataclass
class ExperimentResult:
    """Everything produced by one test's experiment run.

    ``runtime_stats`` is the measurement runtime's snapshot at the end of
    this experiment (executor, run counts, cache hit rate, per-phase wall
    time).  When a shared runtime was passed in (e.g. by ``run_table1``),
    the snapshot is cumulative across everything that runtime has executed
    so far, not scoped to this experiment alone.
    """

    test_name: str
    training: TrainingResult
    methods: Dict[str, MethodOutcome]
    test_rows: np.ndarray
    runtime_stats: Dict[str, Any] = field(default_factory=dict)

    def speedups_over_static(self, method: str, with_extraction: bool = True) -> np.ndarray:
        """Per-input speedup of ``method`` over the static oracle."""
        static = self.methods["static_oracle"].times
        outcome = self.methods[method]
        times = outcome.times if with_extraction else outcome.times_no_extraction
        return static / np.maximum(times, 1e-12)

    def mean_speedup(self, method: str, with_extraction: bool = True) -> float:
        """Mean per-input speedup of ``method`` over the static oracle."""
        return float(np.mean(self.speedups_over_static(method, with_extraction)))

    def satisfaction(self, method: str) -> float:
        """Accuracy-satisfaction rate of ``method`` on the test split."""
        return self.methods[method].satisfaction_rate


def evaluate_methods(
    training: TrainingResult, runtime: Optional[Runtime] = None
) -> Dict[str, MethodOutcome]:
    """Evaluate all comparison methods on the training result's test rows.

    Passing a runtime only adds phase timing around the evaluation; the
    numbers are read from the Level-1 measurement matrix either way (the
    runtime's live re-run paths are exercised by the determinism tests).
    """
    dataset = training.dataset
    train_rows = training.level2.train_rows
    test_rows = training.level2.test_rows

    telemetry = (runtime if runtime is not None else default_runtime()).telemetry
    methods: Dict[str, MethodOutcome] = {}

    with telemetry.phase("evaluate.methods"):
        static = StaticOracle().fit(dataset, train_rows).evaluate(dataset, test_rows)
        methods["static_oracle"] = MethodOutcome(
            name="static_oracle",
            times=static.times,
            times_no_extraction=static.times_no_extraction,
            satisfaction_rate=static.satisfaction_rate,
        )

        dynamic = DynamicOracle().evaluate(dataset, test_rows)
        methods["dynamic_oracle"] = MethodOutcome(
            name="dynamic_oracle",
            times=dynamic.times,
            times_no_extraction=dynamic.times_no_extraction,
            satisfaction_rate=dynamic.satisfaction_rate,
        )

        production = training.level2.production.classifier
        predictions = production.predict_rows(dataset, test_rows)
        execution = dataset.times[test_rows, predictions.labels]
        accuracies = dataset.accuracies[test_rows, predictions.labels]
        if dataset.requirement.enabled:
            satisfaction = float(
                np.mean(accuracies >= dataset.requirement.accuracy_threshold)
            )
        else:
            satisfaction = 1.0
        methods["two_level"] = MethodOutcome(
            name="two_level",
            times=execution + predictions.extraction_costs,
            times_no_extraction=execution,
            satisfaction_rate=satisfaction,
        )

        one_level = OneLevelLearning(training.level1).evaluate(dataset, test_rows)
        methods["one_level"] = MethodOutcome(
            name="one_level",
            times=one_level.times,
            times_no_extraction=one_level.times_no_extraction,
            satisfaction_rate=one_level.satisfaction_rate,
        )

    return methods


def run_experiment(
    test_name: str,
    config: Optional[ExperimentConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    runtime: Optional[Runtime] = None,
) -> ExperimentResult:
    """Train and evaluate one of the paper's eight tests end to end.

    All program runs go through one measurement runtime: the one passed in
    (shared caches across experiments -- see :func:`repro.experiments.table1.run_table1`)
    or a fresh one built from the config's executor/cache knobs.  A
    runtime owned by this call is closed (worker pools released) and, when a
    cache path is configured, persisted before returning.
    """
    if config is None:
        config = ExperimentConfig()
    with config.runtime_scope(runtime) as active:
        checkpoint = None
        if (config.checkpoint or config.resume) and config.cache_path:
            from repro.resilience.checkpoint import ExperimentCheckpoint

            checkpoint = ExperimentCheckpoint(
                config.cache_path, config.checkpoint_digest(test_name)
            )
            if config.resume:
                checkpoint.resume()
            active.checkpoint = checkpoint
            checkpoint.set_phase("train")
        variant = get_benchmark(test_name)
        source = variant.benchmark.input_source(
            config.n_inputs, variant.variant, seed=config.seed
        )
        if config.stream_inputs:
            # Lazy path: nothing is generated yet.  Generation happens at
            # each materialization inside the consuming phases, so its cost
            # is observed per input and accumulated under the
            # ``inputs.generate`` phase (plus the ``inputs_generated``
            # counter) instead of a monolithic up-front ``generate_inputs``
            # phase.
            telemetry = active.telemetry

            def _observe(seconds: float) -> None:
                telemetry.add_seconds("inputs.generate", seconds)
                telemetry.count("inputs_generated")

            inputs = ObservedInputSource(source, _observe)
        else:
            with active.telemetry.phase("generate_inputs"):
                inputs = source.materialized()
        learner = InputAwareLearning(
            level1_config=config.level1(),
            level2_config=config.level2(),
            test_fraction=config.test_fraction,
            seed=config.seed,
            runtime=active,
        )
        training = learner.fit(variant.benchmark.program, inputs, progress=progress)
        if checkpoint is not None:
            checkpoint.set_phase("evaluate")
        methods = evaluate_methods(training, runtime=active)
        if checkpoint is not None:
            checkpoint.finish(active)
            active.checkpoint = None
        return ExperimentResult(
            test_name=test_name,
            training=training,
            methods=methods,
            test_rows=training.level2.test_rows,
            runtime_stats=active.stats(),
        )
