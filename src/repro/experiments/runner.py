"""Shared experiment orchestration.

:func:`run_experiment` takes one of the paper's eight test names (``sort1``,
``sort2``, ``clustering1``, ``clustering2``, ``binpacking``, ``svd``,
``poisson2d``, ``helmholtz3d``), trains the two-level system on a training
split of generated inputs, and evaluates four methods on the held-out test
split:

* the **static oracle** (baseline for every speedup number),
* the **dynamic oracle**,
* the **two-level** production classifier (with and without charging feature
  extraction),
* the **one-level** baseline (with and without charging feature extraction).

The result object carries per-input times and speedups so Table 1, Figure 6,
and Figure 8 can all be derived from the same run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.benchmarks_suite import get_benchmark
from repro.core.baselines import DynamicOracle, OneLevelLearning, StaticOracle
from repro.core.level1 import Level1Config
from repro.core.level2 import Level2Config
from repro.core.pipeline import InputAwareLearning, TrainingResult


@dataclass
class ExperimentConfig:
    """Size and seed knobs shared by all experiment drivers.

    The defaults are deliberately small-but-representative so the whole
    Table-1 matrix runs in minutes; raise ``n_inputs`` and ``n_clusters``
    to approach the paper's scale (50-60k inputs, 100 landmarks).
    """

    n_inputs: int = 240
    n_clusters: int = 12
    seed: int = 0
    test_fraction: float = 0.5
    tuner_generations: int = 8
    tuner_population: int = 8
    tuning_neighbors: int = 4
    max_subsets: int = 192

    def level1(self) -> Level1Config:
        """Materialize the Level-1 configuration."""
        return Level1Config(
            n_clusters=self.n_clusters,
            seed=self.seed,
            tuner_generations=self.tuner_generations,
            tuner_population=self.tuner_population,
            tuning_neighbors=self.tuning_neighbors,
        )

    def level2(self) -> Level2Config:
        """Materialize the Level-2 configuration."""
        return Level2Config(max_subsets=self.max_subsets, seed=self.seed)


@dataclass
class MethodOutcome:
    """Per-input evaluation of one method on the test split.

    Attributes:
        name: method name.
        times: per-input cost including feature extraction where the method
            pays for it.
        times_no_extraction: per-input cost ignoring feature extraction.
        satisfaction_rate: fraction of test inputs meeting the accuracy
            threshold under this method.
    """

    name: str
    times: np.ndarray
    times_no_extraction: np.ndarray
    satisfaction_rate: float


@dataclass
class ExperimentResult:
    """Everything produced by one test's experiment run."""

    test_name: str
    training: TrainingResult
    methods: Dict[str, MethodOutcome]
    test_rows: np.ndarray

    def speedups_over_static(self, method: str, with_extraction: bool = True) -> np.ndarray:
        """Per-input speedup of ``method`` over the static oracle."""
        static = self.methods["static_oracle"].times
        outcome = self.methods[method]
        times = outcome.times if with_extraction else outcome.times_no_extraction
        return static / np.maximum(times, 1e-12)

    def mean_speedup(self, method: str, with_extraction: bool = True) -> float:
        """Mean per-input speedup of ``method`` over the static oracle."""
        return float(np.mean(self.speedups_over_static(method, with_extraction)))

    def satisfaction(self, method: str) -> float:
        """Accuracy-satisfaction rate of ``method`` on the test split."""
        return self.methods[method].satisfaction_rate


def evaluate_methods(training: TrainingResult) -> Dict[str, MethodOutcome]:
    """Evaluate all comparison methods on the training result's test rows."""
    dataset = training.dataset
    train_rows = training.level2.train_rows
    test_rows = training.level2.test_rows

    methods: Dict[str, MethodOutcome] = {}

    static = StaticOracle().fit(dataset, train_rows).evaluate(dataset, test_rows)
    methods["static_oracle"] = MethodOutcome(
        name="static_oracle",
        times=static.times,
        times_no_extraction=static.times_no_extraction,
        satisfaction_rate=static.satisfaction_rate,
    )

    dynamic = DynamicOracle().evaluate(dataset, test_rows)
    methods["dynamic_oracle"] = MethodOutcome(
        name="dynamic_oracle",
        times=dynamic.times,
        times_no_extraction=dynamic.times_no_extraction,
        satisfaction_rate=dynamic.satisfaction_rate,
    )

    production = training.level2.production.classifier
    predictions = production.predict_rows(dataset, test_rows)
    execution = dataset.times[test_rows, predictions.labels]
    accuracies = dataset.accuracies[test_rows, predictions.labels]
    if dataset.requirement.enabled:
        satisfaction = float(
            np.mean(accuracies >= dataset.requirement.accuracy_threshold)
        )
    else:
        satisfaction = 1.0
    methods["two_level"] = MethodOutcome(
        name="two_level",
        times=execution + predictions.extraction_costs,
        times_no_extraction=execution,
        satisfaction_rate=satisfaction,
    )

    one_level = OneLevelLearning(training.level1).evaluate(dataset, test_rows)
    methods["one_level"] = MethodOutcome(
        name="one_level",
        times=one_level.times,
        times_no_extraction=one_level.times_no_extraction,
        satisfaction_rate=one_level.satisfaction_rate,
    )

    return methods


def run_experiment(
    test_name: str,
    config: Optional[ExperimentConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ExperimentResult:
    """Train and evaluate one of the paper's eight tests end to end."""
    if config is None:
        config = ExperimentConfig()
    variant = get_benchmark(test_name)
    inputs = variant.benchmark.generate_inputs(
        config.n_inputs, variant.variant, seed=config.seed
    )
    learner = InputAwareLearning(
        level1_config=config.level1(),
        level2_config=config.level2(),
        test_fraction=config.test_fraction,
        seed=config.seed,
    )
    training = learner.fit(variant.benchmark.program, inputs, progress=progress)
    methods = evaluate_methods(training)
    return ExperimentResult(
        test_name=test_name,
        training=training,
        methods=methods,
        test_rows=training.level2.test_rows,
    )
