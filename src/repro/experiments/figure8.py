"""Figure 8: measured speedup vs. number of landmark configurations.

The paper takes random subsets of the trained landmarks, re-evaluates the
system restricted to each subset, and plots the speedup over the static
oracle as the subset size grows (median, quartiles, min, max over 1000
subsets), observing the same diminishing returns the Section 4.3 model
predicts.

Two evaluation modes are provided:

* ``"oracle"`` (default) -- the restricted *dynamic oracle* speedup over the
  restricted static oracle.  This isolates the effect of the landmark budget
  from classifier quality and is cheap enough to evaluate for many subsets.
* ``"classifier"`` -- retrains a single cost-sensitive all-features decision
  tree on the restricted dataset for every subset, which follows the paper's
  measurement more literally at a much higher cost; use a small
  ``n_subsets`` with this mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.baselines import DynamicOracle, StaticOracle
from repro.core.classifiers import AllFeaturesClassifier
from repro.core.dataset import PerformanceDataset
from repro.core.level2 import build_cost_matrix
from repro.experiments.runner import ExperimentConfig, ExperimentResult, run_experiment


@dataclass
class LandmarkSweepPoint:
    """Speedup statistics for one landmark-subset size (one x position).

    Attributes:
        n_landmarks: subset size.
        speedups: mean speedup over the static oracle for every sampled
            subset of this size.
    """

    n_landmarks: int
    speedups: np.ndarray

    @property
    def median(self) -> float:
        return float(np.median(self.speedups))

    @property
    def first_quartile(self) -> float:
        return float(np.quantile(self.speedups, 0.25))

    @property
    def third_quartile(self) -> float:
        return float(np.quantile(self.speedups, 0.75))

    @property
    def minimum(self) -> float:
        return float(np.min(self.speedups))

    @property
    def maximum(self) -> float:
        return float(np.max(self.speedups))


def _subset_speedup(
    dataset: PerformanceDataset,
    train_rows: np.ndarray,
    test_rows: np.ndarray,
    landmark_indices: Sequence[int],
    mode: str,
) -> float:
    """Mean speedup over the static oracle when only a landmark subset exists."""
    restricted = dataset.restrict_landmarks(landmark_indices)
    static = StaticOracle().fit(restricted, train_rows).evaluate(restricted, test_rows)

    if mode == "oracle":
        adaptive_times = DynamicOracle().evaluate(restricted, test_rows).times
    elif mode == "classifier":
        labels = restricted.labels()
        cost_matrix = build_cost_matrix(restricted, labels)
        classifier = AllFeaturesClassifier(
            restricted.feature_names, cost_matrix=cost_matrix
        ).fit(restricted, train_rows, labels)
        predictions = classifier.predict_rows(restricted, test_rows)
        adaptive_times = (
            restricted.times[test_rows, predictions.labels]
            + predictions.extraction_costs
        )
    else:
        raise ValueError(f"unknown figure-8 mode {mode!r}")

    speedups = static.times / np.maximum(adaptive_times, 1e-12)
    return float(np.mean(speedups))


def landmark_sweep(
    result: ExperimentResult,
    landmark_counts: Optional[Sequence[int]] = None,
    n_subsets: int = 30,
    mode: str = "oracle",
    seed: int = 0,
) -> List[LandmarkSweepPoint]:
    """Compute the Figure-8 series from an already-trained experiment result."""
    dataset = result.training.dataset
    train_rows = result.training.level2.train_rows
    test_rows = result.training.level2.test_rows
    total = dataset.n_landmarks
    if landmark_counts is None:
        landmark_counts = sorted({1, 2, 3, max(4, total // 2), total})
    rng = random.Random(seed)

    points: List[LandmarkSweepPoint] = []
    for count in landmark_counts:
        count = int(min(max(count, 1), total))
        speedups = []
        for _ in range(n_subsets):
            subset = rng.sample(range(total), count)
            speedups.append(
                _subset_speedup(dataset, train_rows, test_rows, subset, mode)
            )
        points.append(
            LandmarkSweepPoint(n_landmarks=count, speedups=np.array(speedups))
        )
    return points


def run_figure8(
    tests: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    landmark_counts: Optional[Sequence[int]] = None,
    n_subsets: int = 30,
    mode: str = "oracle",
) -> Dict[str, List[LandmarkSweepPoint]]:
    """Run the requested tests and compute each panel's landmark sweep."""
    panels: Dict[str, List[LandmarkSweepPoint]] = {}
    for test_name in tests:
        result = run_experiment(test_name, config=config)
        panels[test_name] = landmark_sweep(
            result,
            landmark_counts=landmark_counts,
            n_subsets=n_subsets,
            mode=mode,
        )
    return panels
