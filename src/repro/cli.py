"""Command-line interface for the reproduction.

Usage (after ``pip install -e .``)::

    python -m repro list                       # show the available tests
    python -m repro table1 --tests sort2 svd   # regenerate Table-1 rows
    python -m repro figure7                    # print the model curves
    python -m repro train sort2 --inputs 80    # train and summarize one test

The CLI is a thin wrapper over :mod:`repro.experiments`; every command prints
plain text suitable for piping into a report.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.benchmarks_suite import registry
from repro.runtime import EXECUTORS
from repro.experiments.figure7 import model_figure7a, model_figure7b
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import (
    ExperimentConfig,
    _env_batch_chunk,
    _env_cache_max_entries,
    _env_dist_workers,
    _env_stream_inputs,
    run_experiment,
)
from repro.experiments.table1 import TABLE1_TESTS, format_table1, run_table1, summarize_headline


def _experiment_config(args: argparse.Namespace) -> ExperimentConfig:
    max_entries = args.cache_max_entries
    if max_entries is not None and max_entries <= 0:
        max_entries = None  # explicit opt-out of the LRU cap
    return ExperimentConfig(
        n_inputs=args.inputs,
        n_clusters=args.clusters,
        tuner_generations=args.generations,
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        dist_workers=args.dist_workers,
        use_cache=not args.no_cache,
        cache_path=args.cache_path,
        batch_chunk=args.batch_chunk,
        cache_max_entries=max_entries,
        stream_inputs=args.stream_inputs,
        checkpoint=getattr(args, "checkpoint", False),
        resume=getattr(args, "resume", False),
    )


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--inputs", type=int, default=120, help="training+test inputs per benchmark")
    parser.add_argument("--clusters", type=int, default=10, help="number of Level-1 clusters (K1)")
    parser.add_argument("--generations", type=int, default=6, help="autotuner generations per landmark")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--executor",
        choices=sorted(EXECUTORS),
        default=os.environ.get("REPRO_EXECUTOR", "serial"),
        help="run strategy for program measurements (default: serial, bit-identical)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for thread/process executors (default: CPU count)",
    )
    parser.add_argument(
        "--dist-workers",
        type=int,
        default=_env_dist_workers(),
        help="locally spawned worker processes for --executor distributed "
        "(default: CPU count; 0 relies on externally attached "
        "'python -m repro.worker' processes)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the run cache (every measurement re-executes)",
    )
    parser.add_argument(
        "--cache-path",
        default=None,
        help="sharded store (directory) to load/persist run measurements "
        "across invocations; a legacy single-file cache migrates in place",
    )
    parser.add_argument(
        "--batch-chunk",
        type=int,
        default=_env_batch_chunk(),
        help="stream measurement/task batches in chunks of this many items "
        "(bounds peak memory; results are bit-identical)",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=_env_cache_max_entries(),
        help="LRU cap on the in-memory run cache (default: "
        "%(default)s entries, ~45 MB; 0 or negative for unbounded; "
        "with --cache-path, evicted entries stay reachable on disk)",
    )
    parser.add_argument(
        "--stream-inputs",
        action=argparse.BooleanOptionalAction,
        default=_env_stream_inputs(),
        help="feed the pipeline a lazy input source (--no-stream-inputs "
        "materializes the full list up front; results are bit-identical "
        "either way, and either spelling overrides REPRO_STREAM_INPUTS)",
    )
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="write a chunk-granular resume manifest next to --cache-path "
        "(see docs/resilience.md)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume a killed run from its --cache-path checkpoint manifest; "
        "completed chunks replay as cache hits, producing bit-identical "
        "results (implies --checkpoint)",
    )
    parser.add_argument(
        "--runtime-stats",
        action="store_true",
        help="print executor/cache/phase statistics after the run",
    )


def _print_runtime_stats(args: argparse.Namespace, stats: dict) -> None:
    if not args.runtime_stats or not stats:
        return
    print("\nruntime statistics:")
    print(f"  executor: {stats.get('executor')}")
    if "executor_fallback" in stats:
        print(f"  executor fallback: {stats['executor_fallback']}")
    cache = stats.get("cache")
    if cache:
        extras = ""
        if "shards_loaded" in cache:
            extras += f", {cache['shards_loaded']} shard(s) loaded"
        if cache.get("evictions"):
            extras += f", {cache['evictions']} evictions"
        if cache.get("shard_rereads"):
            extras += f", {cache['shard_rereads']} shard re-reads"
        print(
            f"  cache: {cache['entries']} entries, "
            f"{cache['hits']} hits, {cache['misses']} misses{extras}"
        )
    distributed = stats.get("distributed")
    if distributed:
        print(
            f"  distributed: {distributed.get('leases_issued', 0)} leases issued, "
            f"{distributed.get('leases_reassigned', 0)} reassigned, "
            f"{distributed.get('worker_deaths', 0)} worker death(s), "
            f"{distributed.get('workers_spawned', 0)} spawned, "
            f"{distributed.get('workers_attached', 0)} attached"
        )
    telemetry = stats.get("telemetry", {})
    counters = telemetry.get("counters", {})
    print(
        f"  runs: {counters.get('runs_requested', 0)} requested, "
        f"{counters.get('runs_executed', 0)} executed, "
        f"{counters.get('cache_hits', 0)} cache hits"
    )
    if counters.get("tasks_requested"):
        print(
            f"  tasks: {counters.get('tasks_requested', 0)} requested, "
            f"{counters.get('tasks_executed', 0)} executed, "
            f"{counters.get('task_cache_hits', 0)} cache hits"
        )
    if counters.get("worker_cache_hits"):
        print(
            f"  worker caches: {counters['worker_cache_hits']} hit(s) on "
            "distributed workers"
        )
    if counters.get("chunks_dispatched"):
        print(f"  streaming: {counters['chunks_dispatched']} chunk(s) dispatched")
    if counters.get("inputs_generated"):
        print(f"  inputs: {counters['inputs_generated']} lazily generated")
    for name, phase in sorted(telemetry.get("phases", {}).items()):
        print(f"  phase {name}: {phase['seconds']:.3f}s over {phase['calls']} call(s)")


def cmd_list(_args: argparse.Namespace) -> int:
    """Print the registered Table-1 tests."""
    rows = []
    for name in sorted(registry()):
        variant = registry()[name]()
        program = variant.benchmark.program
        rows.append(
            [
                name,
                variant.benchmark.name,
                variant.variant,
                "yes" if program.has_variable_accuracy else "no",
                str(program.features.num_features()),
            ]
        )
    print(format_table(["test", "benchmark", "inputs", "variable accuracy", "features"], rows))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    """Regenerate Table-1 rows for the selected tests."""
    tests = args.tests or list(TABLE1_TESTS)
    unknown = [test for test in tests if test not in registry()]
    if unknown:
        print(f"unknown tests: {unknown}", file=sys.stderr)
        return 2
    config = _experiment_config(args)
    with config.runtime_scope() as runtime:
        rows = run_table1(
            tests=tests, config=config, progress=lambda m: print(f"# {m}"), runtime=runtime
        )
        print(format_table1(rows))
        headline = summarize_headline(rows)
        print(f"\nmax two-level speedup: {headline['max_two_level_speedup']:.2f}x")
        print(f"max two-level / one-level ratio: {headline['max_two_over_one_level']:.2f}x")
        _print_runtime_stats(args, runtime.stats())
    return 0


def cmd_figure7(_args: argparse.Namespace) -> int:
    """Print the Section 4.3 model curves (Figure 7a peaks and Figure 7b)."""
    curves = model_figure7a()
    peaks = [[str(k), f"{float(curve.y.max()):.4f}"] for k, curve in sorted(curves.items())]
    print("Figure 7a: worst-case expected loss by number of configurations")
    print(format_table(["configs", "peak loss"], peaks))
    print()
    curve = model_figure7b()
    print("Figure 7b: fraction of full speedup vs landmarks")
    print(format_series(curve.x.tolist(), curve.y.tolist(), "landmarks", "fraction"))
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    """Train one test end to end and print a short summary."""
    if args.test not in registry():
        print(f"unknown test {args.test!r}; use 'list' to see options", file=sys.stderr)
        return 2
    result = run_experiment(args.test, config=_experiment_config(args))
    training = result.training
    print(f"test: {args.test}")
    print(f"landmarks: {len(training.landmarks)}")
    print(f"production classifier: {training.production_classifier.name}")
    print(f"relabel shift: {training.level2.relabel_shift:.1%}")
    rows = [
        [
            name,
            f"{result.mean_speedup(name):.2f}x",
            f"{result.mean_speedup(name, with_extraction=False):.2f}x",
            f"{result.satisfaction(name):.1%}",
        ]
        for name in ("dynamic_oracle", "two_level", "one_level")
    ]
    print(format_table(["method", "speedup (w/ features)", "speedup (w/o)", "accuracy satisfied"], rows))
    _print_runtime_stats(args, result.runtime_stats)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one experiment run under cProfile and print the hot paths.

    The starting point for every hot-path hunt: wraps the exact
    ``run_experiment`` call the other commands make in ``cProfile`` and
    prints the top-N functions by cumulative time.  ``--output`` saves the
    printed table; ``--save-stats`` dumps the raw profile for ``pstats`` /
    ``snakeviz``-style exploration.  Profiling inflates wall time several
    fold, so the numbers rank hot paths; benchmark wall-clock comparisons
    belong to ``benchmarks/``.
    """
    import cProfile
    import io
    import pstats

    if args.test not in registry():
        print(f"unknown test {args.test!r}; use 'list' to see options", file=sys.stderr)
        return 2
    config = _experiment_config(args)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = run_experiment(args.test, config=config)
    finally:
        profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats(args.sort).print_stats(args.top)
    table = stream.getvalue()
    header = (
        f"test: {args.test}\n"
        f"two-level speedup: {result.mean_speedup('two_level'):.2f}x\n"
        f"top {args.top} functions by {args.sort} time:\n"
    )
    print(header + table)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(header + table)
        print(f"profile table written to {args.output}")
    if args.save_stats:
        profiler.dump_stats(args.save_stats)
        print(f"raw profile written to {args.save_stats}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Train the requested tests and serve their selectors over TCP."""
    import asyncio

    from repro.serving import SelectorServer, ServingConfig

    tests = args.tests or ["sort2"]
    unknown = [test for test in tests if test not in registry()]
    if unknown:
        print(f"unknown tests: {unknown}", file=sys.stderr)
        return 2
    server = SelectorServer(
        config=ServingConfig(
            host=args.host,
            port=args.port,
            max_pending=args.max_pending,
            execution_workers=args.execution_workers,
        )
    )
    for test in tests:
        print(f"# training {test} ...")
        result = run_experiment(test, config=_experiment_config(args))
        entry = server.publish(test, result.training.deployed)
        print(f"# {test}: model v{entry.version} published")

    async def _serve() -> None:
        host, port = await server.start()
        print(f"serving {len(tests)} model(s) on {host}:{port}", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\ninterrupted; shutting down")
    return 0


def cmd_adapt_replay(args: argparse.Namespace) -> int:
    """Replay a scripted drift scenario and report regret before/after."""
    import json

    from repro.adaptation import get_scenario, replay_scenario

    try:
        scenario = get_scenario(args.scenario, scale=args.scale, seed=args.seed)
    except KeyError as error:
        print(str(error), file=sys.stderr)
        return 2
    config = ExperimentConfig(
        seed=args.seed,
        executor=args.executor,
        workers=args.workers,
        dist_workers=args.dist_workers,
        use_cache=True,
        cache_path=args.cache_path,
    )
    with config.runtime_scope() as runtime:
        report = replay_scenario(scenario, runtime)
        stats = runtime.stats()

    print(f"scenario: {report.scenario} ({report.n_requests} requests, "
          f"{report.n_training} training inputs, seed {report.seed})")
    adapted, frozen = report.adapted, report.frozen
    print(f"drift: {adapted.drift_checks} checks, {adapted.drift_trips} trip(s); "
          f"retrains: {adapted.retrains} "
          f"({len([s for s in adapted.swaps if s['swapped']])} swapped, "
          f"{adapted.retrains_rejected} rejected, {adapted.retrains_failed} failed)")
    print(f"model: v{frozen.final_version} frozen -> v{adapted.final_version} adapted "
          f"({frozen.final_landmark_count} -> {adapted.final_landmark_count} landmarks)")
    rows = [
        ["frozen", f"{sum(frozen.served_costs):.0f}",
         f"{report.regret_frozen_total:.0f}", f"{report.regret_frozen_shifted:.0f}"],
        ["adapted", f"{sum(adapted.served_costs):.0f}",
         f"{report.regret_adapted_total:.0f}", f"{report.regret_adapted_shifted:.0f}"],
    ]
    print(format_table(
        ["selector", "served cost", "regret (total)", "regret (shifted tail)"], rows
    ))
    print(f"shifted-tail regret removed by adapting: {report.shifted_improvement:.0f}")
    print(f"digest: {report.digest()}")
    if args.output:
        payload = report.to_json()
        payload["digest"] = report.digest()
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.output}")
    if args.runtime_stats:
        print("# runtime stats")
        for key, value in sorted(stats.get("telemetry", {}).get("counters", {}).items()):
            if key.startswith("adapt"):
                print(f"  {key}: {value}")
    if report.shifted_improvement <= 0 and adapted.drift_trips > 0:
        # A replay where adaptation ran but did not pay for itself is the
        # failure the harness exists to catch.
        print("adaptation did not reduce shifted-tail regret", file=sys.stderr)
        return 1
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run an experiment or serving load under an injected fault plan.

    Replays the same seeded plan ``--replays`` times and verifies the
    invariant reports agree bit-for-bit (the chaos determinism claim);
    exits non-zero when any invariant fails or any replay diverges.
    """
    import json

    from repro.resilience.chaos import (
        PRESETS,
        experiment_digest,
        preset_plan,
        run_chaos_experiment,
        run_chaos_load,
    )
    from repro.resilience.faults import FaultPlan

    if args.test not in registry():
        print(f"unknown test {args.test!r}; use 'list' to see options", file=sys.stderr)
        return 2
    if (args.preset is None) == (args.plan is None):
        print("provide exactly one of --preset / --plan", file=sys.stderr)
        return 2
    if args.preset is not None:
        plan = preset_plan(args.preset, seed=args.fault_seed)
    else:
        with open(args.plan, "r", encoding="utf-8") as handle:
            plan = FaultPlan.from_json(handle.read())
    if args.replays < 1:
        print("--replays must be >= 1", file=sys.stderr)
        return 2

    config = _experiment_config(args)
    reports = []
    if args.mode == "experiment":
        baseline_digest = None
        if not args.no_baseline:
            print("# running fault-free baseline ...")
            baseline_digest = experiment_digest(run_experiment(args.test, config=config))
        for replay in range(args.replays):
            print(f"# chaos replay {replay + 1}/{args.replays} (plan {plan.digest()}) ...")
            reports.append(
                run_chaos_experiment(
                    args.test, plan, config=config, baseline_digest=baseline_digest
                )
            )
    else:
        print("# training fault-free model ...")
        deployed = run_experiment(args.test, config=config).training.deployed
        for replay in range(args.replays):
            print(f"# chaos replay {replay + 1}/{args.replays} (plan {plan.digest()}) ...")
            reports.append(
                run_chaos_load(
                    args.test,
                    deployed,
                    plan,
                    requests=args.requests,
                    unique_inputs=args.unique_inputs,
                    clients=args.clients,
                )
            )

    report = reports[0]
    print(json.dumps(report, indent=2, sort_keys=True))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.output}")

    digests = {r["digest"] for r in reports}
    if len(digests) != 1:
        print(f"replays diverged: {sorted(digests)}", file=sys.stderr)
        return 1
    print(f"{len(reports)} replay(s) agree: report digest {report['digest']}")
    failed = [name for name, held in report["compared"]["invariants"].items() if not held]
    if failed:
        print(f"invariants failed: {failed}", file=sys.stderr)
        return 1
    print("all invariants held")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available benchmark tests").set_defaults(func=cmd_list)

    table1 = subparsers.add_parser("table1", help="regenerate Table-1 rows")
    table1.add_argument("--tests", nargs="*", default=None)
    _add_scale_arguments(table1)
    table1.set_defaults(func=cmd_table1)

    figure7 = subparsers.add_parser("figure7", help="print the theoretical model curves")
    figure7.set_defaults(func=cmd_figure7)

    train = subparsers.add_parser("train", help="train one test and summarize it")
    train.add_argument("test")
    _add_scale_arguments(train)
    train.set_defaults(func=cmd_train)

    profile = subparsers.add_parser(
        "profile",
        help="profile one experiment run under cProfile (hot-path table)",
    )
    profile.add_argument("test")
    profile.add_argument(
        "--top", type=int, default=30, help="number of functions to print"
    )
    profile.add_argument(
        "--sort",
        choices=["cumulative", "tottime"],
        default="cumulative",
        help="profile ordering (default: cumulative)",
    )
    profile.add_argument(
        "--output", default=None, help="also write the printed table to this file"
    )
    profile.add_argument(
        "--save-stats",
        default=None,
        help="dump the raw cProfile stats here (pstats/snakeviz format)",
    )
    _add_scale_arguments(profile)
    profile.set_defaults(func=cmd_profile)

    serve = subparsers.add_parser(
        "serve", help="train selectors and serve them over TCP (see docs/serving.md)"
    )
    serve.add_argument("--tests", nargs="*", default=None, help="tests to serve (default: sort2)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=7415, help="bind port (0 = ephemeral)")
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="admission cap on distinct in-flight executions (503 beyond it)",
    )
    serve.add_argument(
        "--execution-workers",
        type=int,
        default=1,
        help="thread-pool width for program executions",
    )
    _add_scale_arguments(serve)
    serve.set_defaults(func=cmd_serve)

    adapt = subparsers.add_parser(
        "adapt-replay",
        help="replay a scripted drift scenario through the adaptation loop "
        "(see docs/adaptation.md)",
    )
    adapt.add_argument(
        "--scenario", default="sort-shift", help="scenario name (default: sort-shift)"
    )
    adapt.add_argument(
        "--scale",
        choices=["small", "medium", "large"],
        default="small",
        help="scenario size preset",
    )
    adapt.add_argument("--seed", type=int, default=0, help="scenario seed")
    adapt.add_argument(
        "--executor",
        choices=sorted(EXECUTORS),
        default=os.environ.get("REPRO_EXECUTOR", "serial"),
        help="measurement executor (the report is bit-identical across them)",
    )
    adapt.add_argument("--workers", type=int, default=None, help="executor worker count")
    adapt.add_argument(
        "--dist-workers",
        type=int,
        default=_env_dist_workers(),
        help="worker processes for --executor distributed",
    )
    adapt.add_argument(
        "--cache-path", default=None, help="persisted run-cache directory to reuse"
    )
    adapt.add_argument("--output", default=None, help="write the full JSON report here")
    adapt.add_argument(
        "--runtime-stats", action="store_true", help="print adaptation counters"
    )
    adapt.set_defaults(func=cmd_adapt_replay)

    chaos = subparsers.add_parser(
        "chaos",
        help="run an experiment or serving load under an injected fault plan "
        "(see docs/resilience.md)",
    )
    chaos.add_argument("mode", choices=["experiment", "load"], help="what to run under faults")
    chaos.add_argument("test", nargs="?", default="sort2", help="benchmark test (default: sort2)")
    from repro.resilience.chaos import PRESETS

    chaos.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default=None,
        help="named fault plan (distributed presets need --executor distributed)",
    )
    chaos.add_argument("--plan", default=None, help="JSON fault-plan file (alternative to --preset)")
    chaos.add_argument("--fault-seed", type=int, default=0, help="fault plan seed")
    chaos.add_argument(
        "--replays",
        type=int,
        default=2,
        help="times to replay the plan; reports must agree bit-for-bit",
    )
    chaos.add_argument(
        "--no-baseline",
        action="store_true",
        help="experiment mode: skip the fault-free baseline run "
        "(drops the matches_baseline invariant)",
    )
    chaos.add_argument("--requests", type=int, default=32, help="load mode: trace length")
    chaos.add_argument("--unique-inputs", type=int, default=8, help="load mode: distinct inputs")
    chaos.add_argument("--clients", type=int, default=2, help="load mode: client connections")
    chaos.add_argument("--output", default=None, help="write the JSON report here")
    _add_scale_arguments(chaos)
    chaos.set_defaults(func=cmd_chaos)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
