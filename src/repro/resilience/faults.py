"""Deterministic fault injection behind named sites.

Production code is instrumented with *fault sites* -- cheap, named check
points (:func:`maybe_fail`, :func:`fault_site`, :func:`truncate_bytes`)
that are no-ops unless a chaos run has activated a :class:`FaultPlan`.
A plan is declarative: each :class:`FaultSpec` names a site, a trigger
(the site's nth call, or a seeded per-call probability), and an action.
Everything that decides whether a fault fires is a pure function of the
plan -- per-site call counters and a per-site ``random.Random`` seeded
from ``(plan.seed, site)`` -- so replaying the same plan against the same
workload injects the same faults, bit for bit.

Known sites (grep for the literals to find the instrumented code):

========================  ====================================================
``cache.shard_write``     sharded-store file writes (``_atomic_write_json``)
``dist.send``             coordinator -> worker socket sends
``dist.lease``            a lease just assigned to a distributed worker
``worker.execute``        a distributed worker about to execute a lease
``shm.attach``            a measure worker attaching a shared-memory segment
``serve.execute``         the serving server about to execute a request
``runtime.chunk``         a runtime chunk boundary (checkpoint/kill point)
========================  ====================================================

Actions: ``raise`` (raise :class:`FaultError`, an ``OSError``), ``delay``
(sleep ``delay_seconds``), ``truncate`` (torn write: the site persists only
the first ``truncate_bytes`` bytes), ``drop`` (the site tears down its
socket mid-conversation), ``kill`` (SIGKILL the current process -- a crash,
not an exception).

Injectors travel into worker processes by environment variable: the chaos
harness serializes the plan into ``REPRO_FAULT_PLAN``; spawned workers call
:func:`install_from_env` at startup.  Within a process the active injector
is the ContextVar one if set (test scoping), else the process-global one
(covers pool threads, which do not inherit the submitting context).
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: Environment variable carrying a JSON-serialized plan into subprocesses.
PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

_ACTIONS = ("raise", "delay", "truncate", "drop", "kill")


class FaultError(OSError):
    """Raised by a fault site executing a ``raise`` (or ``drop``) action.

    Subclasses ``OSError`` so transport-level handlers (socket send loops,
    shard writers) treat an injected fault exactly like the real I/O error
    it stands in for.
    """

    def __init__(self, site: str, action: str = "raise") -> None:
        super().__init__(f"injected fault at {site!r} (action={action})")
        self.site = site
        self.action = action


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: where, when, and what.

    Args:
        site: fault-site name (see module docstring).
        action: one of ``raise``/``delay``/``truncate``/``drop``/``kill``.
        nth: fire on the site's nth call (1-based) *in each process*.
            Mutually exclusive with ``probability``.
        probability: fire each call with this seeded probability.
        count: maximum number of fires per process (``None`` = unlimited
            for probability triggers; ``nth`` triggers always fire once).
        delay_seconds: sleep length for ``delay`` actions.
        truncate_bytes: bytes preserved by a ``truncate`` action.
        match: only consider calls whose detail string (e.g. the target
            path of a shard write) contains this substring.
    """

    site: str
    action: str = "raise"
    nth: Optional[int] = None
    probability: Optional[float] = None
    count: Optional[int] = None
    delay_seconds: float = 0.05
    truncate_bytes: int = 16
    match: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if (self.nth is None) == (self.probability is None):
            raise ValueError("exactly one of nth/probability must be set")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def to_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"site": self.site, "action": self.action}
        if self.nth is not None:
            record["nth"] = self.nth
        if self.probability is not None:
            record["probability"] = self.probability
        if self.count is not None:
            record["count"] = self.count
        if self.action == "delay":
            record["delay_seconds"] = self.delay_seconds
        if self.action == "truncate":
            record["truncate_bytes"] = self.truncate_bytes
        if self.match is not None:
            record["match"] = self.match
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "FaultSpec":
        return cls(
            site=record["site"],
            action=record.get("action", "raise"),
            nth=record.get("nth"),
            probability=record.get("probability"),
            count=record.get("count"),
            delay_seconds=float(record.get("delay_seconds", 0.05)),
            truncate_bytes=int(record.get("truncate_bytes", 16)),
            match=record.get("match"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultSpec` driving one chaos run."""

    faults: List[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "faults": [spec.to_record() for spec in self.faults]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        data = json.loads(payload)
        return cls(
            faults=[FaultSpec.from_record(record) for record in data.get("faults", [])],
            seed=int(data.get("seed", 0)),
        )

    def digest(self) -> str:
        """Stable content digest of the plan (for invariant reports)."""
        import hashlib

        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against live fault-site calls.

    Thread-safe: per-site call counters and RNGs are guarded by a lock, so
    sites may be hit concurrently from pool threads.  Counters are
    per-injector (i.e. per process when installed via environment), which
    is what makes ``nth`` triggers deterministic for single-threaded sites
    and *per worker* for worker-process sites.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        self._fires: Dict[int, int] = {}
        self._rngs: Dict[str, random.Random] = {}
        self.fired: Dict[str, int] = {}

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = random.Random(f"{self.plan.seed}:{site}")
            self._rngs[site] = rng
        return rng

    def check(self, site: str, detail: Optional[str] = None) -> Optional[FaultSpec]:
        """Record one call at ``site``; return the spec that fires, if any."""
        with self._lock:
            calls = self._calls.get(site, 0) + 1
            self._calls[site] = calls
            for index, spec in enumerate(self.plan.faults):
                if spec.site != site:
                    continue
                if spec.match is not None and (detail is None or spec.match not in detail):
                    continue
                fires = self._fires.get(index, 0)
                if spec.nth is not None:
                    # Fires at call nth, then (given a count > 1) every nth
                    # calls after that, up to the count cap.
                    limit = spec.count if spec.count is not None else 1
                    if fires >= limit or calls % spec.nth != 0:
                        continue
                elif spec.probability is not None:
                    if spec.count is not None and fires >= spec.count:
                        continue
                    if self._rng(site).random() >= spec.probability:
                        continue
                self._fires[index] = fires + 1
                self.fired[site] = self.fired.get(site, 0) + 1
                return spec
        return None

    def snapshot(self) -> Dict[str, Any]:
        """Diagnostics: per-site call and fire counts (not deterministic
        across schedules for multi-threaded sites; report them separately
        from compared invariants)."""
        with self._lock:
            return {"calls": dict(self._calls), "fired": dict(self.fired)}


#: Test-scoped override; takes precedence over the process-global injector.
_context_injector: ContextVar[Optional[FaultInjector]] = ContextVar(
    "repro_fault_injector", default=None
)
#: Process-global injector (set via env for workers, or by fault_scope).
_process_injector: Optional[FaultInjector] = None


def active_injector() -> Optional[FaultInjector]:
    """The injector governing this call, or None when chaos is inactive."""
    injector = _context_injector.get()
    if injector is not None:
        return injector
    return _process_injector


def install(injector: Optional[FaultInjector]) -> None:
    """Set (or clear, with None) the process-global injector."""
    global _process_injector
    _process_injector = injector


def install_from_env() -> Optional[FaultInjector]:
    """Install the injector serialized in ``REPRO_FAULT_PLAN``, if any.

    Called by worker-process entry points so chaos plans follow the run
    across process boundaries (spawned workers inherit the environment).
    """
    payload = os.environ.get(PLAN_ENV_VAR)
    if not payload:
        return None
    try:
        plan = FaultPlan.from_json(payload)
    except (ValueError, KeyError, TypeError):
        return None
    injector = FaultInjector(plan)
    install(injector)
    return injector


@contextmanager
def fault_scope(plan: FaultPlan, env: bool = True) -> Iterator[FaultInjector]:
    """Activate ``plan`` for the dynamic extent of a with-block.

    Installs the injector both process-globally (so pool threads see it)
    and, when ``env`` is true, in ``os.environ`` so worker processes
    spawned inside the scope inherit it.  Restores prior state on exit.
    """
    injector = FaultInjector(plan)
    global _process_injector
    previous = _process_injector
    _process_injector = injector
    saved_env = os.environ.get(PLAN_ENV_VAR)
    if env:
        os.environ[PLAN_ENV_VAR] = plan.to_json()
    try:
        yield injector
    finally:
        _process_injector = previous
        if env:
            if saved_env is None:
                os.environ.pop(PLAN_ENV_VAR, None)
            else:
                os.environ[PLAN_ENV_VAR] = saved_env


def fault_site(site: str, detail: Optional[str] = None) -> Optional[FaultSpec]:
    """Record a call at ``site``; return the firing spec for caller-applied
    actions (``truncate``, ``drop``) or None.

    ``raise``/``delay``/``kill`` actions are applied here directly, so most
    call sites only need the one-line :func:`maybe_fail` form.
    """
    injector = active_injector()
    if injector is None:
        return None
    spec = injector.check(site, detail)
    if spec is None:
        return None
    if spec.action == "raise":
        raise FaultError(site)
    if spec.action == "delay":
        time.sleep(spec.delay_seconds)
        return None
    if spec.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    return spec


def maybe_fail(site: str, detail: Optional[str] = None) -> None:
    """One-line fault site for raise/delay/kill actions."""
    fault_site(site, detail)


def truncate_bytes(site: str, detail: Optional[str] = None) -> Optional[int]:
    """Fault site for writers: bytes to keep for a torn write, or None."""
    spec = fault_site(site, detail)
    if spec is not None and spec.action == "truncate":
        return spec.truncate_bytes
    return None
