"""Deterministic resilience toolkit: fault injection, retries, breakers.

The modules here give the system one vocabulary for "things going wrong":

* :mod:`~repro.resilience.faults` -- a seeded, declarative fault-injection
  harness.  Production code declares *sites* (``cache.shard_write``,
  ``dist.send``, ...); a chaos run activates a :class:`FaultPlan` that fires
  raise/delay/truncate/drop/kill actions at chosen calls, bit-for-bit
  reproducibly.
* :mod:`~repro.resilience.retry` -- :class:`RetryPolicy`, the single
  retry/backoff implementation shared by the process executor's pool
  rebuilds, distributed worker connects, and the serving client.
* :mod:`~repro.resilience.breaker` -- :class:`CircuitBreaker` guarding
  serving-side executions.
* :mod:`~repro.resilience.checkpoint` -- crash-safe experiment resume via
  an atomic checkpoint manifest over the sharded run cache.
* :mod:`~repro.resilience.chaos` -- the harness behind ``repro chaos``:
  runs an experiment or a loadgen trace under a fault plan and reports
  which system-level invariants held.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.checkpoint import ExperimentCheckpoint, config_digest
from repro.resilience.faults import (
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_injector,
    fault_scope,
    fault_site,
    install_from_env,
    maybe_fail,
    truncate_bytes,
)
from repro.resilience.retry import RetryError, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "ExperimentCheckpoint",
    "config_digest",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "active_injector",
    "fault_scope",
    "fault_site",
    "install_from_env",
    "maybe_fail",
    "truncate_bytes",
    "RetryError",
    "RetryPolicy",
]
