"""Chaos harness: run the real pipeline under a declarative fault plan.

The resilience claim this repo makes is concrete: because every program
run is a pure function of content and results fold by chunk index (never
arrival order), any injected failure that the runtime survives must leave
the output *bit-identical* to a clean run -- and replaying the same
seeded :class:`~repro.resilience.faults.FaultPlan` must reproduce the
same outcome.  This module turns that claim into an executable check.

Two entry points, both returning an invariant report:

* :func:`run_chaos_experiment` -- run one training experiment inside
  :func:`~repro.resilience.faults.fault_scope` and check it still
  completes with the same measurement matrices as a fault-free baseline.
* :func:`run_chaos_load` -- replay a load-generator trace against a
  serving stack whose executions are failing, and check the degradation
  contract (every request answered, breaker opens, degraded fallbacks
  served) instead of silent loss.

Report shape::

    {
      "mode": "experiment" | "load",
      "test": "sort2",
      "compared": {"plan": <plan digest>, "invariants": {...bools...},
                   "result_digest": ...},
      "digest": <sha256 of "compared">,
      "diagnostics": {...}
    }

``compared`` holds only deterministic facts -- the plan digest, invariant
booleans, and content digests -- so two replays of the same plan must
produce byte-identical ``compared`` sections (and therefore the same
report ``digest``).  Everything timing- or scheduling-dependent (fault
fire counts per process, retry counters, latencies) lives under
``diagnostics``, which is informative but never compared.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.resilience.faults import FaultPlan, FaultSpec, fault_scope

#: Named fault plans covering each subsystem's recovery path.  Values are
#: thunks so every call gets fresh (immutable, but independently owned)
#: spec lists.  Sites that a given run never reaches simply do not fire
#: (e.g. ``cache.shard_write`` without ``--cache-path``); the report's
#: diagnostics show the per-site fire counts.
PRESETS: Dict[str, Callable[[], List[FaultSpec]]] = {
    # Torn shard writes: the first two persisted shards are truncated
    # mid-write before the atomic rename is reached, so the store must
    # come up clean from the surviving bytes.  Needs a cache path.
    "shard-torn-write": lambda: [
        FaultSpec(site="cache.shard_write", action="truncate", nth=1, count=2)
    ],
    # A worker process dies mid-lease on its second execution; the
    # coordinator must requeue the chunk.  Needs --executor distributed.
    "worker-crash": lambda: [
        FaultSpec(site="worker.execute", action="raise", nth=2, count=1)
    ],
    # The coordinator's socket to a worker drops right after a lease is
    # issued; the lease must time out and be reassigned.  Distributed only.
    "lease-drop": lambda: [FaultSpec(site="dist.lease", action="drop", nth=2, count=1)],
    # Shared-memory attach fails in pool workers; the executor must fall
    # back to pickled chunk transport.  Process executor only.
    "shm-detach": lambda: [
        FaultSpec(site="shm.attach", action="raise", nth=1, count=4)
    ],
    # Serving brownout: the first five program executions raise, which
    # must trip the circuit breaker and switch the server to degraded
    # default-configuration answers instead of dropping requests.
    "serve-brownout": lambda: [
        FaultSpec(site="serve.execute", action="raise", nth=1, count=5)
    ],
}


def preset_plan(name: str, seed: int = 0) -> FaultPlan:
    """Build the named preset as a seeded :class:`FaultPlan`."""
    try:
        faults = PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown chaos preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    return FaultPlan(faults=faults, seed=seed)


def experiment_digest(result: Any) -> str:
    """Content digest of an experiment's measured matrices and outcomes.

    Covers the N x K times/accuracies matrices plus every method's
    per-input times -- the quantities the paper's tables are built from.
    Two runs agree on this digest iff they are bit-identical where it
    matters.
    """
    digest = hashlib.sha256()
    dataset = result.training.dataset
    digest.update(np.ascontiguousarray(dataset.times).tobytes())
    digest.update(np.ascontiguousarray(dataset.accuracies).tobytes())
    digest.update(np.ascontiguousarray(result.test_rows).tobytes())
    for name in sorted(result.methods):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(result.methods[name].times).tobytes())
    return digest.hexdigest()[:32]


def report_digest(report: Dict[str, Any]) -> str:
    """Digest of the report's deterministic (``compared``) section."""
    encoded = json.dumps(report["compared"], sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:16]


def _finish(
    mode: str,
    test: str,
    plan: FaultPlan,
    invariants: Dict[str, bool],
    diagnostics: Dict[str, Any],
    extra_compared: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    compared: Dict[str, Any] = {"plan": plan.digest(), "invariants": invariants}
    if extra_compared:
        compared.update(extra_compared)
    report = {
        "mode": mode,
        "test": test,
        "compared": compared,
        "diagnostics": diagnostics,
    }
    report["digest"] = report_digest(report)
    return report


def run_chaos_experiment(
    test: str,
    plan: FaultPlan,
    config: Optional[Any] = None,
    baseline_digest: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one experiment under ``plan`` and report its invariants.

    Invariants checked (all must be deterministic across replays):

    * ``completed`` -- the experiment finished despite the injected
      faults (recovery paths absorbed them).
    * ``matches_baseline`` -- its :func:`experiment_digest` equals the
      fault-free run's (omitted when no ``baseline_digest`` is given).

    Args:
        test: benchmark test name.
        plan: the fault plan to install for the run's duration.
        config: :class:`~repro.experiments.runner.ExperimentConfig`; the
            default trains at the config's default scale.
        baseline_digest: digest of a clean run with the same config,
            typically from ``experiment_digest(run_experiment(...))``.
            Compute it once and share it across replays.
    """
    from repro.experiments.runner import ExperimentConfig, run_experiment

    if config is None:
        config = ExperimentConfig()
    invariants: Dict[str, bool] = {}
    diagnostics: Dict[str, Any] = {}
    result_digest: Optional[str] = None
    with fault_scope(plan) as injector:
        try:
            result = run_experiment(test, config=config)
        except Exception as error:  # the run did NOT survive the plan
            invariants["completed"] = False
            diagnostics["error"] = f"{type(error).__name__}: {error}"
        else:
            invariants["completed"] = True
            result_digest = experiment_digest(result)
            stats = result.runtime_stats
            diagnostics["retries"] = stats.get("retries", {})
            diagnostics["distributed"] = stats.get("distributed", {})
            diagnostics["executor_fallback"] = stats.get("executor_fallback")
        diagnostics["faults"] = injector.snapshot()
    if baseline_digest is not None:
        invariants["matches_baseline"] = result_digest == baseline_digest
        diagnostics["baseline_digest"] = baseline_digest
    return _finish(
        "experiment",
        test,
        plan,
        invariants,
        diagnostics,
        extra_compared={"result_digest": result_digest},
    )


def run_chaos_load(
    test: str,
    deployed: Any,
    plan: FaultPlan,
    requests: int = 32,
    unique_inputs: int = 8,
    clients: int = 2,
    serving_config: Optional[Any] = None,
) -> Dict[str, Any]:
    """Replay a serving trace under ``plan`` and report the degradation contract.

    The model is trained *outside* this function (fault-free) so replays
    share one ``deployed`` artifact; only the serve/replay runs inside
    :func:`fault_scope`.

    Invariants checked:

    * ``answered_all`` -- every request produced a frame (result, error,
      or recorded client error); nothing was silently lost.
    * ``breaker_opened`` -- repeated execution failures tripped the
      circuit breaker at least once.
    * ``served_degraded`` -- after the breaker opened, requests were
      answered with degraded default-configuration frames rather than
      rejected.

    The default serving config makes those invariants deterministic:
    one execution worker (failures land in injection order), a breaker
    threshold below the preset's fault count, and a recovery timeout
    longer than any test run (the breaker stays open once tripped).
    """
    from repro.serving.loadgen import run_load
    from repro.serving.server import ServingConfig

    if serving_config is None:
        serving_config = ServingConfig(
            port=0,
            execution_workers=1,
            breaker_threshold=3,
            breaker_recovery_seconds=600.0,
            degraded_fallback=True,
        )
    with fault_scope(plan) as injector:
        metrics = run_load(
            test,
            deployed,
            requests=requests,
            unique_inputs=unique_inputs,
            clients=clients,
            config=serving_config,
            allow_errors=True,
        )
        fault_snapshot = injector.snapshot()
    invariants = {
        "answered_all": metrics["responses"] == requests,
        "breaker_opened": metrics["breaker"]["opened_total"] >= 1,
        "served_degraded": metrics["degraded"] >= 1,
    }
    diagnostics = {
        "faults": fault_snapshot,
        "metrics": {
            key: metrics[key]
            for key in (
                "requests",
                "responses",
                "executions",
                "coalesced",
                "cache_hits",
                "errors",
                "client_errors",
                "degraded",
                "breaker_open",
                "breaker",
            )
        },
    }
    return _finish("load", test, plan, invariants, diagnostics)
