"""Circuit breaker guarding serving-side executions.

Standard three-state breaker.  *Closed* passes executions through and
counts consecutive failures; at ``failure_threshold`` it *opens* and
:meth:`CircuitBreaker.allow` answers False -- the server stops attempting
executions and serves degraded responses instead.  After
``recovery_timeout`` seconds the breaker goes *half-open*: it admits a
bounded number of trial executions; one success closes it, one failure
re-opens it (and restarts the recovery clock).

Thread-safe; serving calls it from the event loop *and* from pool threads.
The clock is injectable so tests drive state transitions without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed half-open recovery."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_timeout: float = 30.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_max < 1:
            raise ValueError("half_open_max must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.half_open_max = half_open_max
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self.opened_total = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # Lock held.  Open flips to half-open lazily, on observation.
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.recovery_timeout
        ):
            self._state = self.HALF_OPEN
            self._half_open_inflight = 0
        return self._state

    def allow(self) -> bool:
        """May the caller attempt an execution right now?

        In half-open state this *admits* the caller as a trial: at most
        ``half_open_max`` concurrent trials run until one reports an
        outcome.
        """
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            if state == self.OPEN:
                return False
            if self._half_open_inflight >= self.half_open_max:
                return False
            self._half_open_inflight += 1
            return True

    def record_success(self) -> None:
        with self._lock:
            state = self._effective_state()
            self._consecutive_failures = 0
            if state == self.HALF_OPEN:
                self._state = self.CLOSED
                self._half_open_inflight = 0

    def record_failure(self) -> None:
        with self._lock:
            state = self._effective_state()
            self._consecutive_failures += 1
            if state == self.HALF_OPEN or (
                state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._half_open_inflight = 0
                self.opened_total += 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._effective_state(),
                "consecutive_failures": self._consecutive_failures,
                "opened_total": self.opened_total,
            }
