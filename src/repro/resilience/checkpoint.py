"""Crash-safe experiment resume: an atomic manifest over the run cache.

The runtime's persistence story already makes resumption *correct*: every
run is a pure function of content, and the sharded
:class:`~repro.runtime.cache.RunCache` persists measurements keyed by that
content.  What it lacked was *durability at chunk granularity* -- a run
SIGKILLed mid-measurement used to lose everything since the last explicit
``save_cache()`` (typically the whole phase).

:class:`ExperimentCheckpoint` closes that gap.  Attached to a
:class:`~repro.runtime.runtime.Runtime` (``runtime.checkpoint``), it is
called at every chunk boundary: it saves the cache's dirty shards (cheap --
only shards touched since the last save are rewritten, fsynced, and
renamed into place) and atomically rewrites a small manifest JSON next to
the store::

    {
      "version": 1,
      "config": "<sha256 digest of the experiment's identity>",
      "phase": "level1.measure",
      "completed_chunks": [0, 1, 2, ...],
      "shards": ["0a", "3f", ...],
      "interrupted": true
    }

On ``--resume`` the manifest's config digest is checked against the
current experiment's; a match means every completed chunk's measurements
are on disk, so re-running the experiment replays those chunks as pure
cache hits and only executes from the first unfinished chunk --
producing the bit-identical output an uninterrupted run would have.
A mismatch (different test, seed, sizes...) refuses to resume rather than
silently mixing two experiments' progress.

``interrupted`` is flipped to False by :meth:`finish`; a manifest still
carrying True therefore marks a run that died, which is exactly the state
``--resume`` is for.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional

#: Manifest format version.
MANIFEST_VERSION = 1

#: Manifest filename inside the cache store directory.
MANIFEST_NAME = "checkpoint.json"


def config_digest(payload: Dict[str, Any]) -> str:
    """Stable digest of an experiment's identity-defining settings.

    ``payload`` must be JSON-serializable; key order does not matter.
    """
    encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:32]


class CheckpointMismatch(ValueError):
    """``--resume`` found a manifest written by a different experiment."""


class ExperimentCheckpoint:
    """Chunk-granular progress manifest for one experiment run.

    Args:
        store_path: the sharded cache store directory; the manifest lives
            inside it (they survive or die together).
        digest: the experiment's config digest (:func:`config_digest`).
        every: write the manifest every N completed chunks (shard saves
            still happen every chunk; raising this only batches manifest
            rewrites for very small chunks).
    """

    def __init__(self, store_path: str, digest: str, every: int = 1) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.store_path = store_path
        self.digest = digest
        self.every = every
        self.phase = "start"
        self.completed_chunks: List[int] = []
        self._chunk_counter = 0
        self.resumed_from: Optional[Dict[str, Any]] = None

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.store_path, MANIFEST_NAME)

    # -- reading ---------------------------------------------------------

    def load(self) -> Optional[Dict[str, Any]]:
        """The on-disk manifest, or None if missing/corrupt/incompatible."""
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(manifest, dict)
            or manifest.get("version") != MANIFEST_VERSION
        ):
            return None
        return manifest

    def resume(self) -> Optional[Dict[str, Any]]:
        """Adopt a prior run's manifest; None when there is nothing to resume.

        Raises :class:`CheckpointMismatch` when a manifest exists but was
        written by a different experiment configuration.
        """
        manifest = self.load()
        if manifest is None:
            return None
        if manifest.get("config") != self.digest:
            raise CheckpointMismatch(
                f"checkpoint at {self.manifest_path!r} belongs to a different "
                f"experiment (config {manifest.get('config')!r}, "
                f"expected {self.digest!r}); remove the store or rerun "
                "without --resume"
            )
        self.resumed_from = manifest
        return manifest

    # -- writing ---------------------------------------------------------

    def set_phase(self, name: str) -> None:
        """Record entering a coarse experiment phase."""
        self.phase = name
        self._write(interrupted=True)

    def chunk_completed(self, runtime: Any) -> None:
        """Runtime chunk-boundary hook: persist shards, advance the manifest.

        ``runtime`` is the calling :class:`~repro.runtime.runtime.Runtime`;
        its dirty cache shards are saved (atomic, fsynced writes -- see
        ``_atomic_write_json``) *before* the manifest records the chunk, so
        a kill between the two steps merely re-runs one recorded-as-
        incomplete chunk.
        """
        runtime.save_cache()
        self.completed_chunks.append(self._chunk_counter)
        self._chunk_counter += 1
        if self._chunk_counter % self.every == 0:
            self._write(interrupted=True)

    def finish(self, runtime: Any) -> None:
        """Mark the run complete (a later ``--resume`` becomes a no-op)."""
        runtime.save_cache()
        self._write(interrupted=False)

    def _write(self, interrupted: bool) -> None:
        from repro.runtime.cache import RunCache, _atomic_write_json

        # The store directory appears on the first shard save; the manifest
        # may legitimately be written first (phase "start" of a fresh run).
        os.makedirs(self.store_path, exist_ok=True)
        meta = RunCache._read_meta(self.store_path) or {}
        shards = sorted((meta.get("shards") or {}).keys())
        _atomic_write_json(
            self.manifest_path,
            {
                "version": MANIFEST_VERSION,
                "config": self.digest,
                "phase": self.phase,
                "completed_chunks": self.completed_chunks,
                "shards": shards,
                "interrupted": interrupted,
            },
            site="ckpt.write",
        )
