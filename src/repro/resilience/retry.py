"""The system's one retry/backoff implementation.

:class:`RetryPolicy` replaces the hand-rolled ``for retry in (False, True)``
loops that used to live in the process executor, the distributed worker's
connect path, and the serving client.  A policy is a small immutable value:
max attempts, exponential backoff with *deterministic* jitter (seeded from
the policy seed and the attempt number, never the wall clock), an optional
overall deadline, and the exception classes worth retrying.

Call sites use :meth:`RetryPolicy.run`::

    policy.run(connect, retryable=(OSError,), counters=telemetry.counters)

``counters`` is any plain mapping (e.g. ``Telemetry.counters``); the policy
increments ``retry_attempts`` / ``retry_retries`` / ``retry_recoveries`` /
``retry_giveups`` in it, so every layer reports retries with one vocabulary.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Type


class RetryError(Exception):
    """Raised when a policy's deadline expires with a non-retryable state.

    The normal give-up path re-raises the *last underlying error* so callers
    keep their existing except clauses; RetryError only surfaces for
    misconfiguration (e.g. ``fn`` never raised but a deadline of zero).
    """


def _count(counters: Optional[Dict[str, int]], name: str) -> None:
    if counters is not None:
        counters[name] = counters.get(name, 0) + 1


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    Args:
        max_attempts: total tries, including the first (>= 1).
        base_delay: backoff before the first retry, in seconds.
        multiplier: backoff growth factor per retry.
        max_delay: per-sleep cap in seconds.
        deadline: overall budget in seconds measured from the first attempt;
            a retry whose sleep would land past the deadline gives up early.
        jitter: +/- fraction applied to each sleep, drawn from a
            ``random.Random`` seeded by ``(seed, attempt)`` -- deterministic
            across runs, decorrelated across attempts.
        seed: jitter seed.
        retryable: default exception classes worth retrying (a call-site
            ``retryable=`` argument overrides).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    deadline: Optional[float] = None
    jitter: float = 0.1
    seed: int = 0
    retryable: Tuple[Type[BaseException], ...] = (OSError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")

    def backoff_delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based), jitter applied."""
        raw = min(self.max_delay, self.base_delay * (self.multiplier ** (attempt - 1)))
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        rng = random.Random(f"{self.seed}:{attempt}")
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def run(
        self,
        fn: Callable[[], Any],
        *,
        retryable: Optional[Tuple[Type[BaseException], ...]] = None,
        before_retry: Optional[Callable[[BaseException, int], None]] = None,
        counters: Optional[Dict[str, int]] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> Any:
        """Call ``fn`` under this policy and return its result.

        Non-retryable exceptions propagate immediately.  A retryable one is
        re-raised as-is once attempts or the deadline run out, so callers'
        existing ``except`` clauses keep working.  ``before_retry(error,
        attempt)`` runs before each retry -- the hook where the process
        executor rebuilds its broken pool; an exception there aborts the
        retry loop.
        """
        classes = self.retryable if retryable is None else retryable
        start = clock()
        attempt = 0
        while True:
            attempt += 1
            _count(counters, "retry_attempts")
            try:
                result = fn()
            except classes as error:
                if attempt >= self.max_attempts:
                    _count(counters, "retry_giveups")
                    raise
                delay = self.backoff_delay(attempt)
                if self.deadline is not None and clock() - start + delay > self.deadline:
                    _count(counters, "retry_giveups")
                    raise
                _count(counters, "retry_retries")
                if before_retry is not None:
                    before_retry(error, attempt)
                if delay > 0:
                    sleep(delay)
                continue
            if attempt > 1:
                _count(counters, "retry_recoveries")
            return result

    def wait_for(
        self,
        fn: Callable[[], Any],
        *,
        counters: Optional[Dict[str, int]] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> Any:
        """Poll ``fn`` until it returns a truthy value, under this policy.

        The test-suite replacement for ad-hoc ``while not ready: sleep()``
        loops: the same backoff/deadline math that governs production
        retries governs test waits.  Raises :class:`RetryError` when the
        policy gives up first.
        """
        start = clock()
        for attempt in range(1, self.max_attempts + 1):
            _count(counters, "retry_attempts")
            result = fn()
            if result:
                return result
            if attempt >= self.max_attempts:
                break
            delay = self.backoff_delay(attempt)
            if self.deadline is not None and clock() - start + delay > self.deadline:
                break
            sleep(delay)
        _count(counters, "retry_giveups")
        raise RetryError(f"condition not met after {self.max_attempts} attempts")
