"""Input features for the Clustering benchmark.

The paper lists "radius, centers, density, and range" and notes that
``centers`` is the most expensive feature relative to execution time (it has
to probe the cluster structure itself).  Each extractor samples a fraction of
the points determined by its level and charges the points it touches.
"""

from __future__ import annotations

import math

import numpy as np

from repro.lang.cost import charge
from repro.lang.features import FeatureExtractor, FeatureSet


def _sample_points(points: np.ndarray, fraction: float) -> np.ndarray:
    count = len(points)
    if count == 0:
        return points
    sample_size = max(4, int(math.ceil(count * fraction)))
    sample_size = min(sample_size, count)
    indices = np.linspace(0, count - 1, sample_size, dtype=int)
    return points[indices]


def radius(problem, fraction: float) -> float:
    """RMS distance of sampled points from their centroid."""
    sample = _sample_points(np.asarray(problem.points, dtype=float), fraction)
    charge(len(sample), "feature")
    if len(sample) == 0:
        return 0.0
    centroid = sample.mean(axis=0)
    return float(np.sqrt(np.mean(np.sum((sample - centroid) ** 2, axis=1))))


def centers(problem, fraction: float) -> float:
    """Estimated number of clusters via a coarse occupancy grid.

    This is the expensive feature: it scans the sample onto a grid and counts
    occupied connected regions (a cheap stand-in for running a pilot
    clustering, which is what makes the feature costly in the paper).
    """
    sample = _sample_points(np.asarray(problem.points, dtype=float), fraction)
    charge(len(sample) * 8.0, "feature")  # grid binning + neighbourhood scan
    if len(sample) < 4:
        return 1.0
    grid_size = 12
    mins = sample.min(axis=0)
    maxs = sample.max(axis=0)
    span = np.maximum(maxs - mins, 1e-9)
    cells = np.floor((sample - mins) / span * (grid_size - 1)).astype(int)
    occupied = np.zeros((grid_size, grid_size), dtype=bool)
    occupied[cells[:, 0], cells[:, 1]] = True
    # Count occupied regions with a simple flood fill (4-connectivity).
    visited = np.zeros_like(occupied)
    regions = 0
    for x in range(grid_size):
        for y in range(grid_size):
            if occupied[x, y] and not visited[x, y]:
                regions += 1
                stack = [(x, y)]
                visited[x, y] = True
                while stack:
                    cx, cy = stack.pop()
                    for nx, ny in ((cx + 1, cy), (cx - 1, cy), (cx, cy + 1), (cx, cy - 1)):
                        if (
                            0 <= nx < grid_size
                            and 0 <= ny < grid_size
                            and occupied[nx, ny]
                            and not visited[nx, ny]
                        ):
                            visited[nx, ny] = True
                            stack.append((nx, ny))
    return float(regions)


def density(problem, fraction: float) -> float:
    """Points per unit bounding-box area (log scale)."""
    sample = _sample_points(np.asarray(problem.points, dtype=float), fraction)
    charge(len(sample), "feature")
    if len(sample) < 2:
        return 0.0
    mins = sample.min(axis=0)
    maxs = sample.max(axis=0)
    area = float(np.prod(np.maximum(maxs - mins, 1e-9)))
    return math.log10(len(sample) / area + 1e-12)


def value_range(problem, fraction: float) -> float:
    """Largest coordinate span of the sampled points."""
    sample = _sample_points(np.asarray(problem.points, dtype=float), fraction)
    charge(len(sample), "feature")
    if len(sample) == 0:
        return 0.0
    return float(np.max(sample.max(axis=0) - sample.min(axis=0)))


def size_feature(problem, fraction: float) -> float:
    """Log2 of the number of points (essentially free)."""
    charge(1.0, "feature")
    return math.log2(max(len(problem.points), 1))


def build_feature_set() -> FeatureSet:
    """The Clustering benchmark's feature set (5 properties x 3 levels)."""
    return FeatureSet(
        [
            FeatureExtractor("radius", radius),
            FeatureExtractor("centers", centers, level_fractions=[0.1, 0.3, 1.0]),
            FeatureExtractor("density", density),
            FeatureExtractor("range", value_range),
            FeatureExtractor("size", size_feature, level_fractions=[1.0, 1.0, 1.0]),
        ]
    )
