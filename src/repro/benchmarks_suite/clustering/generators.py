"""Input generators for the Clustering benchmark.

* ``synthetic`` (clustering2) -- Gaussian blob mixtures with varying numbers
  of true clusters, spreads, and point counts, plus uniform-noise and
  ring-shaped populations, spanning the feature space.
* ``real_world`` (clustering1) -- the paper clustered the UCI Poker Hand
  dataset.  That dataset is categorical (ranks and suits), so points fall on
  a small discrete lattice with massive duplication; this generator produces
  lattice-valued 2-D points with skewed occupancy to mimic that structure.
  See DESIGN.md, substitution 2.

Inputs are :class:`ClusteringInput` objects (defined in ``benchmark.py``)
carrying the point array, the generator's true cluster count when known, and
a cache slot for the canonical clustering used by the accuracy metric.

Generation is per-index (``synthetic_item`` / ``real_world_item``): input
*i* draws from its own (population, seed, i)-seeded RNG, so the lazy
``InputSource`` pipeline can materialize any input without the rest.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.benchmarks_suite.clustering.benchmark import ClusteringInput
from repro.core.inputs import per_index_rng

MIN_POINTS = 80
MAX_POINTS = 600


def _random_count(rng: np.random.Generator) -> int:
    return int(rng.integers(MIN_POINTS, MAX_POINTS + 1))


def _blobs(rng: np.random.Generator) -> ClusteringInput:
    """Well-separated Gaussian blobs (easy, needs correct k)."""
    n = _random_count(rng)
    true_k = int(rng.integers(2, 11))
    centers = rng.uniform(-100.0, 100.0, size=(true_k, 2))
    spread = float(rng.uniform(0.5, 3.0))
    assignments = rng.integers(0, true_k, size=n)
    points = centers[assignments] + rng.normal(0.0, spread, size=(n, 2))
    return ClusteringInput(points=points, true_k=true_k)


def _elongated(rng: np.random.Generator) -> ClusteringInput:
    """Anisotropic clusters (harder; more iterations help)."""
    n = _random_count(rng)
    true_k = int(rng.integers(2, 7))
    centers = rng.uniform(-100.0, 100.0, size=(true_k, 2))
    assignments = rng.integers(0, true_k, size=n)
    noise = rng.normal(0.0, 1.0, size=(n, 2)) * np.array([12.0, 1.5])
    points = centers[assignments] + noise
    return ClusteringInput(points=points, true_k=true_k)


def _uniform_noise(rng: np.random.Generator) -> ClusteringInput:
    """No real cluster structure: tiny k and few iterations suffice."""
    n = _random_count(rng)
    points = rng.uniform(-100.0, 100.0, size=(n, 2))
    return ClusteringInput(points=points, true_k=2)


def _dense_core_sparse_halo(rng: np.random.Generator) -> ClusteringInput:
    """One dense core plus sparse outliers."""
    n = _random_count(rng)
    n_core = int(0.8 * n)
    core = rng.normal(0.0, 3.0, size=(n_core, 2))
    halo = rng.uniform(-150.0, 150.0, size=(n - n_core, 2))
    return ClusteringInput(points=np.vstack([core, halo]), true_k=3)


def _many_small_clusters(rng: np.random.Generator) -> ClusteringInput:
    """Many tight clusters: needs large k (slow configurations)."""
    n = _random_count(rng)
    true_k = int(rng.integers(10, 17))
    centers = rng.uniform(-120.0, 120.0, size=(true_k, 2))
    assignments = rng.integers(0, true_k, size=n)
    points = centers[assignments] + rng.normal(0.0, 1.0, size=(n, 2))
    return ClusteringInput(points=points, true_k=true_k)


SYNTHETIC_FAMILIES = [
    _blobs,
    _elongated,
    _uniform_noise,
    _dense_core_sparse_halo,
    _many_small_clusters,
]


def synthetic_item(index: int, seed: int = 0) -> ClusteringInput:
    """Input ``index`` of the clustering2 population (pure in (index, seed))."""
    rng = per_index_rng(seed, index, "clustering", "synthetic")
    family = SYNTHETIC_FAMILIES[index % len(SYNTHETIC_FAMILIES)]
    return family(rng)


def generate_synthetic(n: int, seed: int = 0) -> List[ClusteringInput]:
    """The clustering2 population."""
    return [synthetic_item(i, seed) for i in range(n)]


def real_world_item(index: int, seed: int = 0) -> ClusteringInput:
    """Input ``index`` of the clustering1 population: poker-hand-like lattice data.

    Points live on a small integer lattice (card rank x suit), occupancy is
    highly skewed (some hands are far more common), and many points coincide
    exactly -- the regime where a cheap density feature identifies the input
    class and small-k configurations win.
    """
    rng = per_index_rng(seed, index, "clustering", "real_world")
    count = _random_count(rng)
    n_modes = int(rng.integers(2, 7))
    mode_centers = np.stack(
        [rng.integers(1, 14, size=n_modes), rng.integers(1, 5, size=n_modes)],
        axis=1,
    ).astype(float)
    weights = rng.dirichlet(np.ones(n_modes) * 0.6)
    assignments = rng.choice(n_modes, size=count, p=weights)
    # Lattice jitter of at most one step; modes themselves sit on a much
    # coarser grid (see the scaling below), so hands belonging to
    # different modes stay well separated and coincide heavily within a
    # mode -- the structure that makes cheap small-k configurations
    # reliably accurate on this population.
    jitter = rng.integers(-1, 2, size=(count, 2)).astype(float) * 0.5
    points = mode_centers[assignments] + jitter
    points[:, 0] = np.clip(points[:, 0], 1, 13)
    points[:, 1] = np.clip(points[:, 1], 1, 4)
    # Scale ranks and suits onto comparable, well-separated numeric ranges.
    points = points * np.array([6.0, 18.0])
    return ClusteringInput(points=points, true_k=n_modes)


def generate_real_world(n: int, seed: int = 0) -> List[ClusteringInput]:
    """The clustering1 population: poker-hand-like lattice data."""
    return [real_world_item(i, seed) for i in range(n)]
