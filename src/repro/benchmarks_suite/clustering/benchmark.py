"""The Clustering benchmark: input type, configuration space, program.

Accuracy (paper Section 4.1): ``sum(d_hat_i) / sum(d_i)`` where ``d_hat`` are
point-to-centre distances under a canonical clustering and ``d`` under the
tuned configuration; the accuracy threshold is 0.8.  A configuration that
uses too few clusters or too few iterations produces large distances and
fails the threshold; over-provisioned configurations pass but waste time --
exactly the accuracy/performance tension the two-level method manages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.benchmarks_suite.base import Benchmark, InputGenerator
from repro.lang.accuracy import AccuracyMetric, AccuracyRequirement
from repro.lang.config import (
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    IntegerParameter,
)
from repro.lang.program import PetaBricksProgram

#: Accuracy threshold from the paper.
ACCURACY_THRESHOLD = 0.8


@dataclass
class ClusteringInput:
    """A clustering problem instance.

    Attributes:
        points: (n, 2) array of coordinates.
        true_k: the generating process's cluster count, when known (used only
            by the canonical reference clustering, never by the tuned code).
        _canonical_distance: cached mean point-to-centre distance of the
            canonical clustering (computed lazily by the accuracy metric).
    """

    points: np.ndarray
    true_k: Optional[int] = None
    _canonical_distance: Optional[float] = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.points)

    def canonical_distance(self) -> float:
        """Mean point-to-centre distance of the canonical clustering (cached)."""
        if self._canonical_distance is None:
            from repro.benchmarks_suite.clustering.algorithms import canonical_clustering

            reference = canonical_clustering(self.points, true_k=self.true_k)
            # Guard against a degenerate zero (all points identical).
            self._canonical_distance = max(reference.mean_distance, 1e-9)
        return self._canonical_distance


def build_config_space() -> ConfigurationSpace:
    """Configuration space: init strategy, cluster count, iteration budget."""
    space = ConfigurationSpace()
    space.add(CategoricalParameter("init", ["random", "prefix", "centerplus"]))
    space.add(IntegerParameter("k", 2, 16))
    space.add(IntegerParameter("iterations", 1, 20))
    return space


def run_clustering(config: Configuration, problem: ClusteringInput):
    """Cluster the input with the configured k-means variant."""
    from repro.benchmarks_suite.clustering.algorithms import kmeans_cluster

    return kmeans_cluster(
        problem.points,
        k=int(config["k"]),
        iterations=int(config["iterations"]),
        init=config["init"],
        seed=7,
    )


def clustering_accuracy(problem: ClusteringInput, output) -> float:
    """Accuracy = canonical mean distance / achieved mean distance.

    Values above 1.0 mean the tuned clustering is tighter than the canonical
    reference (possible when it uses more clusters); the paper's threshold of
    0.8 tolerates a 25% degradation.
    """
    achieved = max(output.mean_distance, 1e-9)
    return problem.canonical_distance() / achieved


class ClusteringBenchmark(Benchmark):
    """The paper's Clustering benchmark (variable accuracy)."""

    name = "clustering"

    def build_program(self) -> PetaBricksProgram:
        from repro.benchmarks_suite.clustering import features

        return PetaBricksProgram(
            name=self.name,
            config_space=build_config_space(),
            run_func=run_clustering,
            features=features.build_feature_set(),
            accuracy_metric=AccuracyMetric("distance_ratio", clustering_accuracy),
            accuracy_requirement=AccuracyRequirement(
                accuracy_threshold=ACCURACY_THRESHOLD, satisfaction_threshold=0.95
            ),
        )

    def input_generators(self) -> Dict[str, InputGenerator]:
        from repro.benchmarks_suite.clustering import generators

        return {
            "synthetic": InputGenerator(
                name="synthetic",
                description="Gaussian blob mixtures and noise populations (clustering2)",
                item=generators.synthetic_item,
            ),
            "real_world": InputGenerator(
                name="real_world",
                description="poker-hand-like lattice data standing in for the UCI dataset (clustering1)",
                item=generators.real_world_item,
            ),
        }
