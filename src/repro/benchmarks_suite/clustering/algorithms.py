"""K-means variants for the Clustering benchmark.

The benchmark's algorithmic choice is the *initialization strategy* of a
k-means clusterer (``random``, ``prefix``, or ``centerplus``), combined with
tunable cluster count ``k`` and iteration budget.  All three variants share
the Lloyd-iteration core below; they differ only in how the initial centres
are chosen, which is exactly the structure of the PetaBricks benchmark.

Costs: every Lloyd iteration charges ``n * k`` distance evaluations;
``centerplus`` initialization charges an extra ``n * k`` for its seeding
scan, making it the most expensive (and most robust) choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.lang.cost import charge


@dataclass(frozen=True)
class ClusteringOutput:
    """Result of one clustering run.

    Attributes:
        centers: (k, 2) array of cluster centres.
        assignments: per-point cluster index.
        mean_distance: mean distance from each point to its assigned centre.
    """

    centers: np.ndarray
    assignments: np.ndarray
    mean_distance: float


def _init_random(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Random distinct points as initial centres."""
    indices = rng.choice(len(points), size=min(k, len(points)), replace=False)
    charge(k, "init")
    return points[indices].astype(float)


def _init_prefix(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """The first k points as initial centres (cheapest, order sensitive)."""
    charge(k, "init")
    return points[: min(k, len(points))].astype(float).copy()


def _init_centerplus(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++-style seeding (most expensive, most robust)."""
    n = len(points)
    centers = np.empty((min(k, n), points.shape[1]), dtype=float)
    centers[0] = points[int(rng.integers(n))]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    charge(n, "init")
    for i in range(1, centers.shape[0]):
        total = float(closest_sq.sum())
        if total <= 0:
            index = int(rng.integers(n))
        else:
            index = int(rng.choice(n, p=closest_sq / total))
        centers[i] = points[index]
        closest_sq = np.minimum(closest_sq, np.sum((points - centers[i]) ** 2, axis=1))
        charge(n, "init")
    return centers


INIT_STRATEGIES = {
    "random": _init_random,
    "prefix": _init_prefix,
    "centerplus": _init_centerplus,
}


def kmeans_cluster(
    points: np.ndarray,
    k: int,
    iterations: int,
    init: str = "random",
    seed: int = 0,
) -> ClusteringOutput:
    """Cluster ``points`` into ``k`` groups with a bounded Lloyd iteration.

    Args:
        points: (n, 2) array of coordinates.
        k: number of clusters (clamped to the number of points).
        iterations: number of Lloyd iterations to run.
        init: one of ``"random"``, ``"prefix"``, ``"centerplus"``.
        seed: RNG seed for the initialization strategies that need one.

    Raises:
        ValueError: for an unknown init strategy or non-positive k/iterations.
    """
    if init not in INIT_STRATEGIES:
        raise ValueError(f"unknown init strategy {init!r}")
    if k < 1:
        raise ValueError("k must be >= 1")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")

    points = np.asarray(points, dtype=float)
    n = len(points)
    if n == 0:
        raise ValueError("cannot cluster zero points")
    k = min(k, n)
    rng = np.random.default_rng(seed)

    centers = INIT_STRATEGIES[init](points, k, rng)
    assignments = np.zeros(n, dtype=int)
    for _ in range(iterations):
        distances = _point_center_distances(points, centers)
        assignments = np.argmin(distances, axis=1)
        charge(n * centers.shape[0], "distance")
        for cluster in range(centers.shape[0]):
            members = points[assignments == cluster]
            if len(members) > 0:
                centers[cluster] = members.mean(axis=0)
        charge(n, "update")

    distances = _point_center_distances(points, centers)
    assignments = np.argmin(distances, axis=1)
    nearest = distances[np.arange(n), assignments]
    mean_distance = float(np.sqrt(nearest).mean())
    return ClusteringOutput(
        centers=centers, assignments=assignments, mean_distance=mean_distance
    )


def canonical_clustering(points: np.ndarray, true_k: Optional[int] = None) -> ClusteringOutput:
    """The reference clustering the accuracy metric compares against.

    The paper defines accuracy relative to "a canonical clustering
    algorithm"; we use centerplus seeding with a generous iteration budget
    and, when the generator recorded the true number of clusters, that k.
    This runs outside the benchmark's cost accounting (it models an offline
    reference, not part of the tuned program).
    """
    k = true_k if true_k is not None else _estimate_k(points)
    return kmeans_cluster(points, k=k, iterations=6, init="centerplus", seed=1234)


def _estimate_k(points: np.ndarray) -> int:
    """Crude elbow-free estimate of cluster count used for unlabeled data."""
    n = len(points)
    return max(2, min(12, int(round(np.sqrt(n / 25.0)))))


def _point_center_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, (n_points, n_centers)."""
    diff = points[:, None, :] - centers[None, :, :]
    return np.sum(diff ** 2, axis=2)
