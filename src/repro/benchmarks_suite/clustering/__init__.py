"""The Clustering benchmark (paper Section 4.1, "Clustering").

Assigns 2-D points to clusters with a k-means variant whose initial
conditions (random / prefix / centerplus), cluster count ``k``, and iteration
count are all set by the autotuner.  Accuracy is the ratio of the canonical
algorithm's point-to-centre distances to the tuned algorithm's distances,
with a 0.8 accuracy threshold.
"""

from repro.benchmarks_suite.clustering.benchmark import ClusteringBenchmark, ClusteringInput

__all__ = ["ClusteringBenchmark", "ClusteringInput"]
