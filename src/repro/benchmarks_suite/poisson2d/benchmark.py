"""The Poisson 2D benchmark: input type, configuration space, program.

The configuration chooses among multigrid (with cycle shape, cycle count and
smoothing counts set by the autotuner), Jacobi, SOR, and the direct fast
Poisson solver, plus an iteration budget for the iterative methods.
Accuracy is ``log10(RMS(u_exact - 0) / RMS(u_exact - u_out))`` with the
paper's threshold of 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.benchmarks_suite.base import Benchmark, InputGenerator
from repro.lang.accuracy import AccuracyMetric, AccuracyRequirement
from repro.lang.config import (
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    IntegerParameter,
)
from repro.lang.program import PetaBricksProgram

#: Accuracy threshold from the paper (10^7 error reduction).
ACCURACY_THRESHOLD = 7.0


@dataclass
class PoissonInput:
    """A Poisson problem instance (the right-hand side on the interior grid)."""

    rhs: np.ndarray
    _exact: Optional[np.ndarray] = field(default=None, repr=False)

    def __len__(self) -> int:
        return int(self.rhs.size)

    def exact_solution(self) -> np.ndarray:
        """Reference solution (cached; computed outside the cost model)."""
        if self._exact is None:
            from repro.benchmarks_suite.poisson2d import solvers

            self._exact = solvers.exact_solution(np.asarray(self.rhs, dtype=float))
        return self._exact


def build_config_space() -> ConfigurationSpace:
    """Configuration space: solver choice plus its tunables."""
    space = ConfigurationSpace()
    space.add(
        CategoricalParameter("solver", ["multigrid", "jacobi", "sor", "direct"])
    )
    space.add(IntegerParameter("iterations", 5, 400, log_scale=True))
    space.add(CategoricalParameter("cycle_shape", ["V", "W"]))
    space.add(IntegerParameter("cycles", 1, 12))
    space.add(IntegerParameter("pre_smooth", 1, 4))
    space.add(IntegerParameter("post_smooth", 1, 4))
    return space


def run_poisson(config: Configuration, problem: PoissonInput) -> np.ndarray:
    """Solve the Poisson problem with the configured solver."""
    from repro.benchmarks_suite.poisson2d import solvers

    f = np.asarray(problem.rhs, dtype=float)
    solver = config["solver"]
    if solver == "direct":
        return solvers.direct_banded_cholesky(f)
    if solver == "jacobi":
        return solvers.jacobi(f, iterations=int(config["iterations"]))
    if solver == "sor":
        return solvers.sor(f, iterations=int(config["iterations"]))
    if solver == "multigrid":
        return solvers.multigrid(
            f,
            cycles=int(config["cycles"]),
            cycle_shape=config["cycle_shape"],
            pre_smooth=int(config["pre_smooth"]),
            post_smooth=int(config["post_smooth"]),
        )
    raise ValueError(f"unknown solver {solver!r}")


def poisson_accuracy(problem: PoissonInput, solution: np.ndarray) -> float:
    """Log10 ratio of initial-guess error to achieved error."""
    exact = problem.exact_solution()
    initial_error = float(np.sqrt(np.mean(exact ** 2)))
    output_error = float(np.sqrt(np.mean((exact - solution) ** 2)))
    return float(np.log10((initial_error + 1e-300) / (output_error + 1e-300)))


class Poisson2DBenchmark(Benchmark):
    """The paper's Poisson 2D benchmark (variable accuracy)."""

    name = "poisson2d"

    def build_program(self) -> PetaBricksProgram:
        from repro.benchmarks_suite.poisson2d import features

        return PetaBricksProgram(
            name=self.name,
            config_space=build_config_space(),
            run_func=run_poisson,
            features=features.build_feature_set(),
            accuracy_metric=AccuracyMetric("log_error_ratio", poisson_accuracy),
            accuracy_requirement=AccuracyRequirement(
                accuracy_threshold=ACCURACY_THRESHOLD, satisfaction_threshold=0.95
            ),
        )

    def input_generators(self) -> Dict[str, InputGenerator]:
        from repro.benchmarks_suite.poisson2d import generators

        return {
            "synthetic": InputGenerator(
                name="synthetic",
                description="right-hand sides with smooth, oscillatory, sparse, mixed, and noisy spectra",
                item=generators.synthetic_item,
            ),
        }
