"""Solvers for the 2-D Poisson equation.

All solvers operate on the interior of a uniform ``n x n`` grid over the unit
square with homogeneous Dirichlet boundaries, i.e. they solve

    -laplace(u) = f,    u = 0 on the boundary,

with the standard 5-point stencil.  Work is charged per stencil application
(5 flops per interior point), so the classical cost hierarchy -- Jacobi
iterations are cheap but converge slowly on smooth error, multigrid costs a
small constant per digit of accuracy, the direct fast solver costs
``O(n^3)`` (dense sine-transform matrices) but is exact -- is reflected in
the cost model.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from repro.lang.cost import charge


def _grid_spacing(n: int) -> float:
    """Mesh width for an n x n interior grid on the unit square."""
    return 1.0 / (n + 1)


def apply_operator(u: np.ndarray, charge_cost: bool = True) -> np.ndarray:
    """Apply the 5-point negative Laplacian (scaled by 1/h^2) to ``u``."""
    n = u.shape[0]
    h2 = _grid_spacing(n) ** 2
    padded = np.pad(u, 1)
    result = (
        4.0 * padded[1:-1, 1:-1]
        - padded[:-2, 1:-1]
        - padded[2:, 1:-1]
        - padded[1:-1, :-2]
        - padded[1:-1, 2:]
    ) / h2
    if charge_cost:
        charge(5.0 * n * n, "stencil")
    return result


def residual(u: np.ndarray, f: np.ndarray) -> np.ndarray:
    """Residual ``f - A u`` of a candidate solution."""
    return f - apply_operator(u)


def residual_norm(u: np.ndarray, f: np.ndarray) -> float:
    """RMS norm of the residual."""
    r = residual(u, f)
    return float(np.sqrt(np.mean(r ** 2)))


def jacobi(f: np.ndarray, iterations: int, u0: np.ndarray = None, weight: float = 0.8) -> np.ndarray:
    """Weighted Jacobi iteration.

    Cheap per sweep but reduces smooth (low-frequency) error extremely
    slowly, so it only reaches the accuracy target on inputs whose solution
    is dominated by high-frequency content.
    """
    n = f.shape[0]
    h2 = _grid_spacing(n) ** 2
    u = np.zeros_like(f) if u0 is None else u0.copy()
    for _ in range(max(0, iterations)):
        padded = np.pad(u, 1)
        neighbours = (
            padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2] + padded[1:-1, 2:]
        )
        updated = (neighbours + h2 * f) / 4.0
        u = (1.0 - weight) * u + weight * updated
        charge(6.0 * n * n, "stencil")
    return u


def sor(f: np.ndarray, iterations: int, omega: float = None, u0: np.ndarray = None) -> np.ndarray:
    """Red-black successive over-relaxation.

    With the optimal relaxation factor (used when ``omega`` is None) the
    iteration count for a fixed error reduction grows only linearly in the
    grid dimension, so SOR is a viable mid-cost choice on moderate grids.
    """
    n = f.shape[0]
    h2 = _grid_spacing(n) ** 2
    if omega is None:
        rho = math.cos(math.pi * _grid_spacing(n))
        omega = 2.0 / (1.0 + math.sqrt(1.0 - rho * rho))
    u = np.zeros_like(f) if u0 is None else u0.copy()

    index = np.arange(n)
    red_mask = ((index[:, None] + index[None, :]) % 2) == 0
    black_mask = ~red_mask

    for _ in range(max(0, iterations)):
        for mask in (red_mask, black_mask):
            padded = np.pad(u, 1)
            neighbours = (
                padded[:-2, 1:-1]
                + padded[2:, 1:-1]
                + padded[1:-1, :-2]
                + padded[1:-1, 2:]
            )
            gauss_seidel = (neighbours + h2 * f) / 4.0
            u[mask] = (1.0 - omega) * u[mask] + omega * gauss_seidel[mask]
        charge(8.0 * n * n, "stencil")
    return u


def direct_banded_cholesky(f: np.ndarray) -> np.ndarray:
    """Exact direct solver via banded Cholesky factorization.

    The 5-point Laplacian on an ``n x n`` grid is a symmetric positive
    definite banded matrix with ``n^2`` unknowns and bandwidth ``n``; a
    banded Cholesky factorization therefore costs on the order of
    ``n^2 * n^2 = n^4`` flops (charged as such), which is the classical
    "direct solver" trade-off the benchmark exposes: always accurate, but
    asymptotically more expensive than multigrid on large grids.
    """
    from scipy.linalg import solveh_banded

    n = f.shape[0]
    h2 = _grid_spacing(n) ** 2
    unknowns = n * n
    bandwidth = n
    # Lower banded storage: row d holds the d-th sub-diagonal.
    banded = np.zeros((bandwidth + 1, unknowns))
    banded[0, :] = 4.0 / h2
    within_row = -np.ones(unknowns - 1) / h2
    within_row[np.arange(1, unknowns) % n == 0] = 0.0  # no coupling across grid rows
    banded[1, : unknowns - 1] = within_row
    banded[bandwidth, : unknowns - n] = -1.0 / h2
    charge(2.0 * unknowns * bandwidth ** 2, "factorize")
    solution = solveh_banded(banded, f.reshape(unknowns), lower=True)
    charge(4.0 * unknowns * bandwidth, "solve")
    return solution.reshape(n, n)


def direct_fast_poisson(f: np.ndarray) -> np.ndarray:
    """Exact fast Poisson solver via the discrete sine transform.

    Diagonalizes the 5-point Laplacian with dense sine-basis matrix
    multiplications (``O(n^3)`` work, charged as such); the result is exact
    to rounding, so the accuracy target is always met.

    Not exposed as an algorithmic choice of the benchmark (it would dominate
    every other solver under the cost model); it serves as the coarse-grid
    solver inside multigrid and as the reference-solution engine.
    """
    n = f.shape[0]
    h = _grid_spacing(n)
    modes = np.arange(1, n + 1)
    # Sine basis S[i, j] = sin(pi * i * j * h); S is symmetric and S^2 = (n+1)/2 * I.
    sine = np.sin(math.pi * h * np.outer(modes, modes))
    eigenvalues = (2.0 - 2.0 * np.cos(math.pi * modes * h)) / (h * h)
    charge(4.0 * n ** 3, "transform")
    f_hat = sine @ f @ sine
    denom = eigenvalues[:, None] + eigenvalues[None, :]
    u_hat = f_hat / denom
    u = sine @ u_hat @ sine
    u *= (2.0 / (n + 1)) ** 2
    charge(4.0 * n ** 3, "transform")
    return u


def _restrict(fine: np.ndarray) -> np.ndarray:
    """Full-weighting restriction to the next coarser grid (n -> (n-1)/2)."""
    n = fine.shape[0]
    coarse_n = (n - 1) // 2
    padded = np.pad(fine, 1)
    i = 2 * np.arange(1, coarse_n + 1)
    center = padded[np.ix_(i, i)]
    edges = (
        padded[np.ix_(i - 1, i)]
        + padded[np.ix_(i + 1, i)]
        + padded[np.ix_(i, i - 1)]
        + padded[np.ix_(i, i + 1)]
    )
    corners = (
        padded[np.ix_(i - 1, i - 1)]
        + padded[np.ix_(i - 1, i + 1)]
        + padded[np.ix_(i + 1, i - 1)]
        + padded[np.ix_(i + 1, i + 1)]
    )
    charge(9.0 * coarse_n * coarse_n, "restrict")
    return (4.0 * center + 2.0 * edges + corners) / 16.0


def _prolong(coarse: np.ndarray, fine_n: int) -> np.ndarray:
    """Bilinear prolongation from the coarse grid to an n x n fine grid."""
    coarse_n = coarse.shape[0]
    padded = np.pad(coarse, 1)
    fine = np.zeros((fine_n, fine_n))
    i = np.arange(1, coarse_n + 1)
    fine_idx = 2 * i - 1
    fine[np.ix_(fine_idx, fine_idx)] = padded[np.ix_(i, i)]
    # Horizontal then vertical interpolation of the in-between points.
    fine[np.ix_(fine_idx, fine_idx[:-1] + 1)] = 0.5 * (
        padded[np.ix_(i, i[:-1])] + padded[np.ix_(i, i[:-1] + 1)]
    )
    fine[np.ix_(fine_idx[:-1] + 1, fine_idx)] = 0.5 * (
        padded[np.ix_(i[:-1], i)] + padded[np.ix_(i[:-1] + 1, i)]
    )
    fine[np.ix_(fine_idx[:-1] + 1, fine_idx[:-1] + 1)] = 0.25 * (
        padded[np.ix_(i[:-1], i[:-1])]
        + padded[np.ix_(i[:-1] + 1, i[:-1])]
        + padded[np.ix_(i[:-1], i[:-1] + 1)]
        + padded[np.ix_(i[:-1] + 1, i[:-1] + 1)]
    )
    charge(4.0 * fine_n * fine_n, "prolong")
    return fine


def multigrid(
    f: np.ndarray,
    cycles: int = 8,
    cycle_shape: str = "V",
    pre_smooth: int = 2,
    post_smooth: int = 2,
    u0: np.ndarray = None,
) -> np.ndarray:
    """Geometric multigrid with a tunable cycle shape.

    Args:
        f: right-hand side on the n x n interior grid (n must be 2^k - 1 to
            coarsen fully; other sizes coarsen as far as they can).
        cycles: number of multigrid cycles.
        cycle_shape: ``"V"`` (gamma = 1) or ``"W"`` (gamma = 2).
        pre_smooth: weighted-Jacobi sweeps before coarse-grid correction.
        post_smooth: sweeps after the correction.
        u0: optional initial guess.
    """
    if cycle_shape not in ("V", "W"):
        raise ValueError(f"unknown cycle shape {cycle_shape!r}")
    gamma = 1 if cycle_shape == "V" else 2
    u = np.zeros_like(f) if u0 is None else u0.copy()
    for _ in range(max(0, cycles)):
        u = _mg_cycle(u, f, gamma, pre_smooth, post_smooth)
    return u


def _mg_cycle(u: np.ndarray, f: np.ndarray, gamma: int, pre: int, post: int) -> np.ndarray:
    n = u.shape[0]
    if n <= 3:
        return direct_fast_poisson(f)
    u = jacobi(f, pre, u0=u)
    coarse_residual = _restrict(residual(u, f))
    coarse_correction = np.zeros_like(coarse_residual)
    for _ in range(gamma):
        coarse_correction = _mg_cycle(coarse_correction, coarse_residual, gamma, pre, post)
    u = u + _prolong(coarse_correction, n)
    return jacobi(f, post, u0=u)


def exact_solution(f: np.ndarray) -> np.ndarray:
    """Reference solution used by the accuracy metric (outside cost accounting)."""
    n = f.shape[0]
    h = _grid_spacing(n)
    modes = np.arange(1, n + 1)
    sine = np.sin(math.pi * h * np.outer(modes, modes))
    eigenvalues = (2.0 - 2.0 * np.cos(math.pi * modes * h)) / (h * h)
    f_hat = sine @ f @ sine
    u_hat = f_hat / (eigenvalues[:, None] + eigenvalues[None, :])
    return (sine @ u_hat @ sine) * (2.0 / (n + 1)) ** 2
