"""The 2D Poisson benchmark (paper Section 4.1, "Poisson 2D").

Solves the 2-D Poisson equation ``-laplace(u) = f`` with homogeneous
Dirichlet boundary conditions.  The algorithmic choices are multigrid (with
autotuned cycle shape and smoothing counts), iterative smoothers (Jacobi,
SOR), and a direct fast-Poisson solver; accuracy is the log of the ratio
between the RMS error of the zero initial guess and the RMS error of the
produced solution, with the paper's threshold of 7 (i.e. a 10^7 error
reduction).
"""

from repro.benchmarks_suite.poisson2d.benchmark import Poisson2DBenchmark, PoissonInput

__all__ = ["Poisson2DBenchmark", "PoissonInput"]
