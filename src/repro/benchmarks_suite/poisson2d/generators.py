"""Input generators for the Poisson 2D benchmark.

Right-hand sides with different spectral content so different solver
configurations win:

* **smooth** -- a few low-frequency sine modes; smoothers converge slowly on
  the resulting smooth solution, so multigrid or the direct solver is needed;
* **oscillatory** -- high-frequency modes; cheap Jacobi/SOR sweeps already
  reduce the error by many orders of magnitude;
* **point sources** -- sparse spikes (mostly-zero RHS, exercising the
  ``zeros`` feature);
* **mixed spectrum** -- broad-band content, the general case;
* **random noise** -- white noise, dominated by high frequencies.

Grid sizes vary between 15 and 31 (2^k - 1 so multigrid can coarsen fully).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.benchmarks_suite.poisson2d.benchmark import PoissonInput
from repro.core.inputs import per_index_rng

GRID_SIZES = (15, 23, 31)


def _grid(rng: np.random.Generator) -> int:
    return int(rng.choice(GRID_SIZES))


def _mode(n: int, kx: int, ky: int) -> np.ndarray:
    """A single sine mode on the n x n interior grid."""
    coords = np.arange(1, n + 1) / (n + 1)
    return np.outer(np.sin(math.pi * kx * coords), np.sin(math.pi * ky * coords))


def smooth(rng: np.random.Generator) -> PoissonInput:
    """Low-frequency RHS: the hard case for smoothers."""
    n = _grid(rng)
    f = np.zeros((n, n))
    for _ in range(int(rng.integers(1, 4))):
        kx, ky = int(rng.integers(1, 3)), int(rng.integers(1, 3))
        f += float(rng.uniform(0.5, 2.0)) * _mode(n, kx, ky)
    return PoissonInput(rhs=f)


def oscillatory(rng: np.random.Generator) -> PoissonInput:
    """High-frequency RHS: smoothers converge quickly."""
    n = _grid(rng)
    f = np.zeros((n, n))
    for _ in range(int(rng.integers(2, 6))):
        kx = int(rng.integers(max(2, n // 2), n + 1))
        ky = int(rng.integers(max(2, n // 2), n + 1))
        f += float(rng.uniform(0.5, 2.0)) * _mode(n, kx, ky)
    return PoissonInput(rhs=f)


def point_sources(rng: np.random.Generator) -> PoissonInput:
    """A few delta-like sources on an otherwise zero RHS."""
    n = _grid(rng)
    f = np.zeros((n, n))
    for _ in range(int(rng.integers(1, 6))):
        x, y = rng.integers(0, n, size=2)
        f[x, y] = float(rng.uniform(-5.0, 5.0))
    return PoissonInput(rhs=f)


def mixed_spectrum(rng: np.random.Generator) -> PoissonInput:
    """Both low- and high-frequency content."""
    n = _grid(rng)
    f = np.zeros((n, n))
    for _ in range(int(rng.integers(3, 8))):
        kx = int(rng.integers(1, n + 1))
        ky = int(rng.integers(1, n + 1))
        f += float(rng.uniform(0.2, 1.5)) * _mode(n, kx, ky)
    return PoissonInput(rhs=f)


def white_noise(rng: np.random.Generator) -> PoissonInput:
    """I.i.d. Gaussian RHS (broad spectrum, mostly high frequencies)."""
    n = _grid(rng)
    return PoissonInput(rhs=rng.normal(0.0, 1.0, size=(n, n)))


SYNTHETIC_FAMILIES = [smooth, oscillatory, point_sources, mixed_spectrum, white_noise]


def synthetic_item(index: int, seed: int = 0) -> PoissonInput:
    """Input ``index`` of the Poisson 2D population (pure in (index, seed))."""
    rng = per_index_rng(seed, index, "poisson2d", "synthetic")
    family = SYNTHETIC_FAMILIES[index % len(SYNTHETIC_FAMILIES)]
    return family(rng)


def generate_synthetic(n: int, seed: int = 0) -> List[PoissonInput]:
    """The Poisson 2D input population used in Table 1."""
    return [synthetic_item(i, seed) for i in range(n)]
