"""Input features for the Poisson 2D benchmark.

The paper uses "the residual measure of the input, the standard deviation of
the input, and a count of zeros in the input".  The residual measure probes
the roughness of the right-hand side (a rough RHS means the solution has
high-frequency content that cheap smoothers handle well); it is the
expensive feature because it applies the stencil operator.
"""

from __future__ import annotations

import math

import numpy as np

from repro.lang.cost import charge
from repro.lang.features import FeatureExtractor, FeatureSet


def _sample_grid(grid: np.ndarray, fraction: float) -> np.ndarray:
    """Take a centred square crop covering roughly ``fraction`` of the grid."""
    n = grid.shape[0]
    side = max(4, int(math.ceil(n * math.sqrt(fraction))))
    side = min(side, n)
    start = (n - side) // 2
    return grid[start : start + side, start : start + side]


def residual_measure(problem, fraction: float) -> float:
    """Roughness of the RHS: RMS of its discrete Laplacian, normalized."""
    sample = _sample_grid(np.asarray(problem.rhs, dtype=float), fraction)
    n = sample.shape[0]
    charge(5.0 * n * n, "feature")
    padded = np.pad(sample, 1)
    laplacian = (
        4.0 * padded[1:-1, 1:-1]
        - padded[:-2, 1:-1]
        - padded[2:, 1:-1]
        - padded[1:-1, :-2]
        - padded[1:-1, 2:]
    )
    scale = float(np.sqrt(np.mean(sample ** 2))) + 1e-12
    return float(np.sqrt(np.mean(laplacian ** 2))) / scale


def deviation(problem, fraction: float) -> float:
    """Standard deviation of the sampled RHS values."""
    sample = _sample_grid(np.asarray(problem.rhs, dtype=float), fraction)
    charge(sample.size, "feature")
    return float(np.std(sample))


def zeros(problem, fraction: float) -> float:
    """Fraction of (near-)zero entries in the sampled RHS."""
    sample = _sample_grid(np.asarray(problem.rhs, dtype=float), fraction)
    charge(sample.size, "feature")
    return float(np.mean(np.abs(sample) < 1e-12))


def size_feature(problem, fraction: float) -> float:
    """Log2 of the grid dimension."""
    charge(1.0, "feature")
    return math.log2(max(problem.rhs.shape[0], 2))


def build_feature_set() -> FeatureSet:
    """Poisson 2D's feature set (4 properties x 3 levels)."""
    return FeatureSet(
        [
            FeatureExtractor("residual", residual_measure, level_fractions=[0.1, 0.3, 1.0]),
            FeatureExtractor("deviation", deviation),
            FeatureExtractor("zeros", zeros),
            FeatureExtractor("size", size_feature, level_fractions=[1.0, 1.0, 1.0]),
        ]
    )
