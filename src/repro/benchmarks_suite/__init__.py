"""The six PetaBricks benchmarks used in the paper's evaluation.

Each benchmark subpackage provides:

* the algorithmic alternatives the paper lists for it (the ``either...or``
  choices) implemented as real algorithms instrumented with the work-unit
  cost model;
* the ``input_feature`` extractors the paper names, each with three sampling
  levels of increasing cost;
* the accuracy metric and thresholds from Section 4.1;
* input generators: a synthetic generator spanning the feature space plus,
  where the paper used a real-world dataset (sort1, clustering1), a
  "real-world-like" generator that mimics that dataset's statistical
  character (see DESIGN.md, substitution 2);
* a :class:`~repro.benchmarks_suite.base.Benchmark` subclass tying it all
  together into a :class:`~repro.lang.program.PetaBricksProgram`.
"""

from repro.benchmarks_suite.base import Benchmark, InputGenerator, get_benchmark, registry
from repro.benchmarks_suite.binpacking.benchmark import BinPackingBenchmark
from repro.benchmarks_suite.clustering.benchmark import ClusteringBenchmark
from repro.benchmarks_suite.helmholtz3d.benchmark import Helmholtz3DBenchmark
from repro.benchmarks_suite.poisson2d.benchmark import Poisson2DBenchmark
from repro.benchmarks_suite.sort.benchmark import SortBenchmark
from repro.benchmarks_suite.svd.benchmark import SVDBenchmark

__all__ = [
    "Benchmark",
    "BinPackingBenchmark",
    "ClusteringBenchmark",
    "get_benchmark",
    "Helmholtz3DBenchmark",
    "InputGenerator",
    "Poisson2DBenchmark",
    "registry",
    "SortBenchmark",
    "SVDBenchmark",
]
