"""Input features for the SVD benchmark.

The paper uses "range, the standard deviation of the input, and a count of
zeros in the input", noting that the number of significant eigenvalues --
the property the benchmark is actually sensitive to -- is too expensive to
measure directly, and the cheap features reflect it only indirectly (a matrix
with many zeros tends to have fewer significant singular values).
"""

from __future__ import annotations

import math

import numpy as np

from repro.lang.cost import charge
from repro.lang.features import FeatureExtractor, FeatureSet


def _sample_entries(matrix: np.ndarray, fraction: float) -> np.ndarray:
    flat = np.asarray(matrix, dtype=float).ravel()
    count = len(flat)
    if count == 0:
        return flat
    sample_size = max(4, int(math.ceil(count * fraction)))
    sample_size = min(sample_size, count)
    indices = np.linspace(0, count - 1, sample_size, dtype=int)
    return flat[indices]


def value_range(problem, fraction: float) -> float:
    """Max minus min sampled entry."""
    sample = _sample_entries(problem.matrix, fraction)
    charge(len(sample), "feature")
    return float(np.max(sample) - np.min(sample)) if len(sample) else 0.0


def deviation(problem, fraction: float) -> float:
    """Standard deviation of sampled entries."""
    sample = _sample_entries(problem.matrix, fraction)
    charge(len(sample), "feature")
    return float(np.std(sample)) if len(sample) else 0.0


def zeros(problem, fraction: float) -> float:
    """Fraction of sampled entries that are (near) zero."""
    sample = _sample_entries(problem.matrix, fraction)
    charge(len(sample), "feature")
    if len(sample) == 0:
        return 0.0
    return float(np.mean(np.abs(sample) < 1e-12))


def build_feature_set() -> FeatureSet:
    """SVD's feature set (3 properties x 3 levels)."""
    return FeatureSet(
        [
            FeatureExtractor("range", value_range),
            FeatureExtractor("deviation", deviation),
            FeatureExtractor("zeros", zeros),
        ]
    )
