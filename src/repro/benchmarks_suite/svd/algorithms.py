"""Rank-k approximation algorithms for the SVD benchmark.

Three techniques compute the leading ``k`` singular triplets of an
``m x n`` matrix (``m >= n``):

* ``exact``   -- full dense SVD (Golub-Kahan, via LAPACK); cost ``~ m*n^2``
  flops regardless of ``k``: always accurate, never cheap.
* ``subspace`` -- block subspace (orthogonal) iteration on ``A^T A`` with a
  tunable number of iterations; cost ``~ iterations * m*n*k``.
* ``power``    -- power iteration with deflation, one singular triplet at a
  time; cost ``~ iterations * m*n`` per recovered triplet, cheapest for very
  small ``k``.

Each routine returns the rank-k approximation ``A_k`` so the benchmark's
accuracy metric can measure the reconstruction error, and charges flop counts
to the cost model.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.lang.cost import charge


def exact_rank_k(matrix: np.ndarray, k: int) -> np.ndarray:
    """Truncate the exact dense SVD to rank ``k``."""
    m, n = matrix.shape
    charge(4.0 * m * n * n, "flop")
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    k = min(k, len(s))
    return (u[:, :k] * s[:k]) @ vt[:k, :]


def subspace_rank_k(matrix: np.ndarray, k: int, iterations: int = 8) -> np.ndarray:
    """Block orthogonal iteration for the leading k-dimensional subspace."""
    m, n = matrix.shape
    k = min(k, n)
    rng = np.random.default_rng(42)
    basis = rng.normal(size=(n, k))
    basis, _ = np.linalg.qr(basis)
    for _ in range(max(1, iterations)):
        # One multiplication by A and one by A^T per sweep.
        projected = matrix @ basis            # m x k
        basis, _ = np.linalg.qr(matrix.T @ projected)  # n x k
        charge(2.0 * m * n * k + 2.0 * n * k * k, "flop")
    projected = matrix @ basis
    # Small SVD of the projected m x k matrix recovers singular values/vectors.
    u_small, s, w_t = np.linalg.svd(projected, full_matrices=False)
    charge(4.0 * m * k * k, "flop")
    v = basis @ w_t.T
    return (u_small * s) @ v.T


def power_rank_k(matrix: np.ndarray, k: int, iterations: int = 12) -> np.ndarray:
    """Power iteration with deflation, extracting one triplet at a time."""
    m, n = matrix.shape
    k = min(k, n)
    rng = np.random.default_rng(7)
    residual = matrix.astype(float).copy()
    approximation = np.zeros_like(matrix, dtype=float)
    for _ in range(k):
        v = rng.normal(size=n)
        v /= np.linalg.norm(v) + 1e-30
        for _ in range(max(1, iterations)):
            u = residual @ v
            sigma_u = np.linalg.norm(u)
            if sigma_u <= 1e-30:
                break
            u /= sigma_u
            v = residual.T @ u
            sigma = np.linalg.norm(v)
            if sigma <= 1e-30:
                break
            v /= sigma
            charge(4.0 * m * n, "flop")
        sigma = float(u @ residual @ v) if sigma_u > 1e-30 else 0.0
        component = sigma * np.outer(u, v)
        approximation += component
        residual -= component
        charge(2.0 * m * n, "flop")
    return approximation


TECHNIQUES = {
    "exact": exact_rank_k,
    "subspace": subspace_rank_k,
    "power": power_rank_k,
}


def rank_k_approximation(
    matrix: np.ndarray, k: int, technique: str, iterations: int = 8
) -> np.ndarray:
    """Dispatch to the configured technique.

    Raises:
        ValueError: for an unknown technique name or non-positive ``k``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    if technique == "exact":
        return exact_rank_k(matrix, k)
    if technique == "subspace":
        return subspace_rank_k(matrix, k, iterations=iterations)
    if technique == "power":
        return power_rank_k(matrix, k, iterations=iterations)
    raise ValueError(f"unknown SVD technique {technique!r}")


def reconstruction_accuracy(matrix: np.ndarray, approximation: np.ndarray) -> float:
    """The paper's accuracy metric: log10(RMS(A - 0) / RMS(A - A_k)).

    A value of 0.7 (the paper's threshold) means the approximation error is
    roughly 5x smaller than the trivial zero-matrix guess.
    """
    initial_error = float(np.sqrt(np.mean(matrix ** 2)))
    output_error = float(np.sqrt(np.mean((matrix - approximation) ** 2)))
    return float(np.log10((initial_error + 1e-300) / (output_error + 1e-300)))
