"""The SVD benchmark: input type, configuration space, program.

The configuration chooses the number of singular values kept (as a fraction
of the smaller matrix dimension), the technique used to compute them, and the
iteration budget of the iterative techniques.  Accuracy is
``log10(RMS(A) / RMS(A - A_k))`` with the paper's threshold of 0.7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.benchmarks_suite.base import Benchmark, InputGenerator
from repro.lang.accuracy import AccuracyMetric, AccuracyRequirement
from repro.lang.config import (
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    FloatParameter,
    IntegerParameter,
)
from repro.lang.program import PetaBricksProgram

#: Accuracy threshold from the paper.
ACCURACY_THRESHOLD = 0.7


@dataclass
class SVDInput:
    """An SVD problem instance (the matrix to approximate)."""

    matrix: np.ndarray

    def __len__(self) -> int:
        return int(self.matrix.size)


def build_config_space() -> ConfigurationSpace:
    """Configuration space: rank fraction, technique, iteration budget."""
    space = ConfigurationSpace()
    space.add(FloatParameter("rank_fraction", 0.05, 1.0))
    space.add(CategoricalParameter("technique", ["exact", "subspace", "power"]))
    space.add(IntegerParameter("iterations", 2, 20))
    return space


def run_svd(config: Configuration, problem: SVDInput) -> np.ndarray:
    """Compute the configured rank-k approximation of the input matrix."""
    from repro.benchmarks_suite.svd import algorithms

    matrix = np.asarray(problem.matrix, dtype=float)
    max_rank = min(matrix.shape)
    k = max(1, int(round(float(config["rank_fraction"]) * max_rank)))
    return algorithms.rank_k_approximation(
        matrix, k=k, technique=config["technique"], iterations=int(config["iterations"])
    )


def svd_accuracy(problem: SVDInput, approximation: np.ndarray) -> float:
    """Log ratio of initial-guess RMS error to output RMS error."""
    from repro.benchmarks_suite.svd import algorithms

    return algorithms.reconstruction_accuracy(
        np.asarray(problem.matrix, dtype=float), approximation
    )


class SVDBenchmark(Benchmark):
    """The paper's SVD benchmark (variable accuracy)."""

    name = "svd"

    def build_program(self) -> PetaBricksProgram:
        from repro.benchmarks_suite.svd import features

        return PetaBricksProgram(
            name=self.name,
            config_space=build_config_space(),
            run_func=run_svd,
            features=features.build_feature_set(),
            accuracy_metric=AccuracyMetric("log_rms_ratio", svd_accuracy),
            accuracy_requirement=AccuracyRequirement(
                accuracy_threshold=ACCURACY_THRESHOLD, satisfaction_threshold=0.95
            ),
        )

    def input_generators(self) -> Dict[str, InputGenerator]:
        from repro.benchmarks_suite.svd import generators

        return {
            "synthetic": InputGenerator(
                name="synthetic",
                description="matrices with low-rank, decaying, flat, and sparse spectra",
                item=generators.synthetic_item,
            ),
        }
