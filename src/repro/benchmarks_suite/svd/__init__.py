"""The Singular Value Decomposition benchmark (paper Section 4.1, "SVD").

Approximates a matrix by a rank-k truncated SVD.  The algorithmic choices are
the number of singular values retained and the technique used to find them
(exact dense SVD, subspace iteration, or power-iteration deflation); accuracy
is the log of the ratio between the RMS error of the zero-matrix initial
guess and the RMS error of the output (threshold 0.7).
"""

from repro.benchmarks_suite.svd.benchmark import SVDBenchmark, SVDInput

__all__ = ["SVDBenchmark", "SVDInput"]
