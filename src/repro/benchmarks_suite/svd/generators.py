"""Input generators for the SVD benchmark.

Matrices with different effective ranks, so different configurations (small
vs. large ``k``, iterative vs. exact technique) win on different inputs:

* **low rank** -- a handful of dominant singular values plus tiny noise;
  a small ``k`` with a cheap iterative technique already meets the accuracy
  target.
* **decaying spectrum** -- power-law singular values; a moderate ``k`` is
  needed.
* **full rank noise** -- flat spectrum; only a large ``k`` (or the exact
  technique) reaches the target.
* **sparse** -- mostly-zero matrices, whose zero count is the cheap proxy
  feature the paper mentions.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.benchmarks_suite.svd.benchmark import SVDInput
from repro.core.inputs import per_index_rng

#: Matrix dimensions; modest so the experiment matrix stays fast.
MIN_ROWS, MAX_ROWS = 24, 64
MIN_COLS, MAX_COLS = 16, 40


def _shape(rng: np.random.Generator):
    m = int(rng.integers(MIN_ROWS, MAX_ROWS + 1))
    n = int(rng.integers(MIN_COLS, min(m, MAX_COLS) + 1))
    return m, n


def _matrix_from_spectrum(rng: np.random.Generator, singular_values: np.ndarray, m: int, n: int) -> np.ndarray:
    """Build a matrix with a prescribed singular spectrum."""
    k = len(singular_values)
    u, _ = np.linalg.qr(rng.normal(size=(m, k)))
    v, _ = np.linalg.qr(rng.normal(size=(n, k)))
    return (u * singular_values) @ v.T


def low_rank(rng: np.random.Generator) -> SVDInput:
    """2-5 dominant singular values, everything else negligible.

    A fraction of the smallest entries is truncated to exactly zero, which
    keeps the matrix approximately low rank while making the cheap ``zeros``
    feature correlate with the effective rank -- the indirect relationship
    the paper points out ("a matrix with many 0s has fewer eigenvalues").
    """
    m, n = _shape(rng)
    effective_rank = int(rng.integers(2, 6))
    spectrum = np.concatenate(
        [
            rng.uniform(5.0, 10.0, size=effective_rank),
            rng.uniform(0.0, 0.02, size=n - effective_rank),
        ]
    )
    matrix = _matrix_from_spectrum(rng, np.sort(spectrum)[::-1], m, n)
    threshold = np.quantile(np.abs(matrix), float(rng.uniform(0.2, 0.5)))
    matrix[np.abs(matrix) < threshold] = 0.0
    return SVDInput(matrix=matrix)


def decaying_spectrum(rng: np.random.Generator) -> SVDInput:
    """Power-law decaying singular values."""
    m, n = _shape(rng)
    exponent = float(rng.uniform(0.8, 2.0))
    spectrum = 10.0 / np.power(np.arange(1, n + 1), exponent)
    return SVDInput(matrix=_matrix_from_spectrum(rng, spectrum, m, n))


def full_rank_noise(rng: np.random.Generator) -> SVDInput:
    """Dense Gaussian noise: a nearly flat spectrum."""
    m, n = _shape(rng)
    return SVDInput(matrix=rng.normal(0.0, 1.0, size=(m, n)))


def sparse_matrix(rng: np.random.Generator) -> SVDInput:
    """Mostly zeros with a few dense rows/columns (low effective rank)."""
    m, n = _shape(rng)
    matrix = np.zeros((m, n))
    n_dense = int(rng.integers(2, 6))
    for _ in range(n_dense):
        row = rng.normal(0.0, 3.0, size=n)
        col = rng.normal(0.0, 1.0, size=m)
        matrix += np.outer(col, row) * (rng.random((m, n)) < 0.3)
    return SVDInput(matrix=matrix)


SYNTHETIC_FAMILIES = [low_rank, decaying_spectrum, full_rank_noise, sparse_matrix]


def synthetic_item(index: int, seed: int = 0) -> SVDInput:
    """Input ``index`` of the SVD population (pure in (index, seed))."""
    rng = per_index_rng(seed, index, "svd", "synthetic")
    family = SYNTHETIC_FAMILIES[index % len(SYNTHETIC_FAMILIES)]
    return family(rng)


def generate_synthetic(n: int, seed: int = 0) -> List[SVDInput]:
    """The SVD input population used in Table 1."""
    return [synthetic_item(i, seed) for i in range(n)]
