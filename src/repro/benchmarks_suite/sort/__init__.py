"""The Sort benchmark (paper Section 4.1, "Sort").

A list of doubles is sorted by a polyalgorithm assembled from InsertionSort,
QuickSort, MergeSort (with a tunable number of ways), RadixSort, and
BitonicSort.  Sort is the paper's only fixed-accuracy benchmark; input
sensitivity comes from algorithms having fast and slow input classes
(QuickSort has pathological cases, InsertionSort excels on mostly-sorted
lists, RadixSort likes narrow key ranges).
"""

from repro.benchmarks_suite.sort.benchmark import SortBenchmark

__all__ = ["SortBenchmark"]
