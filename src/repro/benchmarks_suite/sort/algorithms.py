"""Sorting algorithms for the Sort benchmark.

Each algorithm really sorts (every function returns a correctly sorted copy
of its input) and charges its abstract operation count to the ambient cost
counter, so "execution time" reflects the algorithm's true asymptotic and
input-dependent behaviour:

* **insertion sort** -- cost ``n + #inversions-ish``: linear on almost-sorted
  data, quadratic on reversed data.  Implemented as binary-insertion sort
  (the comparisons are binary-search comparisons, the dominant cost is the
  element movement), which keeps wall-clock manageable while charging the
  classical movement cost.
* **quick sort** -- three-way partitioning with a configurable pivot rule.
  The ``first`` pivot rule degrades on already-sorted data (partitions shrink
  by a constant), the ``random``/``median3`` rules behave like classical
  introsort.
* **merge sort** -- tunable number of ways; cost ``n * log_k(n)`` merges.
* **radix sort** -- LSD radix over a quantized key space; cost
  ``n * #digits``, so narrow-range/duplicate-heavy inputs are cheap.
* **bitonic sort** -- full compare-exchange network; cost
  ``n * log^2(n)``, independent of the data.

The recursive algorithms do not recurse into themselves directly: they call
back into the polyalgorithm dispatcher supplied by the benchmark driver, so a
selector such as "MergeSort above 1420, QuickSort above 600, InsertionSort
below" (the paper's Figure 2) is exercised exactly as described.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.lang.cost import charge

#: The dispatcher signature: sort a (sub)array by consulting the selector.
Dispatcher = Callable[[np.ndarray, int], np.ndarray]

#: Depth guard: beyond this recursion depth the dispatcher forces a terminal
#: algorithm.  This mirrors introsort-style guards in production sorts and
#: keeps pathological quicksort configurations from overflowing the stack,
#: while still charging them a heavy cost.
MAX_RECURSION_DEPTH = 64


def insertion_sort(data: np.ndarray) -> np.ndarray:
    """Insertion sort with the classical linear-scan cost profile.

    The implementation locates each insertion point with a vectorized search
    (so wall-clock stays reasonable) but charges the cost of the textbook
    algorithm: one comparison per element scanned while walking left from the
    end of the sorted prefix plus one move per shifted element.  Total cost is
    ``Theta(n + #inversions)`` -- essentially linear on almost-sorted inputs
    and quadratic on adversarial ones, exactly the profile the paper exploits.
    """
    result = np.empty_like(data)
    count = len(data)
    moves = 0.0
    comparisons = 0.0
    for i in range(count):
        value = data[i]
        position = int(np.searchsorted(result[:i], value, side="right"))
        shift = i - position
        comparisons += shift + 1
        if shift > 0:
            result[position + 1 : i + 1] = result[position:i]
            moves += shift
        result[position] = value
        moves += 1
    charge(comparisons, "compare")
    charge(moves, "move")
    return result


def quick_sort(
    data: np.ndarray,
    dispatch: Dispatcher,
    depth: int,
    pivot_rule: str = "first",
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Three-way-partition quicksort that recurses through the dispatcher.

    Args:
        data: the (sub)array to sort.
        dispatch: the polyalgorithm dispatcher; sub-partitions are handed
            back to it so the selector decides how they are sorted.
        depth: current recursion depth (forwarded to the dispatcher).
        pivot_rule: ``"first"`` (classical, pathological on sorted data),
            ``"median3"`` or ``"random"``.
        rng: random generator used by the ``"random"`` pivot rule.
    """
    count = len(data)
    if count <= 1:
        return data.copy()

    pivot = _choose_pivot(data, pivot_rule, rng)
    charge(count, "compare")  # one pass to partition
    less = data[data < pivot]
    equal = data[data == pivot]
    greater = data[data > pivot]
    charge(count, "move")

    sorted_less = dispatch(less, depth + 1)
    sorted_greater = dispatch(greater, depth + 1)
    charge(count, "move")  # concatenation writes every element once
    return np.concatenate([sorted_less, equal, sorted_greater])


def _choose_pivot(
    data: np.ndarray, pivot_rule: str, rng: Optional[np.random.Generator]
) -> float:
    if pivot_rule == "first":
        return float(data[0])
    if pivot_rule == "median3":
        candidates = [data[0], data[len(data) // 2], data[-1]]
        charge(3, "compare")
        return float(np.median(candidates))
    if pivot_rule == "random":
        generator = rng if rng is not None else np.random.default_rng(0)
        return float(data[int(generator.integers(len(data)))])
    raise ValueError(f"unknown pivot rule {pivot_rule!r}")


def merge_sort(
    data: np.ndarray,
    dispatch: Dispatcher,
    depth: int,
    ways: int = 2,
) -> np.ndarray:
    """K-way merge sort that recurses through the dispatcher.

    The input is split into ``ways`` nearly equal chunks, each chunk is
    sorted by the dispatcher (so smaller chunks may fall to quicksort or
    insertion sort, per the selector), and the sorted chunks are merged
    pairwise.  Each merge of ``m`` elements charges ``m`` comparisons and
    ``m`` moves.
    """
    count = len(data)
    if count <= 1:
        return data.copy()
    ways = max(2, min(int(ways), count))

    boundaries = np.linspace(0, count, ways + 1, dtype=int)
    chunks = [
        dispatch(data[start:end], depth + 1)
        for start, end in zip(boundaries[:-1], boundaries[1:])
        if end > start
    ]

    while len(chunks) > 1:
        merged = []
        for i in range(0, len(chunks) - 1, 2):
            merged.append(_merge_two(chunks[i], chunks[i + 1]))
        if len(chunks) % 2 == 1:
            merged.append(chunks[-1])
        chunks = merged
    return chunks[0]


def _merge_two(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Merge two sorted arrays (vectorized textbook merge)."""
    total = len(left) + len(right)
    if len(left) == 0:
        return right.copy()
    if len(right) == 0:
        return left.copy()
    charge(total, "compare")
    charge(total, "move")
    result = np.empty(total, dtype=left.dtype)
    # Destination positions follow from counting, for each element, how many
    # elements of the other run precede it.
    left_positions = np.arange(len(left)) + np.searchsorted(right, left, side="left")
    right_positions = np.arange(len(right)) + np.searchsorted(left, right, side="right")
    result[left_positions] = left
    result[right_positions] = right
    return result


#: Quantization grid used to derive radix keys from floating-point values.
RADIX_GRID_BITS = 16


def radix_sort(data: np.ndarray, bits_per_pass: int = 8) -> np.ndarray:
    """LSD radix sort on value-quantized keys, with an insertion cleanup pass.

    Keys are obtained by quantizing the values onto a 2^16 grid spanning the
    input's range; only as many radix passes as the *occupied* key bits
    require are run, so narrow-range and duplicate-heavy inputs (few distinct
    quantized keys) are sorted in one or two cheap passes while wide random
    data needs the full complement.  Each pass charges a scatter over the
    data plus the histogram of its digit space; distinct values that collide
    on the grid are put in order by a final insertion-style cleanup pass
    whose cost is charged through :func:`insertion_sort`'s accounting.
    """
    count = len(data)
    if count <= 1:
        return data.copy()
    bits_per_pass = max(1, min(int(bits_per_pass), RADIX_GRID_BITS))

    low = float(np.min(data))
    high = float(np.max(data))
    charge(2.0 * count, "quantize")
    if high <= low:
        return data.copy()
    grid = (1 << RADIX_GRID_BITS) - 1
    quantized = ((data - low) / (high - low) * grid).astype(np.int64)
    # Dictionary-encode the quantized values so the radix passes only need to
    # cover the bits of the *occupied* key space (one hashing pass, charged
    # linearly); duplicate-heavy and narrow-range inputs therefore need fewer
    # passes, which is the input-sensitive behaviour the benchmark exploits.
    distinct_keys, keys = np.unique(quantized, return_inverse=True)
    charge(2.0 * count, "dictionary")
    key_bits = max(1, int(math.ceil(math.log2(max(len(distinct_keys), 2)))))
    passes = max(1, int(math.ceil(key_bits / bits_per_pass)))

    indices = np.arange(count)
    mask = (1 << bits_per_pass) - 1
    for pass_index in range(passes):
        digits = (keys >> (pass_index * bits_per_pass)) & mask
        stable_order = np.argsort(digits, kind="stable")
        keys = keys[stable_order]
        indices = indices[stable_order]
        charge(2.0 * count + float(1 << bits_per_pass), "bucket")
    nearly_sorted = data[indices]
    # Values that share a quantized key are still unordered among themselves;
    # a linear-scan insertion pass fixes them at (charged) cost proportional
    # to the remaining disorder, which is tiny for well-spread data.
    return insertion_sort(nearly_sorted)


def bitonic_sort(data: np.ndarray) -> np.ndarray:
    """Bitonic sorting network on the next power-of-two size.

    Charges the full ``n/2 * log^2(n)`` compare-exchange cost of the network
    (padding with +inf sentinels), making it the most expensive choice for
    large inputs but competitive for tiny ones -- matching its role in the
    paper's selector spaces.
    """
    count = len(data)
    if count <= 1:
        return data.copy()
    size = 1 << int(math.ceil(math.log2(count)))
    padded = np.full(size, np.inf, dtype=float)
    padded[:count] = data

    stages = int(math.log2(size))
    for stage in range(1, stages + 1):
        for substage in range(stage, 0, -1):
            distance = 1 << (substage - 1)
            indices = np.arange(size)
            partners = indices ^ distance
            active = partners > indices
            ascending = ((indices >> stage) & 1) == 0
            left = indices[active]
            right = partners[active]
            keep_ascending = ascending[active]
            a = padded[left]
            b = padded[right]
            swap = np.where(keep_ascending, a > b, a < b)
            new_a = np.where(swap, b, a)
            new_b = np.where(swap, a, b)
            padded[left] = new_a
            padded[right] = new_b
            charge(size / 2, "compare_exchange")
    return padded[:count]


def is_sorted(data: np.ndarray) -> bool:
    """Check a sort output (used by tests and the benchmark's sanity layer)."""
    return bool(np.all(data[:-1] <= data[1:])) if len(data) > 1 else True
