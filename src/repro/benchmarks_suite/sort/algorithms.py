"""Sorting algorithms for the Sort benchmark.

Each algorithm really sorts (every function returns a correctly sorted copy
of its input) and charges its abstract operation count to the ambient cost
counter, so "execution time" reflects the algorithm's true asymptotic and
input-dependent behaviour:

* **insertion sort** -- cost ``n + #inversions-ish``: linear on almost-sorted
  data, quadratic on reversed data.  Implemented as binary-insertion sort
  (the comparisons are binary-search comparisons, the dominant cost is the
  element movement), which keeps wall-clock manageable while charging the
  classical movement cost.
* **quick sort** -- three-way partitioning with a configurable pivot rule.
  The ``first`` pivot rule degrades on already-sorted data (partitions shrink
  by a constant), the ``random``/``median3`` rules behave like classical
  introsort.
* **merge sort** -- tunable number of ways; cost ``n * log_k(n)`` merges.
* **radix sort** -- LSD radix over a quantized key space; cost
  ``n * #digits``, so narrow-range/duplicate-heavy inputs are cheap.
* **bitonic sort** -- full compare-exchange network; cost
  ``n * log^2(n)``, independent of the data.

The recursive algorithms do not recurse into themselves directly: they call
back into the polyalgorithm dispatcher supplied by the benchmark driver, so a
selector such as "MergeSort above 1420, QuickSort above 600, InsertionSort
below" (the paper's Figure 2) is exercised exactly as described.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.lang.cost import charge

#: The dispatcher signature: sort a (sub)array by consulting the selector.
Dispatcher = Callable[[np.ndarray, int], np.ndarray]

#: Depth guard: beyond this recursion depth the dispatcher forces a terminal
#: algorithm.  This mirrors introsort-style guards in production sorts and
#: keeps pathological quicksort configurations from overflowing the stack,
#: while still charging them a heavy cost.
MAX_RECURSION_DEPTH = 64


#: Leaf-block width for the blocked inversion count.  Within a block the
#: count is an O(block^2) boolean broadcast; across blocks it is a merge-style
#: sorted/searchsorted pass, so the Python-loop iteration count is O(n/block)
#: instead of the O(n) per-element loop of the textbook implementation.
_INVERSION_BLOCK = 128


def _count_inversions(values: np.ndarray) -> int:
    """Exact number of pairs ``i < j`` with ``values[i] > values[j]``.

    This is precisely the total shift distance of textbook insertion sort, so
    charging ``inversions + n`` reproduces the scalar loop's accounting
    bit-for-bit (both quantities are integers, and integer-valued float sums
    are order-independent below 2**53).
    """
    count = int(values.size)
    if count < 2:
        return 0
    total = 0
    block = _INVERSION_BLOCK
    for start in range(0, count, block):
        sub = values[start : start + block]
        if sub.size > 1:
            pairwise = sub[:, None] > sub[None, :]
            total += int(np.count_nonzero(pairwise & _triu_mask(sub.size)))
    width = block
    while width < count:
        for start in range(0, count, 2 * width):
            mid = start + width
            if mid >= count:
                continue
            left = values[start:mid]
            right = values[mid : min(start + 2 * width, count)]
            ranks = np.searchsorted(np.sort(left), right, side="right")
            total += int(left.size * right.size - int(ranks.sum()))
        width *= 2
    return total


#: Strict upper-triangle masks per leaf-block size (at most ``_INVERSION_BLOCK``
#: entries), so the leaf count avoids an ``np.triu`` allocation per block.
_TRIU_MASKS: dict = {}


def _triu_mask(size: int) -> np.ndarray:
    mask = _TRIU_MASKS.get(size)
    if mask is None:
        mask = np.triu(np.ones((size, size), dtype=bool), k=1)
        _TRIU_MASKS[size] = mask
    return mask


def _insertion_sort_scalar(data: np.ndarray) -> np.ndarray:
    """The per-element reference implementation (kept for parity tests and
    as the fallback for data the vectorized order statistics cannot handle)."""
    result = np.empty_like(data)
    count = len(data)
    moves = 0.0
    comparisons = 0.0
    for i in range(count):
        value = data[i]
        position = int(np.searchsorted(result[:i], value, side="right"))
        shift = i - position
        comparisons += shift + 1
        if shift > 0:
            result[position + 1 : i + 1] = result[position:i]
            moves += shift
        result[position] = value
        moves += 1
    charge(comparisons, "compare")
    charge(moves, "move")
    return result


def insertion_sort(data: np.ndarray) -> np.ndarray:
    """Insertion sort with the classical linear-scan cost profile.

    The implementation is fully vectorized -- the output is the stable sort
    of the input (exactly what stable per-element insertion produces) and the
    charge is the textbook algorithm's: one comparison per element scanned
    while walking left from the end of the sorted prefix plus one move per
    shifted element, i.e. ``inversions + n`` of each.  Total cost is
    ``Theta(n + #inversions)`` -- essentially linear on almost-sorted inputs
    and quadratic on adversarial ones, exactly the profile the paper exploits.
    """
    data = np.asarray(data)
    count = len(data)
    if count and data.dtype.kind == "f" and bool(np.isnan(data).any()):
        # NaNs break searchsorted/sort agreement; take the reference path.
        return _insertion_sort_scalar(data)
    inversions = _count_inversions(data)
    charge(float(inversions + count), "compare")
    charge(float(inversions + count), "move")
    return np.sort(data, kind="stable")


def quick_sort(
    data: np.ndarray,
    dispatch: Dispatcher,
    depth: int,
    pivot_rule: str = "first",
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Three-way-partition quicksort that recurses through the dispatcher.

    Args:
        data: the (sub)array to sort.
        dispatch: the polyalgorithm dispatcher; sub-partitions are handed
            back to it so the selector decides how they are sorted.
        depth: current recursion depth (forwarded to the dispatcher).
        pivot_rule: ``"first"`` (classical, pathological on sorted data),
            ``"median3"`` or ``"random"``.
        rng: random generator used by the ``"random"`` pivot rule.
    """
    count = len(data)
    if count <= 1:
        return data.copy()

    pivot = _choose_pivot(data, pivot_rule, rng)
    charge(count, "compare")  # one pass to partition
    less = data[data < pivot]
    equal = data[data == pivot]
    greater = data[data > pivot]

    sorted_less = dispatch(less, depth + 1)
    sorted_greater = dispatch(greater, depth + 1)
    # One move per element for the partition pass plus one for the final
    # concatenation; the merged charge equals the two separate ones exactly.
    charge(2.0 * count, "move")
    return np.concatenate([sorted_less, equal, sorted_greater])


def _choose_pivot(
    data: np.ndarray, pivot_rule: str, rng: Optional[np.random.Generator]
) -> float:
    if pivot_rule == "first":
        return float(data[0])
    if pivot_rule == "median3":
        first, middle, last = data[0], data[len(data) // 2], data[-1]
        charge(3, "compare")
        if first != first or middle != middle or last != last:
            # NaN candidates: defer to np.median's NaN-sorts-last semantics.
            return float(np.median([first, middle, last]))
        # Middle of three by direct comparison -- the same value np.median
        # returns for three finite elements, without the sort machinery.
        return float(max(min(first, middle), min(max(first, middle), last)))
    if pivot_rule == "random":
        generator = rng if rng is not None else np.random.default_rng(0)
        return float(data[int(generator.integers(len(data)))])
    raise ValueError(f"unknown pivot rule {pivot_rule!r}")


def merge_sort(
    data: np.ndarray,
    dispatch: Dispatcher,
    depth: int,
    ways: int = 2,
) -> np.ndarray:
    """K-way merge sort that recurses through the dispatcher.

    The input is split into ``ways`` nearly equal chunks, each chunk is
    sorted by the dispatcher (so smaller chunks may fall to quicksort or
    insertion sort, per the selector), and the sorted chunks are merged
    pairwise.  Each merge of ``m`` elements charges ``m`` comparisons and
    ``m`` moves.
    """
    count = len(data)
    if count <= 1:
        return data.copy()
    ways = max(2, min(int(ways), count))

    boundaries = _merge_boundaries(count, ways)
    chunks = [
        dispatch(data[start:end], depth + 1)
        for start, end in zip(boundaries[:-1], boundaries[1:])
        if end > start
    ]

    while len(chunks) > 1:
        merged = []
        for i in range(0, len(chunks) - 1, 2):
            merged.append(_merge_two(chunks[i], chunks[i + 1]))
        if len(chunks) % 2 == 1:
            merged.append(chunks[-1])
        chunks = merged
    return chunks[0]


#: Memoized merge-subtree plans, keyed by ``(size, ways, rules, fallback,
#: depth)``.  See :func:`merge_sort_collapsed`.
_MERGE_PLANS: dict = {}
_MERGE_PLAN_CAP = 8192
_PLAN_MISSING = object()


def merge_sort_collapsed(
    data: np.ndarray, depth: int, ways: int, rules: tuple, fallback: str
):
    """Run a merge-sort subtree in one shot when its shape is size-determined.

    A merge-sort call whose entire recursion (under the selector ``rules``)
    consists of ``merge_sort`` nodes and ``insertion_sort`` leaves has a
    shape that depends only on segment *sizes*, never on the data: the chunk
    boundaries are deterministic, every merge of ``m`` elements charges ``m``
    compares and ``m`` moves, each insertion leaf of ``n`` elements charges
    ``inversions + n`` of each, and the final output is the stable sort of
    the segment (a merge of stable sorts *is* the stable sort).  So instead
    of recursing we simulate the tree once per ``(size, ways, rules,
    fallback, depth)`` key, then per call: count inversions leaf by leaf,
    issue two aggregate charges (integer-valued, hence order-independent and
    bit-identical to the incremental accounting), and stable-sort the whole
    segment once -- replacing the O(n log^2 n) re-sorting of every merge
    level with a single O(n log n) sort.

    Returns the sorted segment, or ``None`` when the subtree would touch a
    data-dependent algorithm (quick/radix/bitonic) or the data contains NaNs
    (whose scalar fallbacks the collapse cannot reproduce); the caller then
    runs the ordinary recursion.
    """
    count = len(data)
    if count <= 1:
        return data.copy()
    if data.dtype.kind == "f" and bool(np.isnan(data).any()):
        return None
    key = (count, ways, rules, fallback, depth)
    plan = _MERGE_PLANS.get(key, _PLAN_MISSING)
    if plan is _PLAN_MISSING:
        leaves: list = []
        charges = [0, 0]  # [merge/insertion compare+move, bitonic exchanges]
        ok = _simulate_merge_subtree(
            count, depth, 0, ways, rules, fallback, leaves, charges
        )
        plan = (tuple(leaves), charges[0], charges[1]) if ok else None
        if len(_MERGE_PLANS) >= _MERGE_PLAN_CAP:
            _MERGE_PLANS.clear()
        _MERGE_PLANS[key] = plan
    if plan is None:
        return None
    leaf_slices, merge_charge, bitonic_charge = plan
    if bitonic_charge and bool((np.signbit(data) & (data == 0.0)).any()):
        # Bitonic leaves require the negative-zero-free guarantee of the
        # bitonic fast path; mixed-sign zeros take the real recursion.
        return None
    total = merge_charge
    for start, end in leaf_slices:
        total += _count_inversions(data[start:end]) + (end - start)
    charge(float(total), "compare")
    charge(float(total), "move")
    if bitonic_charge:
        charge(float(bitonic_charge), "compare_exchange")
    return np.sort(data, kind="stable")


def _simulate_merge_subtree(
    size: int,
    depth: int,
    offset: int,
    ways_param: int,
    rules: tuple,
    fallback: str,
    leaves: list,
    charges: list,
) -> bool:
    """Walk the dispatcher's recursion on sizes alone.  Appends insertion
    leaves as ``(start, end)`` offsets into the original segment, accumulates
    ``charges[0]`` (merge compare/move) and ``charges[1]`` (bitonic
    compare-exchanges, data-independent by construction), and returns False
    if any node would pick a data-dependent algorithm."""
    if size <= 1:
        return True
    choice = fallback
    for cutoff, name in rules:
        if size < cutoff:
            choice = name
            break
    if depth >= MAX_RECURSION_DEPTH:
        choice = "insertion_sort"
    if choice == "insertion_sort":
        leaves.append((offset, offset + size))
        return True
    if choice == "bitonic_sort":
        padded = 1 << int(math.ceil(math.log2(size)))
        stages = int(math.log2(padded))
        charges[1] += (stages * (stages + 1) // 2) * (padded // 2)
        return True
    if choice != "merge_sort":
        return False
    ways = max(2, min(int(ways_param), size))
    boundaries = _merge_boundaries(size, ways)
    sizes = []
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        if end > start:
            if not _simulate_merge_subtree(
                end - start, depth + 1, offset + start, ways_param, rules,
                fallback, leaves, charges,
            ):
                return False
            sizes.append(int(end - start))
    while len(sizes) > 1:
        merged_sizes = []
        for i in range(0, len(sizes) - 1, 2):
            pair = sizes[i] + sizes[i + 1]
            charges[0] += pair
            merged_sizes.append(pair)
        if len(sizes) % 2 == 1:
            merged_sizes.append(sizes[-1])
        sizes = merged_sizes
    return True


#: Memoized chunk boundaries for :func:`merge_sort`, keyed by
#: ``(count, ways)``.  The same segment sizes recur across tens of thousands
#: of recursive calls, so the ``np.linspace`` is paid once per distinct size.
_MERGE_BOUNDS: dict = {}
_MERGE_BOUNDS_CAP = 4096


def _merge_boundaries(count: int, ways: int) -> np.ndarray:
    key = (count, ways)
    bounds = _MERGE_BOUNDS.get(key)
    if bounds is None:
        bounds = np.linspace(0, count, ways + 1, dtype=int)
        if len(_MERGE_BOUNDS) >= _MERGE_BOUNDS_CAP:
            _MERGE_BOUNDS.clear()
        _MERGE_BOUNDS[key] = bounds
    return bounds


def _merge_two(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Merge two sorted arrays (vectorized textbook merge)."""
    total = len(left) + len(right)
    if len(left) == 0:
        return right.copy()
    if len(right) == 0:
        return left.copy()
    charge(total, "compare")
    charge(total, "move")
    # A stable sort of the concatenation IS the stable merge: left elements
    # precede equal right elements and each run's internal order is kept --
    # identical output to the positional searchsorted merge, one kernel call.
    return np.sort(np.concatenate([left, right]), kind="stable")


#: Quantization grid used to derive radix keys from floating-point values.
RADIX_GRID_BITS = 16


def radix_sort(data: np.ndarray, bits_per_pass: int = 8) -> np.ndarray:
    """LSD radix sort on value-quantized keys, with an insertion cleanup pass.

    Keys are obtained by quantizing the values onto a 2^16 grid spanning the
    input's range; only as many radix passes as the *occupied* key bits
    require are run, so narrow-range and duplicate-heavy inputs (few distinct
    quantized keys) are sorted in one or two cheap passes while wide random
    data needs the full complement.  Each pass charges a scatter over the
    data plus the histogram of its digit space; distinct values that collide
    on the grid are put in order by a final insertion-style cleanup pass
    whose cost is charged through :func:`insertion_sort`'s accounting.
    """
    count = len(data)
    if count <= 1:
        return data.copy()
    bits_per_pass = max(1, min(int(bits_per_pass), RADIX_GRID_BITS))

    low = float(np.min(data))
    high = float(np.max(data))
    charge(2.0 * count, "quantize")
    if high <= low:
        return data.copy()
    grid = (1 << RADIX_GRID_BITS) - 1
    quantized = ((data - low) / (high - low) * grid).astype(np.int64)
    # Dictionary-encoding the quantized values lets the radix passes cover
    # only the bits of the *occupied* key space (one hashing pass, charged
    # linearly); duplicate-heavy and narrow-range inputs therefore need fewer
    # passes, which is the input-sensitive behaviour the benchmark exploits.
    # The dense rank codes order exactly like the quantized values, and LSD
    # radix with stable per-digit passes computes exactly the stable sort
    # permutation of those codes -- so one stable argsort of the quantized
    # keys replaces dictionary construction and pass loop alike, and the
    # distinct-key count falls out of the sorted keys.  The per-pass charge
    # is data-independent (2n + digit-space histogram), so the aggregate
    # equals the incremental sum bit-for-bit (integer-valued floats).
    charge(2.0 * count, "dictionary")
    indices = np.argsort(quantized, kind="stable")
    sorted_keys = quantized[indices]
    n_distinct = 1 + int(np.count_nonzero(sorted_keys[1:] != sorted_keys[:-1]))
    key_bits = max(1, int(math.ceil(math.log2(max(n_distinct, 2)))))
    passes = max(1, int(math.ceil(key_bits / bits_per_pass)))
    charge(passes * (2.0 * count + float(1 << bits_per_pass)), "bucket")
    nearly_sorted = data[indices]
    # Values that share a quantized key are still unordered among themselves;
    # a linear-scan insertion pass fixes them at (charged) cost proportional
    # to the remaining disorder, which is tiny for well-spread data.
    return insertion_sort(nearly_sorted)


def bitonic_sort(data: np.ndarray) -> np.ndarray:
    """Bitonic sorting network on the next power-of-two size.

    Charges the full ``n/2 * log^2(n)`` compare-exchange cost of the network
    (padding with +inf sentinels), making it the most expensive choice for
    large inputs but competitive for tiny ones -- matching its role in the
    paper's selector spaces.
    """
    count = len(data)
    if count <= 1:
        return data.copy()
    size = 1 << int(math.ceil(math.log2(count)))
    values = np.asarray(data, dtype=float)
    if not (
        bool(np.isnan(values).any())
        or (
            bool((values == 0.0).any())
            and bool((np.signbit(values) & (values == 0.0)).any())
        )
    ):
        # Fast path: on NaN-free data with no negative zeros the network's
        # output is exactly ``np.sort`` (equal values then have identical bit
        # patterns, so the network's unstable exchanges are unobservable), and
        # its charge is data-independent: substages * size/2 compare-exchanges.
        # size/2 is a power of two, so the single product equals the sum of
        # the per-substage charges bit-for-bit.
        stages = int(math.log2(size))
        charge((stages * (stages + 1) // 2) * (size / 2), "compare_exchange")
        return np.sort(values)
    padded = np.full(size, np.inf, dtype=float)
    padded[:count] = values

    for distance, ascending_rows in _bitonic_plan(size):
        # The active pairs at this substage are (i, i ^ distance) with the
        # distance bit of i clear -- i.e. columns (j, j + distance) of the
        # array viewed as rows of 2*distance consecutive elements.  A whole
        # row sits inside one direction block, so ascending is per-row.
        view = padded.reshape(-1, 2 * distance)
        a = view[:, :distance]
        b = view[:, distance:]
        swap = np.where(ascending_rows, a > b, a < b)
        new_a = np.where(swap, b, a)
        new_b = np.where(swap, a, b)
        view[:, :distance] = new_a
        view[:, distance:] = new_b
        charge(size / 2, "compare_exchange")
    return padded[:count]


#: Memoized compare-exchange schedules keyed by (power-of-two) network size:
#: a list of ``(distance, ascending-per-row column)`` entries, one per
#: substage.  Sizes repeat heavily across inputs, so the index arithmetic is
#: paid once per size rather than once per substage per call.
_BITONIC_PLANS: dict = {}
_BITONIC_PLAN_CAP = 64


def _bitonic_plan(size: int):
    plan = _BITONIC_PLANS.get(size)
    if plan is None:
        plan = []
        stages = int(math.log2(size))
        for stage in range(1, stages + 1):
            for substage in range(stage, 0, -1):
                distance = 1 << (substage - 1)
                row_starts = np.arange(size // (2 * distance)) * (2 * distance)
                ascending = (((row_starts >> stage) & 1) == 0)[:, None]
                plan.append((distance, ascending))
        if len(_BITONIC_PLANS) >= _BITONIC_PLAN_CAP:
            _BITONIC_PLANS.clear()
        _BITONIC_PLANS[size] = plan
    return plan


def is_sorted(data: np.ndarray) -> bool:
    """Check a sort output (used by tests and the benchmark's sanity layer)."""
    return bool(np.all(data[:-1] <= data[1:])) if len(data) > 1 else True
