"""Input features for the Sort benchmark.

The paper uses "standard deviation, duplication, sortedness, and the
performance of a test sort on a subsequence of the list" as Sort's input
features.  Each extractor samples a fraction of the input determined by its
sampling level (the ``level`` tunable of the paper's Figure 1): cheap levels
look at a small stride sample, the expensive level looks at everything.
Every extractor charges the number of elements it touches, so the
cost/benefit trade-off the two-level framework must negotiate is real.
"""

from __future__ import annotations

import math

import numpy as np

from repro.benchmarks_suite.sort.algorithms import _count_inversions
from repro.lang.cost import charge
from repro.lang.features import FeatureExtractor, FeatureSet


def _sample(data: np.ndarray, fraction: float) -> np.ndarray:
    """Take an evenly-strided sample covering ``fraction`` of the input."""
    count = len(data)
    if count == 0:
        return data
    sample_size = max(2, int(math.ceil(count * fraction)))
    sample_size = min(sample_size, count)
    indices = np.linspace(0, count - 1, sample_size, dtype=int)
    return data[indices]


def sortedness(data: np.ndarray, fraction: float) -> float:
    """Fraction of adjacent sampled pairs already in order (paper Figure 1)."""
    sample = _sample(np.asarray(data, dtype=float), fraction)
    charge(len(sample), "feature")
    if len(sample) < 2:
        return 1.0
    ordered = np.count_nonzero(sample[:-1] <= sample[1:])
    return float(ordered) / (len(sample) - 1)


def duplication(data: np.ndarray, fraction: float) -> float:
    """One minus the fraction of distinct values in the sample."""
    sample = _sample(np.asarray(data, dtype=float), fraction)
    charge(len(sample) * max(1.0, math.log2(max(len(sample), 2))), "feature")
    if len(sample) == 0:
        return 0.0
    if bool(np.isnan(sample).any()):
        # np.unique collapses NaNs (equal_nan); the sorted-run count below
        # would not, so keep the reference path for NaN-bearing samples.
        distinct = len(np.unique(sample))
    else:
        ordered = np.sort(sample)
        distinct = 1 + int(np.count_nonzero(ordered[1:] != ordered[:-1]))
    return 1.0 - distinct / len(sample)


def deviation(data: np.ndarray, fraction: float) -> float:
    """Coefficient-of-variation-style spread of the sampled values."""
    sample = _sample(np.asarray(data, dtype=float), fraction)
    charge(len(sample), "feature")
    if len(sample) == 0:
        return 0.0
    spread = float(np.std(sample))
    scale = float(np.mean(np.abs(sample))) + 1e-12
    return spread / scale


def test_sort(data: np.ndarray, fraction: float) -> float:
    """Cost of insertion-sorting a small subsequence, normalized by its length.

    This is the paper's "performance of a test sort on a subsequence"
    feature: a direct, if expensive, probe of how hard the input is for a
    comparison sort.
    """
    sample = _sample(np.asarray(data, dtype=float), fraction)
    count = len(sample)
    if count < 2:
        return 0.0
    if bool(np.isnan(sample).any()):
        # NaNs break the vectorized order statistics; run the textbook loop.
        moves = 0.0
        result = np.empty_like(sample)
        for i in range(count):
            position = int(np.searchsorted(result[:i], sample[i], side="right"))
            shift = i - position
            if shift > 0:
                result[position + 1 : i + 1] = result[position:i]
                moves += shift
            result[position] = sample[i]
        charge(count + moves, "feature")
        return moves / count
    # The total shift distance of the insertion pass is exactly the number of
    # inversions in the sample (an integer, so the float accounting is
    # bit-identical to the incremental loop).
    moves = float(_count_inversions(sample))
    charge(count + moves, "feature")
    return moves / count


def size_feature(data: np.ndarray, fraction: float) -> float:
    """Log2 of the input length -- essentially free, always useful."""
    charge(1.0, "feature")
    return math.log2(max(len(data), 1))


def build_feature_set() -> FeatureSet:
    """The Sort benchmark's feature set (5 properties x 3 levels = 15 features)."""
    return FeatureSet(
        [
            FeatureExtractor("sortedness", sortedness),
            FeatureExtractor("duplication", duplication),
            FeatureExtractor("deviation", deviation),
            FeatureExtractor("test_sort", test_sort, level_fractions=[0.02, 0.05, 0.15]),
            FeatureExtractor("size", size_feature, level_fractions=[1.0, 1.0, 1.0]),
        ]
    )
