"""Input generators for the Sort benchmark.

Two populations, mirroring the paper's two Sort tests:

* ``synthetic`` (sort2) -- a mixture of generator families deliberately
  spanning the feature space: uniform random, almost-sorted, reverse-sorted,
  heavy-duplication, narrow-range, sawtooth, and Gaussian-mixture lists of
  varying length.
* ``real_world`` (sort1) -- the paper sorted keys from the Central Contractor
  Registration FOIA extract.  That dataset is no longer distributed, so this
  generator synthesizes lists with the statistical character of such
  registry extracts: long runs of already-sorted blocks (data exported from
  sorted tables), heavy duplication (categorical codes, repeated ZIP codes),
  and skewed magnitudes.  See DESIGN.md, substitution 2.

Generation is **per-index**: ``synthetic_item(i, seed)`` /
``real_world_item(i, seed)`` produce input *i* from an RNG seeded by
(population, seed, i), so any input is derivable without generating
0..i-1 -- the property the lazy ``InputSource`` pipeline relies on.  The
whole-list ``generate_*`` functions are thin loops over the item functions.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.core.inputs import per_index_rng

#: Input length bounds.  Kept modest so the full experiment matrix
#: (inputs x landmarks) runs in minutes while still spanning a 32x range,
#: enough for size-dependent selector behaviour to matter.
MIN_LENGTH = 64
MAX_LENGTH = 2048


def _random_length(rng: np.random.Generator) -> int:
    """Log-uniform length in [MIN_LENGTH, MAX_LENGTH]."""
    log_low, log_high = np.log(MIN_LENGTH), np.log(MAX_LENGTH)
    return int(np.exp(rng.uniform(log_low, log_high)))


def uniform_random(rng: np.random.Generator) -> np.ndarray:
    """I.i.d. uniform doubles: quicksort/mergesort territory."""
    return rng.uniform(0.0, 1e6, size=_random_length(rng))


def almost_sorted(rng: np.random.Generator) -> np.ndarray:
    """Sorted data with a small fraction of random swaps: insertion-sort heaven."""
    data = np.sort(rng.uniform(0.0, 1e6, size=_random_length(rng)))
    n_swaps = max(1, int(0.01 * len(data)))
    for _ in range(n_swaps):
        i, j = rng.integers(0, len(data), size=2)
        data[i], data[j] = data[j], data[i]
    return data


def sorted_ascending(rng: np.random.Generator) -> np.ndarray:
    """Fully sorted input: pathological for first-element-pivot quicksort."""
    return np.sort(rng.uniform(0.0, 1e6, size=_random_length(rng)))


def reverse_sorted(rng: np.random.Generator) -> np.ndarray:
    """Strictly decreasing input: worst case for insertion sort."""
    return np.sort(rng.uniform(0.0, 1e6, size=_random_length(rng)))[::-1].copy()


def heavy_duplicates(rng: np.random.Generator) -> np.ndarray:
    """Few distinct values, many repeats: radix-sort friendly."""
    n = _random_length(rng)
    n_distinct = int(rng.integers(2, 17))
    values = rng.uniform(0.0, 1e6, size=n_distinct)
    return rng.choice(values, size=n)


def narrow_range(rng: np.random.Generator) -> np.ndarray:
    """Values confined to a tiny interval (quantized sensor readings)."""
    n = _random_length(rng)
    center = rng.uniform(0.0, 1e6)
    return center + rng.integers(0, 64, size=n).astype(float)


def sawtooth(rng: np.random.Generator) -> np.ndarray:
    """Concatenation of several sorted runs (merge-sort friendly)."""
    n = _random_length(rng)
    n_runs = int(rng.integers(2, 9))
    pieces = []
    remaining = n
    for i in range(n_runs):
        size = remaining if i == n_runs - 1 else max(1, remaining // (n_runs - i))
        pieces.append(np.sort(rng.uniform(0.0, 1e6, size=size)))
        remaining -= size
        if remaining <= 0:
            break
    return np.concatenate(pieces)


def gaussian_mixture(rng: np.random.Generator) -> np.ndarray:
    """Clustered magnitudes with outliers."""
    n = _random_length(rng)
    n_components = int(rng.integers(1, 5))
    assignments = rng.integers(0, n_components, size=n)
    centers = rng.uniform(0.0, 1e6, size=n_components)
    scales = rng.uniform(1.0, 1e4, size=n_components)
    return centers[assignments] + rng.normal(0.0, 1.0, size=n) * scales[assignments]


SYNTHETIC_FAMILIES: List[Callable[[np.random.Generator], np.ndarray]] = [
    uniform_random,
    almost_sorted,
    sorted_ascending,
    reverse_sorted,
    heavy_duplicates,
    narrow_range,
    sawtooth,
    gaussian_mixture,
]


def synthetic_item(index: int, seed: int = 0) -> np.ndarray:
    """Input ``index`` of the sort2 population (pure in (index, seed))."""
    rng = per_index_rng(seed, index, "sort", "synthetic")
    family = SYNTHETIC_FAMILIES[index % len(SYNTHETIC_FAMILIES)]
    return family(rng).astype(float)


def generate_synthetic(n: int, seed: int = 0) -> List[np.ndarray]:
    """The sort2 population: an even mixture over all synthetic families."""
    return [synthetic_item(i, seed) for i in range(n)]


def real_world_item(index: int, seed: int = 0) -> np.ndarray:
    """Input ``index`` of the sort1 population: one registry-extract-like list.

    Built from sorted blocks (exports of pre-sorted tables) with heavy
    duplication of categorical keys and occasional unsorted appendices,
    which is the regime where adaptive selection between insertion sort,
    merge sort, and radix sort pays off.
    """
    rng = per_index_rng(seed, index, "sort", "real_world")
    n_total = _random_length(rng)
    blocks: List[np.ndarray] = []
    remaining = n_total
    while remaining > 0:
        block_size = int(min(remaining, rng.integers(16, 257)))
        # Categorical-ish keys: a small code space scaled up, then sorted
        # within the block with probability 0.7 (already-sorted exports).
        code_space = int(rng.integers(8, 513))
        block = rng.integers(0, code_space, size=block_size).astype(float)
        block *= float(rng.uniform(1.0, 1e4))
        if rng.random() < 0.7:
            block = np.sort(block)
        blocks.append(block)
        remaining -= block_size
    return np.concatenate(blocks)


def generate_real_world(n: int, seed: int = 0) -> List[np.ndarray]:
    """The sort1 population: registry-extract-like lists."""
    return [real_world_item(i, seed) for i in range(n)]
