"""The Sort benchmark: configuration space, polyalgorithm driver, program.

The configuration space contains:

* ``selector`` -- the size-cutoff decision list over the five sorting
  algorithms (Figure 2 of the paper);
* ``merge_ways`` -- the merge sort's number of ways (the paper's "variable
  number of ways");
* ``quick_pivot`` -- quicksort's pivot rule;
* ``radix_bits`` -- radix sort's digit width.

The run function dispatches every (sub)problem through the selector, so the
autotuned configuration is a genuine recursive polyalgorithm.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.benchmarks_suite.base import Benchmark, InputGenerator
from repro.benchmarks_suite.sort import algorithms, features, generators
from repro.lang.accuracy import AccuracyRequirement, always_accurate
from repro.lang.choices import Choice, ChoiceSite
from repro.lang.config import (
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    IntegerParameter,
)
from repro.lang.program import PetaBricksProgram
from repro.lang.selector import SelectorParameter


def build_choice_site() -> ChoiceSite:
    """The ``either...or`` site with the five sorting algorithms."""
    site = ChoiceSite("sort")
    site.add(Choice("insertion_sort", algorithms.insertion_sort, terminal=True))
    site.add(Choice("quick_sort", algorithms.quick_sort, terminal=False))
    site.add(Choice("merge_sort", algorithms.merge_sort, terminal=False))
    site.add(Choice("radix_sort", algorithms.radix_sort, terminal=True))
    site.add(Choice("bitonic_sort", algorithms.bitonic_sort, terminal=True))
    return site


def build_config_space(site: ChoiceSite) -> ConfigurationSpace:
    """The Sort benchmark's configuration space."""
    space = ConfigurationSpace()
    space.add(
        SelectorParameter(
            "selector",
            site,
            max_depth=3,
            max_cutoff=generators.MAX_LENGTH * 2,
            min_cutoff=4,
        )
    )
    space.add(IntegerParameter("merge_ways", 2, 8))
    space.add(CategoricalParameter("quick_pivot", ["first", "median3", "random"]))
    space.add(IntegerParameter("radix_bits", 2, 12))
    return space


def run_sort(config: Configuration, data: np.ndarray) -> np.ndarray:
    """Sort ``data`` with the polyalgorithm described by ``config``."""
    selector = config["selector"]
    merge_ways = int(config["merge_ways"])
    pivot_rule = config["quick_pivot"]
    radix_bits = int(config["radix_bits"])
    pivot_rng = np.random.default_rng(12345)

    # The dispatcher runs for every recursive sub-problem -- hundreds of
    # thousands of calls per measurement batch -- so the selector's rule list
    # is flattened to plain tuples and the algorithm functions are pre-bound,
    # replacing dataclass attribute walks and module lookups with local reads.
    rules = tuple((rule.cutoff, rule.choice) for rule in selector.rules)
    fallback = selector.fallback
    max_depth = algorithms.MAX_RECURSION_DEPTH
    insertion = algorithms.insertion_sort
    quick = algorithms.quick_sort
    merge = algorithms.merge_sort
    merge_collapsed = algorithms.merge_sort_collapsed
    radix = algorithms.radix_sort
    bitonic = algorithms.bitonic_sort

    def dispatch(segment: np.ndarray, depth: int) -> np.ndarray:
        size = len(segment)
        if size <= 1:
            return segment.copy()
        choice = fallback
        for cutoff, name in rules:
            if size < cutoff:
                choice = name
                break
        if depth >= max_depth:
            choice = "insertion_sort"
        if choice == "insertion_sort":
            return insertion(segment)
        if choice == "quick_sort":
            return quick(
                segment, dispatch, depth, pivot_rule=pivot_rule, rng=pivot_rng
            )
        if choice == "merge_sort":
            collapsed = merge_collapsed(segment, depth, merge_ways, rules, fallback)
            if collapsed is not None:
                return collapsed
            return merge(segment, dispatch, depth, ways=merge_ways)
        if choice == "radix_sort":
            return radix(segment, bits_per_pass=radix_bits)
        if choice == "bitonic_sort":
            return bitonic(segment)
        raise ValueError(f"unknown sort choice {choice!r}")

    return dispatch(np.asarray(data, dtype=float), 0)


class SortBenchmark(Benchmark):
    """The paper's Sort benchmark (fixed accuracy)."""

    name = "sort"

    def build_program(self) -> PetaBricksProgram:
        site = build_choice_site()
        return PetaBricksProgram(
            name=self.name,
            config_space=build_config_space(site),
            run_func=run_sort,
            features=features.build_feature_set(),
            accuracy_metric=always_accurate(),
            accuracy_requirement=AccuracyRequirement.disabled(),
        )

    def input_generators(self) -> Dict[str, InputGenerator]:
        return {
            "synthetic": InputGenerator(
                name="synthetic",
                description="mixture of generator families spanning the feature space (sort2)",
                item=generators.synthetic_item,
            ),
            "real_world": InputGenerator(
                name="real_world",
                description="registry-extract-like lists standing in for the CCR FOIA data (sort1)",
                item=generators.real_world_item,
            ),
        }
