"""The Bin Packing benchmark: configuration space and program.

The algorithmic choice is which of the 13 approximation heuristics to run
(a flat ``either...or`` with no recursion, so the configuration space is a
single categorical parameter).  Accuracy is the average occupied fraction of
the bins used; the paper's accuracy threshold is 0.95.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.benchmarks_suite.base import Benchmark, InputGenerator
from repro.benchmarks_suite.binpacking import algorithms, features, generators
from repro.lang.accuracy import AccuracyMetric, AccuracyRequirement
from repro.lang.config import CategoricalParameter, Configuration, ConfigurationSpace
from repro.lang.program import PetaBricksProgram

#: Accuracy threshold from the paper.
ACCURACY_THRESHOLD = 0.95


def build_config_space() -> ConfigurationSpace:
    """A single categorical choice among the 13 heuristics."""
    space = ConfigurationSpace()
    space.add(CategoricalParameter("heuristic", sorted(algorithms.HEURISTICS)))
    return space


def run_binpacking(config: Configuration, items: np.ndarray):
    """Pack ``items`` with the configured heuristic."""
    heuristic = algorithms.HEURISTICS[config["heuristic"]]
    return heuristic(list(np.asarray(items, dtype=float)))


def binpacking_accuracy(_items: np.ndarray, bins) -> float:
    """Average occupied fraction of the bins used."""
    return algorithms.occupancy(bins)


class BinPackingBenchmark(Benchmark):
    """The paper's Bin Packing benchmark (variable accuracy)."""

    name = "binpacking"

    def build_program(self) -> PetaBricksProgram:
        return PetaBricksProgram(
            name=self.name,
            config_space=build_config_space(),
            run_func=run_binpacking,
            features=features.build_feature_set(),
            accuracy_metric=AccuracyMetric("occupancy", binpacking_accuracy),
            accuracy_requirement=AccuracyRequirement(
                accuracy_threshold=ACCURACY_THRESHOLD, satisfaction_threshold=0.95
            ),
        )

    def input_generators(self) -> Dict[str, InputGenerator]:
        return {
            "synthetic": InputGenerator(
                name="synthetic",
                description="mixture of packable, small-item, pre-sorted, bimodal and uniform item lists",
                item=generators.synthetic_item,
            ),
        }
