"""The 13 bin-packing approximation heuristics.

All heuristics pack items of size (0, 1] into unit-capacity bins and return
the list of per-bin contents.  Online heuristics differ in which open bin
they probe for each item; the ``...Decreasing`` variants first sort the items
in non-increasing order (charging the sort).  Costs are charged as bin probes
(one per bin examined for an item) plus sort cost where applicable, so the
cheap-but-sloppy vs. careful-but-slower structure of the choice space is
faithful to the original benchmark.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.lang.cost import charge

#: Bin capacity (the benchmark uses unit bins).
CAPACITY = 1.0
#: Numerical slack when testing whether an item fits.
EPSILON = 1e-9

Bins = List[List[float]]


def _bin_levels(bins: Bins) -> np.ndarray:
    return np.array([sum(b) for b in bins], dtype=float)


def _place(bins: Bins, index: int, item: float) -> None:
    bins[index].append(item)


def next_fit(items: Sequence[float]) -> Bins:
    """Keep a single open bin; open a new one when the item does not fit."""
    bins: Bins = []
    level = CAPACITY + 1.0
    for item in items:
        charge(1, "probe")
        if level + item > CAPACITY + EPSILON:
            bins.append([])
            level = 0.0
        bins[-1].append(item)
        level += item
    return bins


def first_fit(items: Sequence[float]) -> Bins:
    """Place each item in the first open bin with room."""
    bins: Bins = []
    levels: List[float] = []
    for item in items:
        placed = False
        for index, level in enumerate(levels):
            charge(1, "probe")
            if level + item <= CAPACITY + EPSILON:
                bins[index].append(item)
                levels[index] += item
                placed = True
                break
        if not placed:
            bins.append([item])
            levels.append(item)
    return bins


def last_fit(items: Sequence[float]) -> Bins:
    """Place each item in the most recently opened bin with room."""
    bins: Bins = []
    levels: List[float] = []
    for item in items:
        placed = False
        for index in range(len(levels) - 1, -1, -1):
            charge(1, "probe")
            if levels[index] + item <= CAPACITY + EPSILON:
                bins[index].append(item)
                levels[index] += item
                placed = True
                break
        if not placed:
            bins.append([item])
            levels.append(item)
    return bins


def _fit_by_rule(items: Sequence[float], rule: str) -> Bins:
    """Shared implementation of best/worst/almost-worst fit."""
    bins: Bins = []
    levels: List[float] = []
    for item in items:
        charge(max(len(levels), 1), "probe")
        candidates = [
            (level, index)
            for index, level in enumerate(levels)
            if level + item <= CAPACITY + EPSILON
        ]
        if not candidates:
            bins.append([item])
            levels.append(item)
            continue
        if rule == "best":
            _, index = max(candidates)  # fullest bin that still fits
        elif rule == "worst":
            _, index = min(candidates)  # emptiest bin
        elif rule == "almost_worst":
            ordered = sorted(candidates)
            _, index = ordered[1] if len(ordered) > 1 else ordered[0]
        else:  # pragma: no cover - guarded by the public wrappers
            raise ValueError(f"unknown fit rule {rule!r}")
        bins[index].append(item)
        levels[index] += item
    return bins


def best_fit(items: Sequence[float]) -> Bins:
    """Place each item in the fullest bin that still has room."""
    return _fit_by_rule(items, "best")


def worst_fit(items: Sequence[float]) -> Bins:
    """Place each item in the emptiest bin that has room."""
    return _fit_by_rule(items, "worst")


def almost_worst_fit(items: Sequence[float]) -> Bins:
    """Place each item in the second-emptiest bin that has room."""
    return _fit_by_rule(items, "almost_worst")


def _decreasing(items: Sequence[float]) -> List[float]:
    """Sort items in non-increasing order, charging the comparison cost."""
    n = len(items)
    charge(n * math.log2(max(n, 2)), "sort")
    return sorted(items, reverse=True)


def next_fit_decreasing(items: Sequence[float]) -> Bins:
    """Next fit after sorting items in non-increasing order."""
    return next_fit(_decreasing(items))


def first_fit_decreasing(items: Sequence[float]) -> Bins:
    """First fit after sorting items in non-increasing order."""
    return first_fit(_decreasing(items))


def last_fit_decreasing(items: Sequence[float]) -> Bins:
    """Last fit after sorting items in non-increasing order."""
    return last_fit(_decreasing(items))


def best_fit_decreasing(items: Sequence[float]) -> Bins:
    """Best fit after sorting items in non-increasing order."""
    return best_fit(_decreasing(items))


def worst_fit_decreasing(items: Sequence[float]) -> Bins:
    """Worst fit after sorting items in non-increasing order."""
    return worst_fit(_decreasing(items))


def almost_worst_fit_decreasing(items: Sequence[float]) -> Bins:
    """Almost-worst fit after sorting items in non-increasing order."""
    return almost_worst_fit(_decreasing(items))


def modified_first_fit_decreasing(items: Sequence[float]) -> Bins:
    """Johnson & Garey's Modified First Fit Decreasing (MFFD).

    Items are classified as large (> 1/2), medium (> 2/5), small (> 1/6) and
    tiny (<= 1/6).  Large items each open a bin; medium/small items are
    paired into the large bins where possible (scanning large bins from the
    emptiest); remaining items are first-fit packed.  This captures MFFD's
    better worst-case ratio at a higher constant cost.
    """
    ordered = _decreasing(items)
    large = [x for x in ordered if x > CAPACITY / 2]
    rest = [x for x in ordered if x <= CAPACITY / 2]
    charge(len(ordered), "classify")

    bins: Bins = [[x] for x in large]
    levels: List[float] = [x for x in large]

    # Phase 2: try to add one medium/small companion to each large bin,
    # visiting large bins from the one with the most free space.
    remaining: List[float] = []
    order = sorted(range(len(bins)), key=lambda i: levels[i])
    companion_used = [False] * len(bins)
    pool = list(rest)
    for index in order:
        charge(max(len(pool), 1), "probe")
        chosen = -1
        for j, item in enumerate(pool):
            if levels[index] + item <= CAPACITY + EPSILON:
                chosen = j
                break
        if chosen >= 0:
            item = pool.pop(chosen)
            bins[index].append(item)
            levels[index] += item
            companion_used[index] = True
    remaining = pool

    # Phase 3: first-fit the remaining items over all bins.
    for item in remaining:
        placed = False
        for index, level in enumerate(levels):
            charge(1, "probe")
            if level + item <= CAPACITY + EPSILON:
                bins[index].append(item)
                levels[index] += item
                placed = True
                break
        if not placed:
            bins.append([item])
            levels.append(item)
    return bins


#: Registry of all 13 heuristics, keyed by the names used in the paper.
HEURISTICS: Dict[str, Callable[[Sequence[float]], Bins]] = {
    "AlmostWorstFit": almost_worst_fit,
    "AlmostWorstFitDecreasing": almost_worst_fit_decreasing,
    "BestFit": best_fit,
    "BestFitDecreasing": best_fit_decreasing,
    "FirstFit": first_fit,
    "FirstFitDecreasing": first_fit_decreasing,
    "LastFit": last_fit,
    "LastFitDecreasing": last_fit_decreasing,
    "ModifiedFirstFitDecreasing": modified_first_fit_decreasing,
    "NextFit": next_fit,
    "NextFitDecreasing": next_fit_decreasing,
    "WorstFit": worst_fit,
    "WorstFitDecreasing": worst_fit_decreasing,
}


def packing_is_valid(items: Sequence[float], bins: Bins) -> bool:
    """Check that a packing uses every item exactly once and respects capacity."""
    packed = sorted(x for b in bins for x in b)
    if len(packed) != len(items):
        return False
    if not np.allclose(packed, sorted(items)):
        return False
    return all(sum(b) <= CAPACITY + 1e-6 for b in bins)


def occupancy(bins: Bins) -> float:
    """Average occupied fraction of the bins used (the accuracy metric)."""
    if not bins:
        return 1.0
    return float(np.mean([sum(b) / CAPACITY for b in bins]))
