"""Input features for the Bin Packing benchmark.

The paper lists "average, standard deviation, value range, and sortedness"
as Bin Packing's feature extractors.  Each samples a level-dependent fraction
of the item list and charges the elements it touches.
"""

from __future__ import annotations

import math

import numpy as np

from repro.lang.cost import charge
from repro.lang.features import FeatureExtractor, FeatureSet


def _sample(items: np.ndarray, fraction: float) -> np.ndarray:
    count = len(items)
    if count == 0:
        return items
    sample_size = max(2, int(math.ceil(count * fraction)))
    sample_size = min(sample_size, count)
    indices = np.linspace(0, count - 1, sample_size, dtype=int)
    return items[indices]


def average(items: np.ndarray, fraction: float) -> float:
    """Mean item size: small means almost any heuristic packs densely."""
    sample = _sample(np.asarray(items, dtype=float), fraction)
    charge(len(sample), "feature")
    return float(np.mean(sample)) if len(sample) else 0.0


def deviation(items: np.ndarray, fraction: float) -> float:
    """Standard deviation of item sizes."""
    sample = _sample(np.asarray(items, dtype=float), fraction)
    charge(len(sample), "feature")
    return float(np.std(sample)) if len(sample) else 0.0


def value_range(items: np.ndarray, fraction: float) -> float:
    """Max minus min item size."""
    sample = _sample(np.asarray(items, dtype=float), fraction)
    charge(len(sample), "feature")
    return float(np.max(sample) - np.min(sample)) if len(sample) else 0.0


def sortedness(items: np.ndarray, fraction: float) -> float:
    """Fraction of adjacent sampled pairs in non-increasing order.

    A pre-sorted (decreasing) item list makes the "...Decreasing" variants'
    extra sort pure overhead, which is one of the input-adaptive decisions
    the benchmark rewards.
    """
    sample = _sample(np.asarray(items, dtype=float), fraction)
    charge(len(sample), "feature")
    if len(sample) < 2:
        return 1.0
    ordered = np.count_nonzero(sample[:-1] >= sample[1:])
    return float(ordered) / (len(sample) - 1)


def size_feature(items: np.ndarray, fraction: float) -> float:
    """Log2 of the number of items."""
    charge(1.0, "feature")
    return math.log2(max(len(items), 1))


def build_feature_set() -> FeatureSet:
    """Bin Packing's feature set (5 properties x 3 levels)."""
    return FeatureSet(
        [
            FeatureExtractor("average", average),
            FeatureExtractor("deviation", deviation),
            FeatureExtractor("range", value_range),
            FeatureExtractor("sortedness", sortedness),
            FeatureExtractor("size", size_feature, level_fractions=[1.0, 1.0, 1.0]),
        ]
    )
