"""Input generators for the Bin Packing benchmark.

The synthetic population mixes families that favour different heuristics:

* **perfectly packable** -- items produced by slicing full bins, so an
  optimal packing with occupancy 1.0 exists; careful heuristics
  (BestFitDecreasing, MFFD) recover most of it, sloppy ones do not;
* **small items** -- everything packs densely, so the cheapest heuristic
  (NextFit) is the right answer;
* **pre-sorted decreasing** -- the "...Decreasing" variants' sort is wasted
  work;
* **bimodal large/small** -- pairing-sensitive, where MFFD shines;
* **uniform random** -- the classical average case.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.inputs import per_index_rng

#: The lower bound is large enough that the partially-filled final bin of a
#: good packing cannot by itself drag the mean occupancy below the 0.95
#: accuracy threshold.
MIN_ITEMS = 150
MAX_ITEMS = 800


def _random_count(rng: np.random.Generator) -> int:
    log_low, log_high = np.log(MIN_ITEMS), np.log(MAX_ITEMS)
    return int(np.exp(rng.uniform(log_low, log_high)))


def perfectly_packable(rng: np.random.Generator) -> np.ndarray:
    """Items created by splitting unit bins into 2-4 pieces, then shuffled."""
    n = _random_count(rng)
    items: List[float] = []
    while len(items) < n:
        pieces = int(rng.integers(2, 5))
        cuts = np.sort(rng.uniform(0.05, 0.95, size=pieces - 1))
        sizes = np.diff(np.concatenate([[0.0], cuts, [1.0]]))
        items.extend(float(s) for s in sizes)
    items = items[:n]
    rng.shuffle(items)
    return np.array(items, dtype=float)


def small_items(rng: np.random.Generator) -> np.ndarray:
    """Items uniformly in (0, 0.15]: any heuristic packs densely and fast ones win.

    The count is kept high enough that the one partially-filled final bin
    cannot pull the mean occupancy below the accuracy threshold.
    """
    n = max(_random_count(rng), 300)
    return rng.uniform(0.01, 0.15, size=n)


def presorted_decreasing(rng: np.random.Generator) -> np.ndarray:
    """Smallish items already sorted in non-increasing order.

    The pre-sort makes the "...Decreasing" variants' extra sort pure
    overhead, and the small sizes keep high occupancy reachable.
    """
    n = _random_count(rng)
    return np.sort(rng.uniform(0.05, 0.4, size=n))[::-1].copy()


def bimodal(rng: np.random.Generator) -> np.ndarray:
    """Complementary large/small pairs that fill bins almost exactly.

    Each large item (~0.55-0.68) is generated together with a partner that
    nearly completes the bin, so a pairing-aware heuristic (BestFitDecreasing,
    MFFD) can reach near-perfect occupancy while sloppy heuristics leave
    large gaps.
    """
    n = _random_count(rng)
    n_pairs = n // 2
    large = rng.uniform(0.55, 0.68, size=n_pairs)
    slack = rng.uniform(0.0, 0.04, size=n_pairs)
    small = 1.0 - large - slack
    items = np.concatenate([large, small, rng.uniform(0.05, 0.3, size=n - 2 * n_pairs)])
    rng.shuffle(items)
    return items


def uniform_random(rng: np.random.Generator) -> np.ndarray:
    """Uniform items capped at half a bin (keeps dense packings reachable)."""
    n = _random_count(rng)
    return rng.uniform(0.05, 0.5, size=n)


SYNTHETIC_FAMILIES = [
    perfectly_packable,
    small_items,
    presorted_decreasing,
    bimodal,
    uniform_random,
]


def synthetic_item(index: int, seed: int = 0) -> np.ndarray:
    """Input ``index`` of the Bin Packing population (pure in (index, seed))."""
    rng = per_index_rng(seed, index, "binpacking", "synthetic")
    family = SYNTHETIC_FAMILIES[index % len(SYNTHETIC_FAMILIES)]
    return family(rng)


def generate_synthetic(n: int, seed: int = 0) -> List[np.ndarray]:
    """The Bin Packing input population used in Table 1."""
    return [synthetic_item(i, seed) for i in range(n)]
