"""The Bin Packing benchmark (paper Section 4.1, "Bin Packing").

Items with sizes in (0, 1] must be packed into unit-capacity bins.  The
benchmark chooses among 13 classical approximation heuristics; accuracy is
the average occupied fraction of the bins used (threshold 0.95), so sloppy
heuristics fail the quality-of-service requirement on hard inputs while the
"-Decreasing" variants pay an extra sort to be safe.
"""

from repro.benchmarks_suite.binpacking.benchmark import BinPackingBenchmark

__all__ = ["BinPackingBenchmark"]
