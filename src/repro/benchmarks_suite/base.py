"""Benchmark interface shared by all six reproduced benchmarks.

A :class:`Benchmark` knows how to build its
:class:`~repro.lang.program.PetaBricksProgram` (configuration space, run
function, feature extractors, accuracy requirement) and how to generate
input sets (synthetic and, where applicable, "real-world-like" variants that
stand in for the paper's CCR / UCI datasets).  A :class:`BenchmarkVariant`
pairs a benchmark with one named input population -- the unit the paper's
Table 1 calls a *test* (``sort1`` and ``sort2`` are the same Sort program
over different populations) -- and :func:`registry` maps test names to
variant factories so drivers can look benchmarks up by string.

Contract for implementations: the program's run function must be a pure
function of (configuration, input) under the deterministic cost model --
any internal randomness seeded per run from constants -- and input
generation must be a pure function of its arguments *per index*: input
``i`` of ``input_source(n, variant, seed)`` depends only on (variant,
seed, i), never on inputs 0..i-1.  Those properties are what let the
measurement runtime cache runs by content key, fan batches out over
thread/process pools, and stream 50k-input experiments chunk by chunk --
the input list itself included -- with bit-identical results.
``generate_inputs`` is the materialized (O(N) list) view of the same
source.

The learning framework and the experiment harness only use this interface,
so adding a seventh benchmark requires no change outside its subpackage.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.inputs import GeneratedInputSource, InputSource, MaterializedInputs
from repro.lang.program import PetaBricksProgram


@dataclass(frozen=True)
class InputGenerator:
    """A named source of benchmark inputs.

    Attributes:
        name: generator name (e.g. ``"synthetic"``, ``"real_world"``).
        description: what input population this generator mimics.
        func: optional callable ``func(n, seed) -> list`` producing ``n``
            inputs at once (the legacy whole-list shape; still accepted so
            external benchmarks keep working, but such populations can only
            be streamed through a :class:`MaterializedInputs` adapter).
        item: optional callable ``item(index, seed) -> input`` producing
            input ``index`` alone -- the per-index shape every built-in
            benchmark provides, and what makes a population lazily
            streamable (see :mod:`repro.core.inputs`).
    """

    name: str
    description: str
    func: Optional[Callable[[int, int], List[Any]]] = None
    item: Optional[Callable[[int, int], Any]] = None

    def __post_init__(self) -> None:
        if self.func is None and self.item is None:
            raise ValueError("InputGenerator needs a whole-list func or a per-index item")

    def source(self, n: int, seed: int = 0) -> InputSource:
        """A lazy source of ``n`` inputs (materialized up front without ``item``)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if self.item is not None:
            return GeneratedInputSource(n, seed, self.item, name=self.name)
        return MaterializedInputs(self.func(n, seed))

    def generate(self, n: int, seed: int = 0) -> List[Any]:
        """Produce ``n`` inputs deterministically from ``seed`` as a list."""
        return self.source(n, seed=seed).materialized()


class Benchmark(abc.ABC):
    """Abstract benchmark: a tunable program plus its input populations."""

    #: Short benchmark name, e.g. ``"sort"``; subclasses override.
    name: str = "benchmark"

    def __init__(self) -> None:
        self._program: Optional[PetaBricksProgram] = None

    # -- program --------------------------------------------------------

    @abc.abstractmethod
    def build_program(self) -> PetaBricksProgram:
        """Construct the benchmark's tunable program (called once, cached)."""

    @property
    def program(self) -> PetaBricksProgram:
        """The benchmark's program, built lazily and cached."""
        if self._program is None:
            self._program = self.build_program()
        return self._program

    # -- inputs ---------------------------------------------------------

    @abc.abstractmethod
    def input_generators(self) -> Dict[str, InputGenerator]:
        """Return the benchmark's named input generators."""

    def input_source(
        self, n: int, variant: str = "synthetic", seed: int = 0
    ) -> InputSource:
        """A lazy source of ``n`` inputs from the named generator variant.

        The returned :class:`~repro.core.inputs.InputSource` knows its
        length and materializes each input independently and
        deterministically, so consumers can stream the population in
        O(chunk) memory; it is also a ``Sequence``, so code written against
        input lists keeps working unchanged.

        Raises:
            KeyError: if ``variant`` is not one of :meth:`input_generators`.
        """
        generators = self.input_generators()
        if variant not in generators:
            raise KeyError(
                f"{self.name}: unknown input variant {variant!r}; "
                f"available: {sorted(generators)}"
            )
        return generators[variant].source(n, seed=seed)

    def generate_inputs(
        self, n: int, variant: str = "synthetic", seed: int = 0
    ) -> List[Any]:
        """Generate ``n`` inputs as a list: :meth:`input_source`, materialized.

        Raises:
            KeyError: if ``variant`` is not one of :meth:`input_generators`.
        """
        return self.input_source(n, variant=variant, seed=seed).materialized()

    def default_variant(self) -> str:
        """The generator used when an experiment does not name one."""
        return "synthetic"

    # -- misc -----------------------------------------------------------

    def rng(self, seed: int) -> random.Random:
        """A benchmark-scoped random source (keeps seeds independent)."""
        return random.Random((hash(self.name) & 0xFFFF) ^ seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


#: Registry of benchmark factories keyed by the test names used in Table 1.
#: ``sort1``/``sort2`` and ``clustering1``/``clustering2`` share a benchmark
#: class but use different input variants, mirroring the paper.
_REGISTRY: Dict[str, Callable[[], "BenchmarkVariant"]] = {}


@dataclass(frozen=True)
class BenchmarkVariant:
    """A (benchmark, input-variant) pair: one row of Table 1."""

    benchmark: Benchmark
    variant: str

    @property
    def name(self) -> str:
        return f"{self.benchmark.name}/{self.variant}"


def register(test_name: str, factory: Callable[[], BenchmarkVariant]) -> None:
    """Register a Table-1 test name (idempotent for identical factories)."""
    _REGISTRY[test_name] = factory


def registry() -> Dict[str, Callable[[], BenchmarkVariant]]:
    """All registered Table-1 test names and their factories."""
    _ensure_registered()
    return dict(_REGISTRY)


def get_benchmark(test_name: str) -> BenchmarkVariant:
    """Instantiate the benchmark variant for a Table-1 test name.

    Raises:
        KeyError: if the name is unknown.
    """
    _ensure_registered()
    if test_name not in _REGISTRY:
        raise KeyError(
            f"unknown benchmark test {test_name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[test_name]()


def _ensure_registered() -> None:
    """Populate the registry on first use (avoids import cycles)."""
    if _REGISTRY:
        return
    from repro.benchmarks_suite.binpacking.benchmark import BinPackingBenchmark
    from repro.benchmarks_suite.clustering.benchmark import ClusteringBenchmark
    from repro.benchmarks_suite.helmholtz3d.benchmark import Helmholtz3DBenchmark
    from repro.benchmarks_suite.poisson2d.benchmark import Poisson2DBenchmark
    from repro.benchmarks_suite.sort.benchmark import SortBenchmark
    from repro.benchmarks_suite.svd.benchmark import SVDBenchmark

    register("sort1", lambda: BenchmarkVariant(SortBenchmark(), "real_world"))
    register("sort2", lambda: BenchmarkVariant(SortBenchmark(), "synthetic"))
    register(
        "clustering1", lambda: BenchmarkVariant(ClusteringBenchmark(), "real_world")
    )
    register(
        "clustering2", lambda: BenchmarkVariant(ClusteringBenchmark(), "synthetic")
    )
    register(
        "binpacking", lambda: BenchmarkVariant(BinPackingBenchmark(), "synthetic")
    )
    register("svd", lambda: BenchmarkVariant(SVDBenchmark(), "synthetic"))
    register("poisson2d", lambda: BenchmarkVariant(Poisson2DBenchmark(), "synthetic"))
    register(
        "helmholtz3d", lambda: BenchmarkVariant(Helmholtz3DBenchmark(), "synthetic")
    )
