"""The 3D Helmholtz benchmark (paper Section 4.1, "Helmholtz 3D").

Solves the variable-coefficient 3-D Helmholtz equation
``(-laplace + c(x)) u = f`` with homogeneous Dirichlet boundaries.  The
algorithmic choices mirror Poisson 2D -- multigrid with autotuned cycle
shapes, iterative smoothers, and a direct (sparse LU) solver -- and the
accuracy metric and threshold (7) are the same.
"""

from repro.benchmarks_suite.helmholtz3d.benchmark import (
    Helmholtz3DBenchmark,
    HelmholtzInput,
)

__all__ = ["Helmholtz3DBenchmark", "HelmholtzInput"]
