"""Solvers for the variable-coefficient 3-D Helmholtz equation.

The discrete operator on an ``n x n x n`` interior grid (7-point stencil,
homogeneous Dirichlet boundaries) is

    (A u)_ijk = (6 u_ijk - sum of 6 neighbours) / h^2 + c_ijk * u_ijk,

with a non-negative variable coefficient field ``c``.  Available solvers:

* weighted Jacobi and red-black SOR sweeps (cheap per sweep, slow on smooth
  error components);
* geometric multigrid with V or W cycles (the coefficient field is restricted
  along with the residual);
* a direct sparse-LU solver (exact, expensive -- its fill-in cost on a 3-D
  stencil grid is charged superlinearly in the number of unknowns).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.lang.cost import charge


def _grid_spacing(n: int) -> float:
    return 1.0 / (n + 1)


def apply_operator(u: np.ndarray, coefficient: np.ndarray, charge_cost: bool = True) -> np.ndarray:
    """Apply the 7-point Helmholtz operator to ``u``."""
    n = u.shape[0]
    h2 = _grid_spacing(n) ** 2
    padded = np.pad(u, 1)
    laplacian = (
        6.0 * padded[1:-1, 1:-1, 1:-1]
        - padded[:-2, 1:-1, 1:-1]
        - padded[2:, 1:-1, 1:-1]
        - padded[1:-1, :-2, 1:-1]
        - padded[1:-1, 2:, 1:-1]
        - padded[1:-1, 1:-1, :-2]
        - padded[1:-1, 1:-1, 2:]
    ) / h2
    if charge_cost:
        charge(8.0 * n ** 3, "stencil")
    return laplacian + coefficient * u


def residual(u: np.ndarray, coefficient: np.ndarray, f: np.ndarray) -> np.ndarray:
    """Residual ``f - A u``."""
    return f - apply_operator(u, coefficient)


def jacobi(
    f: np.ndarray,
    coefficient: np.ndarray,
    iterations: int,
    u0: Optional[np.ndarray] = None,
    weight: float = 0.8,
) -> np.ndarray:
    """Weighted Jacobi iteration for the Helmholtz operator."""
    n = f.shape[0]
    h2 = _grid_spacing(n) ** 2
    diagonal = 6.0 / h2 + coefficient
    u = np.zeros_like(f) if u0 is None else u0.copy()
    for _ in range(max(0, iterations)):
        padded = np.pad(u, 1)
        neighbours = (
            padded[:-2, 1:-1, 1:-1]
            + padded[2:, 1:-1, 1:-1]
            + padded[1:-1, :-2, 1:-1]
            + padded[1:-1, 2:, 1:-1]
            + padded[1:-1, 1:-1, :-2]
            + padded[1:-1, 1:-1, 2:]
        ) / h2
        updated = (f + neighbours) / diagonal
        u = (1.0 - weight) * u + weight * updated
        charge(9.0 * n ** 3, "stencil")
    return u


def sor(
    f: np.ndarray,
    coefficient: np.ndarray,
    iterations: int,
    omega: Optional[float] = None,
    u0: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Red-black SOR sweeps for the Helmholtz operator."""
    n = f.shape[0]
    h2 = _grid_spacing(n) ** 2
    diagonal = 6.0 / h2 + coefficient
    if omega is None:
        rho = math.cos(math.pi * _grid_spacing(n))
        omega = 2.0 / (1.0 + math.sqrt(max(1e-12, 1.0 - rho * rho)))
    u = np.zeros_like(f) if u0 is None else u0.copy()

    idx = np.arange(n)
    parity = (idx[:, None, None] + idx[None, :, None] + idx[None, None, :]) % 2
    red_mask = parity == 0

    for _ in range(max(0, iterations)):
        for mask in (red_mask, ~red_mask):
            padded = np.pad(u, 1)
            neighbours = (
                padded[:-2, 1:-1, 1:-1]
                + padded[2:, 1:-1, 1:-1]
                + padded[1:-1, :-2, 1:-1]
                + padded[1:-1, 2:, 1:-1]
                + padded[1:-1, 1:-1, :-2]
                + padded[1:-1, 1:-1, 2:]
            ) / h2
            gauss_seidel = (f + neighbours) / diagonal
            u[mask] = (1.0 - omega) * u[mask] + omega * gauss_seidel[mask]
        charge(11.0 * n ** 3, "stencil")
    return u


def build_sparse_operator(coefficient: np.ndarray) -> sparse.csc_matrix:
    """Assemble the 7-point Helmholtz operator as a sparse matrix.

    The constant-coefficient Laplacian part is built from Kronecker products
    of the 1-D second-difference matrix (fast and allocation-friendly); the
    variable coefficient is added on the diagonal.
    """
    n = coefficient.shape[0]
    h2 = _grid_spacing(n) ** 2
    one_d = sparse.diags(
        [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)],
        offsets=[-1, 0, 1],
        format="csr",
    )
    identity = sparse.identity(n, format="csr")
    laplacian = (
        sparse.kron(sparse.kron(one_d, identity), identity)
        + sparse.kron(sparse.kron(identity, one_d), identity)
        + sparse.kron(sparse.kron(identity, identity), one_d)
    ) / h2
    return (laplacian + sparse.diags(coefficient.ravel())).tocsc()


def direct_sparse(f: np.ndarray, coefficient: np.ndarray) -> np.ndarray:
    """Exact solve via sparse LU factorization.

    The fill-in of a 3-D stencil factorization grows superlinearly in the
    number of unknowns; the charge below models the ``O(m^2)``-ish cost of a
    nested-dissection factorization on an ``m = n^3`` unknown system.
    """
    n = f.shape[0]
    unknowns = n ** 3
    charge(0.5 * unknowns ** 2, "factorize")
    matrix = build_sparse_operator(coefficient)
    lu = splu(matrix)
    solution = lu.solve(f.ravel())
    charge(20.0 * unknowns, "solve")
    return solution.reshape(f.shape)


def _restrict(fine: np.ndarray) -> np.ndarray:
    """Injection-with-averaging restriction to the (n-1)//2 coarse grid."""
    n = fine.shape[0]
    coarse_n = (n - 1) // 2
    padded = np.pad(fine, 1)
    i = 2 * np.arange(1, coarse_n + 1)
    center = padded[np.ix_(i, i, i)]
    face_sum = (
        padded[np.ix_(i - 1, i, i)]
        + padded[np.ix_(i + 1, i, i)]
        + padded[np.ix_(i, i - 1, i)]
        + padded[np.ix_(i, i + 1, i)]
        + padded[np.ix_(i, i, i - 1)]
        + padded[np.ix_(i, i, i + 1)]
    )
    charge(8.0 * coarse_n ** 3, "restrict")
    return (2.0 * center + face_sum / 2.0) / 5.0


def _prolong(coarse: np.ndarray, fine_n: int) -> np.ndarray:
    """Trilinear-ish prolongation by nearest/average fill."""
    coarse_n = coarse.shape[0]
    fine = np.zeros((fine_n, fine_n, fine_n))
    padded = np.pad(coarse, 1)
    # Nearest-coarse-point injection followed by one smoothing-like average
    # gives an adequate (and cheap) prolongation for these small grids.
    fine_coords = (np.arange(1, fine_n + 1) / 2.0).astype(int)
    fine_coords = np.clip(fine_coords, 0, coarse_n)
    fine = padded[np.ix_(fine_coords, fine_coords, fine_coords)]
    charge(4.0 * fine_n ** 3, "prolong")
    return fine


def multigrid(
    f: np.ndarray,
    coefficient: np.ndarray,
    cycles: int = 8,
    cycle_shape: str = "V",
    pre_smooth: int = 2,
    post_smooth: int = 2,
    u0: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Geometric multigrid for the variable-coefficient Helmholtz operator."""
    if cycle_shape not in ("V", "W"):
        raise ValueError(f"unknown cycle shape {cycle_shape!r}")
    gamma = 1 if cycle_shape == "V" else 2
    u = np.zeros_like(f) if u0 is None else u0.copy()
    for _ in range(max(0, cycles)):
        u = _mg_cycle(u, coefficient, f, gamma, pre_smooth, post_smooth)
    return u


def _mg_cycle(
    u: np.ndarray,
    coefficient: np.ndarray,
    f: np.ndarray,
    gamma: int,
    pre: int,
    post: int,
) -> np.ndarray:
    n = u.shape[0]
    if n <= 3:
        # Coarsest grid: a handful of SOR sweeps is effectively exact here.
        return sor(f, coefficient, iterations=20, u0=u)
    u = jacobi(f, coefficient, pre, u0=u)
    coarse_rhs = _restrict(residual(u, coefficient, f))
    coarse_coefficient = _restrict(coefficient)
    coarse_correction = np.zeros_like(coarse_rhs)
    for _ in range(gamma):
        coarse_correction = _mg_cycle(
            coarse_correction, coarse_coefficient, coarse_rhs, gamma, pre, post
        )
    u = u + _prolong(coarse_correction, n)
    return jacobi(f, coefficient, post, u0=u)


def exact_solution(f: np.ndarray, coefficient: np.ndarray) -> np.ndarray:
    """Reference solution used by the accuracy metric (outside cost accounting)."""
    matrix = build_sparse_operator(coefficient)
    lu = splu(matrix)
    return lu.solve(f.ravel()).reshape(f.shape)
