"""Input features for the Helmholtz 3D benchmark.

The paper lists "the residual measure of the input, the standard deviation of
the input, and a count of zeros in the input" plus a range feature (its best
classifier uses residual, zeros, deviation at the intermediate level and
range at the cheapest level).  The extractors below mirror the Poisson 2D
ones, extended to three dimensions and to the coefficient field.
"""

from __future__ import annotations

import math

import numpy as np

from repro.lang.cost import charge
from repro.lang.features import FeatureExtractor, FeatureSet


def _sample_grid(grid: np.ndarray, fraction: float) -> np.ndarray:
    n = grid.shape[0]
    side = max(3, int(math.ceil(n * fraction ** (1.0 / 3.0))))
    side = min(side, n)
    start = (n - side) // 2
    return grid[start : start + side, start : start + side, start : start + side]


def residual_measure(problem, fraction: float) -> float:
    """Roughness of the RHS: RMS of its discrete Laplacian, normalized."""
    sample = _sample_grid(np.asarray(problem.rhs, dtype=float), fraction)
    n = sample.shape[0]
    charge(8.0 * n ** 3, "feature")
    padded = np.pad(sample, 1)
    laplacian = (
        6.0 * padded[1:-1, 1:-1, 1:-1]
        - padded[:-2, 1:-1, 1:-1]
        - padded[2:, 1:-1, 1:-1]
        - padded[1:-1, :-2, 1:-1]
        - padded[1:-1, 2:, 1:-1]
        - padded[1:-1, 1:-1, :-2]
        - padded[1:-1, 1:-1, 2:]
    )
    scale = float(np.sqrt(np.mean(sample ** 2))) + 1e-12
    return float(np.sqrt(np.mean(laplacian ** 2))) / scale


def deviation(problem, fraction: float) -> float:
    """Standard deviation of the sampled RHS values."""
    sample = _sample_grid(np.asarray(problem.rhs, dtype=float), fraction)
    charge(sample.size, "feature")
    return float(np.std(sample))


def zeros(problem, fraction: float) -> float:
    """Fraction of (near-)zero entries in the sampled RHS."""
    sample = _sample_grid(np.asarray(problem.rhs, dtype=float), fraction)
    charge(sample.size, "feature")
    return float(np.mean(np.abs(sample) < 1e-12))


def value_range(problem, fraction: float) -> float:
    """Range of the coefficient field (how "variable" the operator is)."""
    sample = _sample_grid(np.asarray(problem.coefficient, dtype=float), fraction)
    charge(sample.size, "feature")
    return float(np.max(sample) - np.min(sample)) if sample.size else 0.0


def size_feature(problem, fraction: float) -> float:
    """Log2 of the grid dimension."""
    charge(1.0, "feature")
    return math.log2(max(problem.rhs.shape[0], 2))


def build_feature_set() -> FeatureSet:
    """Helmholtz 3D's feature set (5 properties x 3 levels)."""
    return FeatureSet(
        [
            FeatureExtractor("residual", residual_measure, level_fractions=[0.1, 0.3, 1.0]),
            FeatureExtractor("deviation", deviation),
            FeatureExtractor("zeros", zeros),
            FeatureExtractor("range", value_range),
            FeatureExtractor("size", size_feature, level_fractions=[1.0, 1.0, 1.0]),
        ]
    )
