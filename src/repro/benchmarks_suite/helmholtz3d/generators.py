"""Input generators for the Helmholtz 3D benchmark.

Each input is a (right-hand side, coefficient field) pair on a small 3-D
grid.  As in Poisson 2D, the spectral content of the RHS determines which
solver wins; the coefficient field adds a second axis of variation (strongly
varying coefficients slow the smoothers further).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.benchmarks_suite.helmholtz3d.benchmark import HelmholtzInput
from repro.core.inputs import per_index_rng

GRID_SIZES = (7, 11, 15)


def _grid(rng: np.random.Generator) -> int:
    return int(rng.choice(GRID_SIZES))


def _mode(n: int, kx: int, ky: int, kz: int) -> np.ndarray:
    coords = np.arange(1, n + 1) / (n + 1)
    sx = np.sin(math.pi * kx * coords)
    sy = np.sin(math.pi * ky * coords)
    sz = np.sin(math.pi * kz * coords)
    return sx[:, None, None] * sy[None, :, None] * sz[None, None, :]


def _coefficient(rng: np.random.Generator, n: int, variability: float) -> np.ndarray:
    """A non-negative coefficient field with the given relative variability."""
    base = float(rng.uniform(0.0, 5.0))
    field = base + variability * rng.random((n, n, n)) * max(base, 1.0)
    return np.abs(field)


def smooth(rng: np.random.Generator) -> HelmholtzInput:
    """Low-frequency RHS with a mild coefficient field."""
    n = _grid(rng)
    f = np.zeros((n, n, n))
    for _ in range(int(rng.integers(1, 3))):
        f += float(rng.uniform(0.5, 2.0)) * _mode(
            n, int(rng.integers(1, 3)), int(rng.integers(1, 3)), int(rng.integers(1, 3))
        )
    return HelmholtzInput(rhs=f, coefficient=_coefficient(rng, n, 0.1))


def oscillatory(rng: np.random.Generator) -> HelmholtzInput:
    """High-frequency RHS: cheap smoothers suffice."""
    n = _grid(rng)
    f = np.zeros((n, n, n))
    for _ in range(int(rng.integers(2, 5))):
        k = lambda: int(rng.integers(max(2, n // 2), n + 1))
        f += float(rng.uniform(0.5, 2.0)) * _mode(n, k(), k(), k())
    return HelmholtzInput(rhs=f, coefficient=_coefficient(rng, n, 0.2))


def point_sources(rng: np.random.Generator) -> HelmholtzInput:
    """Sparse spike sources on an otherwise zero RHS."""
    n = _grid(rng)
    f = np.zeros((n, n, n))
    for _ in range(int(rng.integers(1, 6))):
        x, y, z = rng.integers(0, n, size=3)
        f[x, y, z] = float(rng.uniform(-5.0, 5.0))
    return HelmholtzInput(rhs=f, coefficient=_coefficient(rng, n, 0.3))


def rough_coefficient(rng: np.random.Generator) -> HelmholtzInput:
    """Strongly varying coefficient field with mixed-spectrum RHS."""
    n = _grid(rng)
    f = rng.normal(0.0, 1.0, size=(n, n, n))
    return HelmholtzInput(rhs=f, coefficient=_coefficient(rng, n, 3.0))


def white_noise(rng: np.random.Generator) -> HelmholtzInput:
    """White-noise RHS with a mild coefficient field."""
    n = _grid(rng)
    return HelmholtzInput(
        rhs=rng.normal(0.0, 1.0, size=(n, n, n)),
        coefficient=_coefficient(rng, n, 0.1),
    )


SYNTHETIC_FAMILIES = [smooth, oscillatory, point_sources, rough_coefficient, white_noise]


def synthetic_item(index: int, seed: int = 0) -> HelmholtzInput:
    """Input ``index`` of the Helmholtz 3D population (pure in (index, seed))."""
    rng = per_index_rng(seed, index, "helmholtz3d", "synthetic")
    family = SYNTHETIC_FAMILIES[index % len(SYNTHETIC_FAMILIES)]
    return family(rng)


def generate_synthetic(n: int, seed: int = 0) -> List[HelmholtzInput]:
    """The Helmholtz 3D input population used in Table 1."""
    return [synthetic_item(i, seed) for i in range(n)]
