"""The Helmholtz 3D benchmark: input type, configuration space, program.

Mirrors Poisson 2D with a 3-D variable-coefficient operator; the direct
solver is a sparse LU factorization rather than a fast transform.  Accuracy
is the same log error-reduction ratio with the paper's threshold of 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.benchmarks_suite.base import Benchmark, InputGenerator
from repro.lang.accuracy import AccuracyMetric, AccuracyRequirement
from repro.lang.config import (
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    IntegerParameter,
)
from repro.lang.program import PetaBricksProgram

#: Accuracy threshold from the paper (10^7 error reduction).
ACCURACY_THRESHOLD = 7.0


@dataclass
class HelmholtzInput:
    """A Helmholtz problem instance: right-hand side plus coefficient field."""

    rhs: np.ndarray
    coefficient: np.ndarray
    _exact: Optional[np.ndarray] = field(default=None, repr=False)

    def __len__(self) -> int:
        return int(self.rhs.size)

    def exact_solution(self) -> np.ndarray:
        """Reference solution (cached; computed outside the cost model)."""
        if self._exact is None:
            from repro.benchmarks_suite.helmholtz3d import solvers

            self._exact = solvers.exact_solution(
                np.asarray(self.rhs, dtype=float),
                np.asarray(self.coefficient, dtype=float),
            )
        return self._exact


def build_config_space() -> ConfigurationSpace:
    """Configuration space: solver choice plus its tunables."""
    space = ConfigurationSpace()
    space.add(
        CategoricalParameter("solver", ["multigrid", "jacobi", "sor", "direct"])
    )
    space.add(IntegerParameter("iterations", 5, 300, log_scale=True))
    space.add(CategoricalParameter("cycle_shape", ["V", "W"]))
    space.add(IntegerParameter("cycles", 1, 12))
    space.add(IntegerParameter("pre_smooth", 1, 4))
    space.add(IntegerParameter("post_smooth", 1, 4))
    return space


def run_helmholtz(config: Configuration, problem: HelmholtzInput) -> np.ndarray:
    """Solve the Helmholtz problem with the configured solver."""
    from repro.benchmarks_suite.helmholtz3d import solvers

    f = np.asarray(problem.rhs, dtype=float)
    c = np.asarray(problem.coefficient, dtype=float)
    solver = config["solver"]
    if solver == "direct":
        return solvers.direct_sparse(f, c)
    if solver == "jacobi":
        return solvers.jacobi(f, c, iterations=int(config["iterations"]))
    if solver == "sor":
        return solvers.sor(f, c, iterations=int(config["iterations"]))
    if solver == "multigrid":
        return solvers.multigrid(
            f,
            c,
            cycles=int(config["cycles"]),
            cycle_shape=config["cycle_shape"],
            pre_smooth=int(config["pre_smooth"]),
            post_smooth=int(config["post_smooth"]),
        )
    raise ValueError(f"unknown solver {solver!r}")


def helmholtz_accuracy(problem: HelmholtzInput, solution: np.ndarray) -> float:
    """Log10 ratio of initial-guess error to achieved error."""
    exact = problem.exact_solution()
    initial_error = float(np.sqrt(np.mean(exact ** 2)))
    output_error = float(np.sqrt(np.mean((exact - solution) ** 2)))
    return float(np.log10((initial_error + 1e-300) / (output_error + 1e-300)))


class Helmholtz3DBenchmark(Benchmark):
    """The paper's Helmholtz 3D benchmark (variable accuracy)."""

    name = "helmholtz3d"

    def build_program(self) -> PetaBricksProgram:
        from repro.benchmarks_suite.helmholtz3d import features

        return PetaBricksProgram(
            name=self.name,
            config_space=build_config_space(),
            run_func=run_helmholtz,
            features=features.build_feature_set(),
            accuracy_metric=AccuracyMetric("log_error_ratio", helmholtz_accuracy),
            accuracy_requirement=AccuracyRequirement(
                accuracy_threshold=ACCURACY_THRESHOLD, satisfaction_threshold=0.95
            ),
        )

    def input_generators(self) -> Dict[str, InputGenerator]:
        from repro.benchmarks_suite.helmholtz3d import generators

        return {
            "synthetic": InputGenerator(
                name="synthetic",
                description="RHS/coefficient pairs with smooth, oscillatory, sparse, rough, and noisy structure",
                item=generators.synthetic_item,
            ),
        }
