"""Load generator for the selector server: synthetic traffic, real numbers.

The serving claim worth measuring is twofold: selection stays cheap under
concurrency (p50/p99 selection latency, requests per second), and
duplication in the traffic never multiplies execution work (a trace with
50%+ duplicate inputs must execute each unique input at most once, the
duplicates answered by coalescing or run-cache recall).  This module
builds such traces and measures both claims against a live server.

Traces are index-shaped: each request names input ``index`` of the test's
per-index seeded population (:func:`repro.serving.protocol.index_input`),
so the trace itself is a list of small integers and the inputs are
materialized server-side, deterministically, exactly as training did.

:func:`run_load` is the reusable core -- the serving benchmark
(``benchmarks/test_bench_serving.py``) and the ``scripts/loadgen.py`` CLI
both call it and write its metrics dict to ``BENCH_serving.json``.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Dict, List, Optional

from repro.core.pipeline import DeployedProgram
from repro.runtime.telemetry import LatencyRecorder
from repro.serving import protocol
from repro.serving.client import ServingClient
from repro.serving.server import SelectorServer, ServerThread, ServingConfig


def build_trace(
    requests: int,
    unique_inputs: int,
    seed: int = 0,
    duplicate_fraction: float = 0.5,
) -> List[int]:
    """A deterministic request trace with a controlled duplication level.

    The first ``unique_inputs`` requests cover every distinct index once
    (so "unique inputs" means what it says); the rest draw uniformly from
    the same index pool.  With ``requests >= 2 * unique_inputs`` at least
    half the trace is duplicates -- the regime the coalescing acceptance
    check wants.  The trace is then deterministically shuffled, so
    duplicates interleave across clients instead of trailing the uniques.

    Args:
        requests: total trace length.
        unique_inputs: number of distinct input indices (0-based).
        seed: shuffle/draw seed.
        duplicate_fraction: informational target; the actual fraction is
            ``1 - unique_inputs / requests`` and is reported in the metrics.
    """
    if requests < unique_inputs:
        raise ValueError("requests must be >= unique_inputs")
    if unique_inputs < 1:
        raise ValueError("unique_inputs must be >= 1")
    rng = random.Random(seed)
    trace = list(range(unique_inputs))
    trace += [rng.randrange(unique_inputs) for _ in range(requests - unique_inputs)]
    rng.shuffle(trace)
    return trace


def replay(
    host: str,
    port: int,
    test: str,
    trace: List[int],
    clients: int = 4,
    input_seed: int = 0,
) -> Dict[str, Any]:
    """Replay a trace against a running server from ``clients`` connections.

    The trace is dealt round-robin across client threads; each thread runs
    its share sequentially on its own connection.  Returns client-side
    observations: wall-clock per-request latency plus the server-reported
    per-request fields, and any error frames received.

    A dropped connection mid-trace does not kill the thread: the failed
    request is recorded as a ``client_error`` frame and the thread
    reconnects (under the client's connect retry policy) for the rest of
    its share.  Only when reconnection itself fails are the remaining
    requests written off as ``client_error`` frames too.
    """
    if clients < 1:
        raise ValueError("clients must be >= 1")
    shares: List[List[int]] = [trace[i::clients] for i in range(clients)]
    responses: List[List[Dict[str, Any]]] = [[] for _ in range(clients)]
    wall = LatencyRecorder()
    wall_lock = threading.Lock()

    def worker(slot: int) -> None:
        client: Optional[ServingClient] = ServingClient(host, port)
        try:
            for position, index in enumerate(shares[slot]):
                if client is None:
                    try:
                        client = ServingClient(host, port)
                    except OSError as error:
                        responses[slot].extend(
                            {"type": "client_error",
                             "error": f"reconnect failed: {type(error).__name__}: {error}"}
                            for _ in shares[slot][position:]
                        )
                        return
                started = time.perf_counter()
                try:
                    response = client.run(
                        test, protocol.index_input(index, seed=input_seed)
                    )
                except (ConnectionError, OSError) as error:
                    response = {
                        "type": "client_error",
                        "error": f"{type(error).__name__}: {error}",
                    }
                    try:
                        client.close()
                    except OSError:
                        pass
                    client = None
                elapsed = time.perf_counter() - started
                with wall_lock:
                    wall.record(elapsed)
                responses[slot].append(response)
        finally:
            if client is not None:
                client.close()

    threads = [
        threading.Thread(target=worker, args=(slot,), name=f"loadgen-{slot}")
        for slot in range(clients)
        if shares[slot]
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started

    flat = [response for share in responses for response in share]
    errors = [r for r in flat if r.get("type") != "result"]
    return {
        "responses": flat,
        "errors": errors,
        "duration_seconds": duration,
        "client_wall": wall,
    }


def run_load(
    test: str,
    deployed: DeployedProgram,
    requests: int = 64,
    unique_inputs: int = 8,
    clients: int = 4,
    trace_seed: int = 0,
    input_seed: int = 0,
    config: Optional[ServingConfig] = None,
    allow_errors: bool = False,
) -> Dict[str, Any]:
    """Serve ``deployed`` under ``test``, replay a duplicate-heavy trace,
    and report latency/throughput/coalescing metrics.

    The returned dict is the ``BENCH_serving.json`` schema: request counts,
    duration and throughput, selection/request latency percentiles in
    milliseconds, and the execution-dedup accounting -- ``executions`` (runs
    that actually ran), ``coalesced`` (answered by piggybacking on an
    in-flight twin), ``cache_hits`` (answered by run-cache recall), and
    ``each_unique_executed_at_most_once`` (the acceptance predicate:
    ``executions <= unique_inputs``).

    With ``allow_errors`` (chaos runs), error and ``client_error`` frames
    are counted in the metrics instead of raising, and the degraded-mode
    accounting (``degraded``, ``breaker_open``, breaker state) reports how
    the server shed the injected failures.
    """
    trace = build_trace(requests, unique_inputs, seed=trace_seed)
    server = SelectorServer(config=config)
    server.publish(test, deployed)
    with ServerThread(server):
        host, port = server.address
        replayed = replay(
            host, port, test, trace, clients=clients, input_seed=input_seed
        )
    if replayed["errors"] and not allow_errors:
        first = replayed["errors"][0]
        raise RuntimeError(
            f"{len(replayed['errors'])} request(s) failed; first: {first}"
        )

    telemetry = server.telemetry
    counters = telemetry.counters
    selection = telemetry.latencies.get("serve.selection", LatencyRecorder())
    execution = telemetry.latencies.get("serve.execution", LatencyRecorder())
    wall: LatencyRecorder = replayed["client_wall"]
    duration = replayed["duration_seconds"]
    executions = counters.get("runs_executed", 0)

    return {
        "test": test,
        "requests": requests,
        "unique_inputs": unique_inputs,
        "clients": clients,
        "duplicate_fraction": 1.0 - unique_inputs / requests,
        "duration_seconds": duration,
        "throughput_rps": requests / duration if duration > 0 else 0.0,
        "selection_p50_ms": selection.p50 * 1e3,
        "selection_p99_ms": selection.p99 * 1e3,
        "execution_p50_ms": execution.p50 * 1e3,
        "execution_p99_ms": execution.p99 * 1e3,
        "request_p50_ms": wall.p50 * 1e3,
        "request_p99_ms": wall.p99 * 1e3,
        "responses": len(replayed["responses"]),
        "executions": executions,
        "coalesced": counters.get("serve_coalesced", 0),
        "cache_hits": counters.get("serve_cache_hits", 0),
        "rejected": counters.get("serve_rejected", 0),
        "labels_clamped": counters.get("selector_labels_clamped", 0),
        "each_unique_executed_at_most_once": executions <= unique_inputs,
        "errors": len(replayed["errors"]),
        "client_errors": sum(
            1 for r in replayed["responses"] if r.get("type") == "client_error"
        ),
        "degraded": sum(1 for r in replayed["responses"] if r.get("degraded")),
        "breaker_open": counters.get("serve_breaker_open", 0),
        "breaker": server.breaker.snapshot(),
    }
