"""Synchronous client for the selector server.

A thin blocking wrapper over one TCP connection: build frames with
:mod:`repro.serving.protocol`, write them, read newline-delimited
responses.  The tests, the load generator, and the CLI all talk to the
server through this class, so the wire format has exactly one
client-side implementation.

The client is deliberately single-connection and not thread-safe; the
load generator opens one client per simulated connection, which is also
the honest way to exercise the server's per-connection fan-out.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional, Tuple

from repro.resilience.retry import RetryPolicy
from repro.serving import protocol

#: Connect retry: a client racing server startup (or a restarting server
#: rebinding its fixed port) backs off briefly instead of failing on the
#: first ConnectionRefusedError.
CONNECT_POLICY = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=1.0)


class ServingClient:
    """One blocking connection to a :class:`~repro.serving.server.SelectorServer`.

    Usable as a context manager::

        with ServingClient(host, port) as client:
            response = client.run("sort2", protocol.index_input(3))

    Connection establishment retries under :data:`CONNECT_POLICY`; once
    connected, transport errors surface to the caller (the load generator
    reconnects, tests fail loudly).
    """

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.address: Tuple[str, int] = (host, int(port))
        self._sock = CONNECT_POLICY.run(
            lambda: socket.create_connection(self.address, timeout=timeout),
            retryable=(ConnectionRefusedError, TimeoutError),
        )
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing ---------------------------------------------------------

    def send(self, message: Dict[str, Any]) -> None:
        """Write one request frame (without waiting for the response)."""
        self._sock.sendall(protocol.encode_message(message))

    def recv(self) -> Dict[str, Any]:
        """Read the next response frame.

        Raises:
            ConnectionError: if the server closed the connection.
        """
        line = self._reader.readline()
        if not line:
            raise ConnectionError(f"server at {self.address} closed the connection")
        return protocol.decode_message(line)

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One synchronous round trip: send a frame, read one response."""
        self.send(message)
        return self.recv()

    def _allocate_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- the protocol, method-shaped --------------------------------------

    def run(
        self,
        test: str,
        input_spec: Dict[str, Any],
        want_output: bool = False,
        request_id: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Run one input through the model serving ``test``.

        Returns the raw ``result`` (or ``error``) response dict; use
        :func:`repro.serving.protocol.decode_output` for the output payload.
        """
        if request_id is None:
            request_id = self._allocate_id()
        return self.request(
            protocol.run_request(request_id, test, input_spec, want_output=want_output)
        )

    def swap(self, test: str, deployed: Any) -> Dict[str, Any]:
        """Hot-swap the model serving ``test``; returns the ``swapped`` frame."""
        return self.request(protocol.swap_request(test, deployed))

    def stats(self) -> Dict[str, Any]:
        """The server's registry/telemetry snapshot."""
        return self.request({"type": "stats"})

    def ping(self) -> Dict[str, Any]:
        """Liveness probe; returns the ``pong`` frame."""
        return self.request({"type": "ping"})

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
