"""Per-benchmark model registry with atomic hot-swap.

The serving layer keeps one :class:`~repro.core.pipeline.DeployedProgram`
per test name.  Retraining (offline, or eventually online -- see the
ROADMAP's adaptation item) produces a new deployed program that must
replace the old one *atomically*: a request either sees the old model or
the new one, never a half-swapped hybrid of one model's classifier and the
other's landmarks.

Atomicity comes from immutability: the registry stores frozen
:class:`ModelEntry` snapshots (deployed program + monotonically increasing
version) and swaps whole entries under a lock.  A request resolves its
entry once, up front, and uses that snapshot for its entire lifetime --
requests in flight across a swap finish on the model they started with,
which is exactly the semantics a zero-downtime deployment wants.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List

from repro.core.pipeline import DeployedProgram


@dataclass(frozen=True)
class ModelEntry:
    """One immutable registry snapshot: a deployed program and its version."""

    test: str
    deployed: DeployedProgram
    version: int


class ModelRegistry:
    """Thread-safe mapping of test name -> current :class:`ModelEntry`.

    Versions start at 1 per test and increase by one per publish, so a
    response can name exactly which model answered it and a hot-swap is
    observable as a version step with no intermediate state.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, ModelEntry] = {}

    def publish(self, test: str, deployed: DeployedProgram) -> ModelEntry:
        """Atomically install ``deployed`` as the model serving ``test``.

        Returns the new entry (version 1 for a first publish, previous + 1
        for a hot-swap).
        """
        if not isinstance(deployed, DeployedProgram):
            raise TypeError(
                f"expected a DeployedProgram, got {type(deployed).__name__}"
            )
        with self._lock:
            current = self._entries.get(test)
            version = 1 if current is None else current.version + 1
            entry = ModelEntry(test=test, deployed=deployed, version=version)
            self._entries[test] = entry
            return entry

    def get(self, test: str) -> ModelEntry:
        """The current entry for ``test``.

        Raises:
            KeyError: if no model has been published under that name.
        """
        with self._lock:
            if test not in self._entries:
                raise KeyError(
                    f"no model published for test {test!r}; "
                    f"available: {sorted(self._entries)}"
                )
            return self._entries[test]

    def tests(self) -> List[str]:
        """The test names with a published model, sorted."""
        with self._lock:
            return sorted(self._entries)

    def versions(self) -> Dict[str, int]:
        """Current version per published test (for stats responses)."""
        with self._lock:
            return {test: entry.version for test, entry in self._entries.items()}

    def __contains__(self, test: str) -> bool:
        with self._lock:
            return test in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
