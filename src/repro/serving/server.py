"""The selector as a live service: an asyncio TCP server over DeployedProgram.

The paper's end product is a cheap production-time classifier that picks
the best algorithmic configuration per input.  :class:`SelectorServer`
makes that artifact *serve*: clients send newline-JSON ``run`` requests
(see :mod:`repro.serving.protocol`), the server classifies the input with
the test's registered model, runs the selected landmark configuration
through the shared measurement :class:`~repro.runtime.Runtime`, and
answers with the outcome plus per-request telemetry.

Three properties carry the load story:

* **Request coalescing** -- identical in-flight inputs (same test, same
  content-keyed input digest) share one execution: the first request
  creates the job, duplicates await the same future and are answered from
  it (``coalesced: true``).  Once a job finishes, its result lives in the
  runtime's shared :class:`~repro.runtime.RunCache`, so later repeats are
  recalls (``cache_hit: true``).  Between the two mechanisms, a trace with
  any level of duplication executes each unique input at most once.
* **Bounded admission** -- at most ``max_pending`` *distinct* executions
  may be in flight; a request that would start one beyond the cap is
  rejected immediately with a 503-style error instead of queueing without
  bound.  Coalesced duplicates piggyback on admitted work (they add no
  execution) and are therefore always accepted.
* **Atomic hot-swap** -- models live in a :class:`~repro.serving.registry.
  ModelRegistry`; a ``swap`` message (or :meth:`SelectorServer.publish`)
  replaces a test's model atomically and bumps its version.  Requests in
  flight finish on the model snapshot they resolved at admission.

Executions run on a dedicated thread pool (default: one worker, which
serializes program runs exactly like the serial executor) so the event
loop stays responsive while the cost model grinds.  All counters and
latency distributions go through the runtime's
:class:`~repro.runtime.telemetry.Telemetry`, so ``stats`` responses and
``Runtime.stats()`` tell one coherent story.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

if TYPE_CHECKING:  # import at runtime is lazy (see _run_deployed)
    from repro.adaptation.feedback import FeedbackLog

from repro.core.pipeline import DeployedProgram, DeploymentOutcome
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import maybe_fail
from repro.runtime import RunCache, Runtime, SerialExecutor, input_key
from repro.serving import protocol
from repro.serving.protocol import (
    SERVING_PROTOCOL_VERSION,
    decode_message,
    encode_message,
    error_response,
)
from repro.serving.registry import ModelEntry, ModelRegistry


@dataclass
class ServingConfig:
    """Knobs of one :class:`SelectorServer`.

    Attributes:
        host: bind address; loopback by default (same trust model as the
            distributed executor -- payloads are pickles, so only expose
            the port to peers you would hand a Python interpreter).
        port: bind port; 0 picks an ephemeral port (read it back from
            :attr:`SelectorServer.address`).
        max_pending: admission cap on distinct in-flight executions; the
            request that would start execution ``max_pending + 1`` is
            rejected with a 503-style error.
        execution_workers: thread-pool width for program runs.  The default
            of 1 serializes executions (bit-identical to a sequential
            ``DeployedProgram.run`` loop by construction); raising it
            trades that simplicity for overlap, results staying identical
            because runs are pure.
        default_seed: population seed assumed by ``index`` input specs that
            do not name one.
        breaker_threshold: consecutive execution failures that open the
            serving circuit breaker.
        breaker_recovery_seconds: how long the breaker stays open before
            admitting half-open trial executions.
        degraded_fallback: serve degraded answers instead of errors when no
            model is registered for a (known-benchmark) test -- the
            benchmark's default configuration runs with ``landmark: -1`` --
            or when the breaker is open, in which case the answer is a
            no-execution degraded frame.  See ``docs/resilience.md``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_pending: int = 64
    execution_workers: int = 1
    default_seed: int = 0
    breaker_threshold: int = 5
    breaker_recovery_seconds: float = 30.0
    degraded_fallback: bool = True


class SelectorServer:
    """Asyncio deployment server wrapping a :class:`ModelRegistry`.

    Args:
        registry: model registry to serve; a fresh empty one by default.
        runtime: measurement runtime shared by every served model (the
            coalescing/recall story needs one shared
            :class:`~repro.runtime.RunCache`).  Defaults to a serial,
            caching runtime.
        config: serving knobs; defaults to :class:`ServingConfig`.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        runtime: Optional[Runtime] = None,
        config: Optional[ServingConfig] = None,
        feedback: Optional["FeedbackLog"] = None,
    ) -> None:
        self.registry = registry if registry is not None else ModelRegistry()
        #: Optional adaptation feedback log; when attached, every execution
        #: appends one record (coalesced duplicates share their job's) --
        #: the signal the drift monitor and retrainer consume.
        self.feedback = feedback
        if runtime is None:
            runtime = Runtime(
                executor=SerialExecutor(),
                cache=RunCache(max_entries=RunCache.DEFAULT_MAX_ENTRIES),
            )
        self.runtime = runtime
        self.config = config if config is not None else ServingConfig()
        if self.config.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.telemetry = runtime.telemetry
        #: Execution circuit breaker: consecutive pool-thread failures trip
        #: it open, and the server answers degraded until recovery.
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            recovery_timeout=self.config.breaker_recovery_seconds,
        )
        #: (test, input digest) -> in-flight execution task; the coalescing map.
        self._inflight: Dict[Tuple[str, str], "asyncio.Task"] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.config.execution_workers),
            thread_name_prefix="repro-serve",
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Tuple[str, int]] = None

    # -- model management ------------------------------------------------

    def publish(self, test: str, deployed: DeployedProgram) -> ModelEntry:
        """Install (or hot-swap) the model serving ``test``.

        The deployed program is rebound to the *server's* runtime so every
        model shares one run cache -- that sharing is what lets repeats of
        an input recall across swaps and across tests sharing a program.
        Safe to call from any thread while the server runs; requests in
        flight finish on the entry they resolved.
        """
        rebound = DeployedProgram(
            program=deployed.program,
            landmarks=deployed.landmarks,
            classifier=deployed.classifier,
            runtime=self.runtime,
        )
        entry = self.registry.publish(test, rebound)
        self.telemetry.count("serve_models_published")
        return entry

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting connections; returns ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            # Same restart-path requirement as Coordinator's listener: a
            # serving process must rebind its fixed port immediately even
            # while old connections linger in TIME_WAIT.
            reuse_address=True,
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled or stopped."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Stop accepting connections and release the execution pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._inflight.values()):
            task.cancel()
        self._inflight.clear()
        self._pool.shutdown(wait=True)

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = decode_message(line)
                except ValueError as error:
                    await self._send(
                        writer, write_lock,
                        error_response(protocol.BAD_REQUEST, f"malformed frame: {error}"),
                    )
                    continue
                kind = message.get("type")
                if kind == "run":
                    # One task per request: a slow execution must not stall
                    # the connection's later (possibly coalescable) frames.
                    task = asyncio.ensure_future(
                        self._handle_run(message, writer, write_lock)
                    )
                    pending.add(task)
                    task.add_done_callback(pending.discard)
                elif kind == "swap":
                    await self._handle_swap(message, writer, write_lock)
                elif kind == "stats":
                    await self._send(writer, write_lock, {"type": "stats", **self.stats()})
                elif kind == "ping":
                    await self._send(
                        writer, write_lock,
                        {"type": "pong", "protocol": SERVING_PROTOCOL_VERSION},
                    )
                else:
                    await self._send(
                        writer, write_lock,
                        error_response(
                            protocol.BAD_REQUEST,
                            f"unknown message type {kind!r}",
                            message.get("id"),
                        ),
                    )
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, lock: asyncio.Lock, message: Dict[str, Any]
    ) -> None:
        try:
            async with lock:
                writer.write(encode_message(message))
                await writer.drain()
        except (ConnectionError, OSError):
            # The client went away; its answer has nowhere to go.  The
            # execution (if any) completes regardless and stays cached.
            pass

    # -- request handling --------------------------------------------------

    async def _handle_run(
        self,
        message: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        request_id = message.get("id")
        received = time.perf_counter()
        self.telemetry.count("serve_requests")

        test = message.get("test")
        if not isinstance(test, str):
            await self._reject(
                writer, write_lock, protocol.BAD_REQUEST,
                "run request carries no 'test' name", request_id,
            )
            return
        entry: Optional[ModelEntry]
        fallback_program = None
        try:
            entry = self.registry.get(test)
        except KeyError as error:
            # No model published for this test.  With degraded fallback on
            # and the test naming a known benchmark, serve its default
            # configuration (landmark -1) instead of failing the request.
            entry = None
            if self.config.degraded_fallback:
                fallback_program = self._fallback_program(test)
            if fallback_program is None:
                await self._reject(
                    writer, write_lock, protocol.UNKNOWN_TEST, str(error), request_id
                )
                return
        try:
            program_input = self._decode_input(test, message.get("input"))
        except ValueError as error:
            await self._reject(
                writer, write_lock, protocol.BAD_REQUEST, str(error), request_id
            )
            return

        key = (test, input_key(program_input))
        job = self._inflight.get(key)
        coalesced = job is not None
        if job is None:
            if len(self._inflight) >= self.config.max_pending:
                self.telemetry.count("serve_rejected")
                await self._reject(
                    writer, write_lock, protocol.OVERLOADED,
                    f"admission control: {len(self._inflight)} executions in "
                    f"flight (cap {self.config.max_pending}); retry later",
                    request_id,
                )
                return
            if not self.breaker.allow():
                # Executions are tripping; shed load without executing.
                self.telemetry.count("serve_breaker_open")
                if self.config.degraded_fallback:
                    self.telemetry.count("serve_degraded")
                    await self._send(
                        writer, write_lock,
                        self._degraded_response(test, request_id, "breaker_open"),
                    )
                else:
                    await self._reject(
                        writer, write_lock, protocol.OVERLOADED,
                        "circuit breaker open: executions suspended; retry later",
                        request_id,
                    )
                return
            if entry is not None:
                job = asyncio.ensure_future(
                    self._execute(key, entry, program_input, message.get("input"))
                )
            else:
                job = asyncio.ensure_future(
                    self._execute_fallback(key, fallback_program, program_input)
                )
            self._inflight[key] = job
        else:
            self.telemetry.count("serve_coalesced")

        try:
            outcome, selection_seconds, execution_seconds = await job
        except Exception as error:  # noqa: BLE001 - surface to the client
            self.telemetry.count("serve_errors")
            await self._reject(
                writer, write_lock, protocol.EXECUTION_FAILED,
                f"{type(error).__name__}: {error}", request_id,
            )
            return

        response: Dict[str, Any] = {
            "type": "result",
            "id": request_id,
            "test": test,
            "landmark": outcome.landmark_index,
            "time": outcome.result.time,
            "accuracy": outcome.result.accuracy,
            "feature_cost": outcome.feature_extraction_cost,
            "total_time": outcome.total_time,
            "cache_hit": outcome.cache_hit,
            "coalesced": coalesced,
            "model_version": entry.version if entry is not None else None,
            "selection_seconds": selection_seconds,
            "execution_seconds": execution_seconds,
            # Degraded contract: a negative landmark marks an answer served
            # without the classifier (no-model fallback).
            "degraded": outcome.landmark_index < 0,
        }
        if message.get("want_output"):
            response["output"] = protocol.encode_payload(outcome.result.output)
        self.telemetry.record_latency(
            "serve.request", time.perf_counter() - received
        )
        await self._send(writer, write_lock, response)

    @staticmethod
    def _fallback_program(test: str) -> Optional[Any]:
        """The benchmark program behind ``test``, or None when unknown."""
        from repro.benchmarks_suite import get_benchmark  # lazy: heavy import

        try:
            return get_benchmark(test).benchmark.program
        except KeyError:
            return None

    def _degraded_response(
        self, test: str, request_id: Any, reason: str
    ) -> Dict[str, Any]:
        """A no-execution degraded result frame (breaker-open answer)."""
        return {
            "type": "result",
            "id": request_id,
            "test": test,
            "landmark": -1,
            "time": 0.0,
            "accuracy": 0.0,
            "feature_cost": 0.0,
            "total_time": 0.0,
            "cache_hit": False,
            "coalesced": False,
            "model_version": None,
            "selection_seconds": 0.0,
            "execution_seconds": 0.0,
            "degraded": True,
            "degraded_reason": reason,
        }

    async def _execute(
        self,
        key: Tuple[str, str],
        entry: ModelEntry,
        program_input: Any,
        input_spec: Any = None,
    ) -> Tuple[DeploymentOutcome, float, float]:
        """Run one admitted execution on the pool; owns the in-flight slot."""
        loop = asyncio.get_running_loop()
        try:
            outcome, selection_seconds, execution_seconds = await loop.run_in_executor(
                self._pool,
                self._run_deployed,
                entry.deployed,
                program_input,
                self.feedback,
                self._feedback_spec(entry.test, input_spec),
            )
        except Exception:
            self.breaker.record_failure()
            raise
        finally:
            # Clearing inside the coroutine (not a done-callback) guarantees
            # the slot is free before any awaiter resumes, so a follow-up
            # identical request becomes a cache recall, never a stale join.
            self._inflight.pop(key, None)
        self.breaker.record_success()
        self.telemetry.count("serve_executions")
        if self.feedback is not None:
            self.telemetry.count("serve_feedback_records")
        if outcome.cache_hit:
            self.telemetry.count("serve_cache_hits")
        self.telemetry.record_latency("serve.selection", selection_seconds)
        self.telemetry.record_latency("serve.execution", execution_seconds)
        return outcome, selection_seconds, execution_seconds

    async def _execute_fallback(
        self, key: Tuple[str, str], program: Any, program_input: Any
    ) -> Tuple[DeploymentOutcome, float, float]:
        """Degraded execution: the benchmark's default configuration.

        No classifier, no landmarks -- the answer an undeployed system would
        give.  Reported with ``landmark: -1`` so clients can tell a degraded
        answer from a selected one; still coalesced, cached, and
        breaker-guarded exactly like a model-backed execution.
        """
        loop = asyncio.get_running_loop()
        try:
            outcome, execution_seconds = await loop.run_in_executor(
                self._pool, self._run_default, self.runtime, program, program_input
            )
        except Exception:
            self.breaker.record_failure()
            raise
        finally:
            self._inflight.pop(key, None)
        self.breaker.record_success()
        self.telemetry.count("serve_executions")
        self.telemetry.count("serve_degraded")
        if outcome.cache_hit:
            self.telemetry.count("serve_cache_hits")
        self.telemetry.record_latency("serve.execution", execution_seconds)
        return outcome, 0.0, execution_seconds

    @staticmethod
    def _run_default(
        runtime: Runtime, program: Any, program_input: Any
    ) -> Tuple[DeploymentOutcome, float]:
        """Pool-thread body of a degraded (default-configuration) run."""
        maybe_fail("serve.execute", detail=program.name)
        start = time.perf_counter()
        configuration = program.default_configuration()
        result, cache_hit = runtime.run_info(
            program, configuration, program_input, need_output=True
        )
        outcome = DeploymentOutcome(
            result=result,
            configuration=configuration,
            landmark_index=-1,
            feature_extraction_cost=0.0,
            cache_hit=cache_hit,
        )
        return outcome, time.perf_counter() - start

    def _feedback_spec(self, test: str, input_spec: Any) -> Optional[Dict[str, Any]]:
        """The wire input spec, enriched so a trace can rematerialize it.

        An ``index`` spec only names an index on the wire (the test rides
        the message envelope and the seed may be the server default);
        folding both in makes the stored record self-contained for offline
        replay.  Pickle specs already carry their payload.
        """
        if self.feedback is None or not isinstance(input_spec, dict):
            return None
        if input_spec.get("encoding") == "index":
            return {
                **input_spec,
                "test": test,
                "seed": int(input_spec.get("seed", self.config.default_seed)),
            }
        return dict(input_spec)

    @staticmethod
    def _run_deployed(
        deployed: DeployedProgram,
        program_input: Any,
        feedback: Optional["FeedbackLog"] = None,
        input_spec: Optional[Dict[str, Any]] = None,
    ) -> Tuple[DeploymentOutcome, float, float]:
        """The pool-thread body: one timed ``DeployedProgram.run``.

        Mirrors :meth:`DeployedProgram.run` exactly (selection, then a
        ``need_output`` run through the runtime) but times the two halves
        separately, because selection latency -- the classifier's whole
        selling point -- is the distribution the serving telemetry exists
        to report.  With a feedback log attached, the full feature vector
        is extracted here too (on the pool thread, in its own scoped cost
        counter, so observability work never pollutes the served cost) and
        the request's training signal appended.
        """
        from repro.runtime import default_runtime  # local: avoid cycle at import

        # Fault site: chaos plans fail executions here to trip the breaker.
        maybe_fail("serve.execute", detail=deployed.program.name)
        start = time.perf_counter()
        configuration, index, cost = deployed.select_configuration(program_input)
        selected = time.perf_counter()
        runtime = deployed.runtime if deployed.runtime is not None else default_runtime()
        result, cache_hit = runtime.run_info(
            deployed.program, configuration, program_input, need_output=True
        )
        finished = time.perf_counter()
        outcome = DeploymentOutcome(
            result=result,
            configuration=configuration,
            landmark_index=index,
            feature_extraction_cost=cost,
            cache_hit=cache_hit,
        )
        if feedback is not None:
            from repro.adaptation.feedback import FeedbackRecord  # lazy: no cycle

            # Single-row batch extraction: same numbers as extract_vector,
            # through the vectorized chunk path the trainers use.
            values = deployed.program.features.extract_batch([program_input])[0][0]
            feedback.append(
                FeedbackRecord(
                    features=tuple(float(value) for value in values),
                    predicted_label=index,
                    chosen_landmark=index,
                    observed_cost=float(outcome.total_time),
                    observed_accuracy=float(result.accuracy),
                    input_spec=input_spec,
                )
            )
        return outcome, selected - start, finished - selected

    async def _handle_swap(
        self,
        message: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        test = message.get("test")
        payload = message.get("payload")
        if not isinstance(test, str) or not isinstance(payload, str):
            await self._reject(
                writer, write_lock, protocol.BAD_REQUEST,
                "swap request needs a 'test' name and a 'payload'",
                message.get("id"),
            )
            return
        try:
            deployed = protocol.decode_payload(payload)
            entry = self.publish(test, deployed)
        except Exception as error:  # noqa: BLE001 - surface to the client
            await self._reject(
                writer, write_lock, protocol.BAD_REQUEST,
                f"swap failed: {type(error).__name__}: {error}", message.get("id"),
            )
            return
        self.telemetry.count("serve_swaps")
        await self._send(
            writer, write_lock,
            {"type": "swapped", "id": message.get("id"), "test": test,
             "version": entry.version},
        )

    async def _reject(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        code: int,
        error: str,
        request_id: Any = None,
    ) -> None:
        await self._send(writer, write_lock, error_response(code, error, request_id))

    # -- input decoding ----------------------------------------------------

    def _decode_input(self, test: str, spec: Any) -> Any:
        """Materialize the input a ``run`` request describes.

        Raises:
            ValueError: on a malformed spec (reported as a 400).
        """
        if not isinstance(spec, dict):
            raise ValueError("run request carries no 'input' spec")
        encoding = spec.get("encoding")
        if encoding == "pickle":
            payload = spec.get("payload")
            if not isinstance(payload, str):
                raise ValueError("pickle input spec needs a 'payload'")
            try:
                return protocol.decode_payload(payload)
            except Exception as error:
                raise ValueError(f"undecodable input payload: {error}") from None
        if encoding == "index":
            try:
                index = int(spec["index"])
            except (KeyError, TypeError, ValueError):
                raise ValueError("index input spec needs an integer 'index'") from None
            if index < 0:
                raise ValueError("input index must be non-negative")
            seed = int(spec.get("seed", self.config.default_seed))
            from repro.benchmarks_suite import get_benchmark  # lazy: heavy import

            try:
                variant = get_benchmark(test)
            except KeyError as error:
                raise ValueError(str(error)) from None
            variant_name = spec.get("variant") or variant.variant
            try:
                source = variant.benchmark.input_source(
                    index + 1, variant_name, seed=seed
                )
            except KeyError as error:
                raise ValueError(str(error)) from None
            return source.materialize(index)
        raise ValueError(f"unknown input encoding {encoding!r}")

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Registry, admission, and telemetry state as a plain dict."""
        return {
            "protocol": SERVING_PROTOCOL_VERSION,
            "address": list(self.address) if self.address else None,
            "models": self.registry.versions(),
            "inflight": len(self._inflight),
            "max_pending": self.config.max_pending,
            "breaker": self.breaker.snapshot(),
            "runtime": self.runtime.stats(),
        }


class ServerThread:
    """Run a :class:`SelectorServer` on a background event-loop thread.

    The synchronous harness the tests, the load generator, and the CLI
    share: enter the context manager, talk to ``server.address`` over TCP
    from any thread, and the loop shuts the server down cleanly on exit.
    """

    def __init__(self, server: SelectorServer) -> None:
        self.server = server
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        assert self.server.address is not None, "server not started"
        return self.server.address

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serving",
            daemon=True,
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("serving thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as error:  # noqa: BLE001 - report to starter
            self._startup_error = error
            self._started.set()
            return
        self._started.set()
        await self._stop_event.wait()
        await self.server.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()
