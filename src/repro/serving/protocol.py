"""Wire protocol of the selector server: newline-delimited JSON frames.

The serving layer speaks the same framing dialect as the distributed
executor (:mod:`repro.runtime.distributed`): one JSON object per line over
TCP, with Python payloads riding in base64-encoded-pickle fields.  Keeping
the two protocols shaped alike means one set of debugging habits (and one
``nc``-friendly wire format) covers both subsystems.

Client -> server message types:

* ``run``   -- classify one input and run the selected landmark program::

      {"type": "run", "id": 7, "test": "sort2",
       "input": {"encoding": "index", "index": 12, "seed": 999},
       "want_output": false}

  The ``input`` spec comes in two encodings.  ``"index"`` names input
  ``index`` of the test's per-index seeded population (variant defaults to
  the registered one) -- a few bytes on the wire however large the input
  is, mirroring how the distributed executor ships row descriptors instead
  of rows.  ``"pickle"`` carries the input itself in ``payload`` as a
  base64 pickle.
* ``swap``  -- atomically hot-swap the model serving ``test``; ``payload``
  is a base64-pickled :class:`~repro.core.pipeline.DeployedProgram`.
* ``stats`` -- request the server's telemetry/registry snapshot.
* ``ping``  -- liveness probe.

Server -> client responses: ``result`` (fields below), ``swapped``,
``stats``, ``pong``, and ``error`` with an HTTP-flavoured ``code``
(400 malformed, 404 unknown test, 500 execution failure, 503 rejected by
admission control).  A ``result`` echoes the request ``id`` and carries
``landmark`` (chosen index), ``time`` / ``accuracy`` (the run's cost-model
measurements), ``feature_cost``, ``total_time``, ``cache_hit`` (recalled
from the shared run cache, not executed), ``coalesced`` (piggybacked on an
identical in-flight request), ``model_version`` (registry version that
answered), and ``selection_seconds`` / ``execution_seconds`` (wall-clock
telemetry split).  ``output`` (base64 pickle) appears only when the
request set ``want_output``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.runtime.distributed import decode_payload, encode_payload

#: Serving protocol version, checked via ``ping``/``pong``; independent of
#: the distributed executor's lease protocol version.
SERVING_PROTOCOL_VERSION = 1

#: ``error`` response codes (HTTP-flavoured, so dashboards read naturally).
BAD_REQUEST = 400
UNKNOWN_TEST = 404
EXECUTION_FAILED = 500
OVERLOADED = 503


def encode_message(message: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON plus the terminating newline."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Invert :func:`encode_message` for one received line.

    Raises:
        ValueError: if the line is not a JSON object.
    """
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message


def index_input(index: int, seed: int = 0, variant: Optional[str] = None) -> Dict[str, Any]:
    """An ``input`` spec naming input ``index`` of a per-index population."""
    spec: Dict[str, Any] = {"encoding": "index", "index": int(index), "seed": int(seed)}
    if variant is not None:
        spec["variant"] = variant
    return spec


def pickle_input(program_input: Any) -> Dict[str, Any]:
    """An ``input`` spec carrying the input object itself."""
    return {"encoding": "pickle", "payload": encode_payload(program_input)}


def run_request(
    request_id: Any,
    test: str,
    input_spec: Dict[str, Any],
    want_output: bool = False,
) -> Dict[str, Any]:
    """Build a ``run`` request frame."""
    message: Dict[str, Any] = {
        "type": "run",
        "id": request_id,
        "test": test,
        "input": input_spec,
    }
    if want_output:
        message["want_output"] = True
    return message


def swap_request(test: str, deployed: Any) -> Dict[str, Any]:
    """Build a ``swap`` request frame carrying a pickled deployed program."""
    return {"type": "swap", "test": test, "payload": encode_payload(deployed)}


def error_response(code: int, error: str, request_id: Any = None) -> Dict[str, Any]:
    """Build an ``error`` response frame."""
    message: Dict[str, Any] = {"type": "error", "code": int(code), "error": error}
    if request_id is not None:
        message["id"] = request_id
    return message


def decode_output(response: Dict[str, Any]) -> Any:
    """The program output carried by a ``result`` response (or None)."""
    payload = response.get("output")
    return decode_payload(payload) if payload is not None else None
