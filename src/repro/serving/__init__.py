"""Deployment serving layer: the trained selector as a network service.

Training (:mod:`repro.core.pipeline`) ends in a
:class:`~repro.core.pipeline.DeployedProgram`; this package puts that
artifact behind a TCP port.  :class:`~repro.serving.server.SelectorServer`
is an asyncio newline-JSON server with request coalescing, bounded
admission, and atomic model hot-swap; :mod:`~repro.serving.protocol`
defines the wire format, :mod:`~repro.serving.registry` the versioned
model store, :mod:`~repro.serving.client` the blocking client, and
:mod:`~repro.serving.loadgen` the load/coalescing measurement harness.
See ``docs/serving.md`` for the architecture and protocol walkthrough.
"""

from repro.serving.client import ServingClient
from repro.serving.loadgen import build_trace, replay, run_load
from repro.serving.protocol import (
    SERVING_PROTOCOL_VERSION,
    decode_message,
    decode_output,
    encode_message,
    error_response,
    index_input,
    pickle_input,
    run_request,
    swap_request,
)
from repro.serving.registry import ModelEntry, ModelRegistry
from repro.serving.server import SelectorServer, ServerThread, ServingConfig

__all__ = [
    "ModelEntry",
    "ModelRegistry",
    "SelectorServer",
    "ServerThread",
    "ServingClient",
    "ServingConfig",
    "SERVING_PROTOCOL_VERSION",
    "build_trace",
    "decode_message",
    "decode_output",
    "encode_message",
    "error_response",
    "index_input",
    "pickle_input",
    "replay",
    "run_load",
    "run_request",
    "swap_request",
]
