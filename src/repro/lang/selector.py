"""Selectors: size-cutoff decision lists that realize polyalgorithms.

Figure 2 of the paper shows the mechanism: a selector is an ordered list of
``(cutoff, algorithm)`` rules plus a fallback algorithm.  When a choice site
is reached with a sub-problem of size ``n``, the first rule whose cutoff
exceeds ``n`` fires; if no rule fires the fallback algorithm is used.  The
example from the paper is::

    n < 600   -> InsertionSort
    n < 1420  -> QuickSort
    otherwise -> MergeSort

Because non-terminal algorithms (QuickSort, MergeSort, ...) recurse back into
the choice site with smaller sub-problems, a selector realizes a recursive
polyalgorithm: MergeSort decomposes big lists, QuickSort medium ones, and
InsertionSort finishes small ones.

Selectors are values in a program's configuration space (the autotuner
evolves them), so this module also provides :class:`SelectorParameter`, a
:class:`~repro.lang.config.Parameter` whose domain is the set of well-formed
selectors over a given choice site.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.lang.choices import ChoiceSite
from repro.lang.config import Parameter


@dataclass(frozen=True)
class SelectorRule:
    """A single ``size < cutoff -> use algorithm`` rule."""

    cutoff: int
    choice: str

    def __post_init__(self) -> None:
        if self.cutoff < 0:
            raise ValueError(f"cutoff must be non-negative, got {self.cutoff}")


@dataclass(frozen=True)
class Selector:
    """An ordered decision list over problem size.

    Attributes:
        rules: rules sorted by ascending cutoff; the first matching rule wins.
        fallback: algorithm used when no rule matches (i.e. for the largest
            sub-problems); this is usually a decomposing (non-terminal)
            algorithm.
    """

    rules: Tuple[SelectorRule, ...]
    fallback: str

    def __post_init__(self) -> None:
        cutoffs = [rule.cutoff for rule in self.rules]
        if any(b <= a for a, b in zip(cutoffs, cutoffs[1:])):
            raise ValueError(f"rule cutoffs must be strictly increasing: {cutoffs}")
        if not self.fallback:
            raise ValueError("fallback choice name must be non-empty")

    def select(self, size: int) -> str:
        """Return the name of the algorithm to use for a sub-problem of ``size``."""
        for rule in self.rules:
            if size < rule.cutoff:
                return rule.choice
        return self.fallback

    @property
    def depth(self) -> int:
        """Number of cutoff rules (0 means "always use the fallback")."""
        return len(self.rules)

    def choices_used(self) -> Tuple[str, ...]:
        """Distinct algorithm names referenced, in rule order then fallback."""
        seen = []
        for rule in self.rules:
            if rule.choice not in seen:
                seen.append(rule.choice)
        if self.fallback not in seen:
            seen.append(self.fallback)
        return tuple(seen)

    def describe(self) -> str:
        """Human-readable one-line description (used in reports/examples)."""
        parts = [f"n<{rule.cutoff}:{rule.choice}" for rule in self.rules]
        parts.append(f"else:{self.fallback}")
        return " | ".join(parts)

    @staticmethod
    def single(choice: str) -> "Selector":
        """A degenerate selector that always uses ``choice``."""
        return Selector(rules=(), fallback=choice)


class SelectorParameter(Parameter):
    """A configuration-space parameter whose values are :class:`Selector` objects.

    The domain is constrained by the owning :class:`ChoiceSite`:

    * rule algorithms may be any alternative of the site, but to keep the
      polyalgorithm well founded, rules with small cutoffs are biased toward
      *terminal* alternatives (base cases);
    * the fallback may be any alternative; for sites that have non-terminal
      (decomposing) alternatives the sampler prefers those, because a
      terminal fallback on a huge problem is usually a pathological
      configuration the autotuner should still be allowed to explore.

    Args:
        name: parameter name within the configuration space.
        site: the choice site this selector drives.
        max_depth: maximum number of cutoff rules.
        max_cutoff: upper bound for cutoff values (roughly the largest input
            size the benchmark will see).
        min_cutoff: lower bound for the smallest cutoff.
    """

    def __init__(
        self,
        name: str,
        site: ChoiceSite,
        max_depth: int = 3,
        max_cutoff: int = 100_000,
        min_cutoff: int = 2,
    ) -> None:
        super().__init__(name)
        if len(site) == 0:
            raise ValueError(f"choice site {site.name!r} has no alternatives")
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        if min_cutoff < 1 or max_cutoff <= min_cutoff:
            raise ValueError("need 1 <= min_cutoff < max_cutoff")
        self.site = site
        self.max_depth = max_depth
        self.max_cutoff = max_cutoff
        self.min_cutoff = min_cutoff

    # -- sampling -------------------------------------------------------

    def _random_cutoffs(self, rng: random.Random, depth: int) -> Tuple[int, ...]:
        """Draw ``depth`` strictly increasing cutoffs, log-uniformly."""
        import math

        if depth == 0:
            return ()
        lo, hi = math.log(self.min_cutoff), math.log(self.max_cutoff)
        cutoffs = sorted(
            int(round(math.exp(rng.uniform(lo, hi)))) for _ in range(depth)
        )
        # Enforce strict increase by nudging duplicates upward.
        result = []
        previous = self.min_cutoff - 1
        for cutoff in cutoffs:
            cutoff = max(cutoff, previous + 1)
            cutoff = min(cutoff, self.max_cutoff)
            if cutoff <= previous:
                break
            result.append(cutoff)
            previous = cutoff
        return tuple(result)

    def _pick_rule_choice(self, rng: random.Random, first_rule: bool) -> str:
        """Pick an algorithm for a rule, biasing the smallest cutoff to base cases."""
        terminals = self.site.terminal_names
        if first_rule and terminals and rng.random() < 0.8:
            return rng.choice(list(terminals))
        return rng.choice(list(self.site.names))

    def _pick_fallback(self, rng: random.Random) -> str:
        non_terminal = [c.name for c in self.site.choices if not c.terminal]
        if non_terminal and rng.random() < 0.8:
            return rng.choice(non_terminal)
        return rng.choice(list(self.site.names))

    def sample(self, rng: random.Random) -> Selector:
        depth = rng.randint(0, self.max_depth)
        cutoffs = self._random_cutoffs(rng, depth)
        rules = tuple(
            SelectorRule(cutoff=cutoff, choice=self._pick_rule_choice(rng, i == 0))
            for i, cutoff in enumerate(cutoffs)
        )
        return Selector(rules=rules, fallback=self._pick_fallback(rng))

    # -- mutation -------------------------------------------------------

    def mutate(self, value: Selector, rng: random.Random, strength: float = 0.3) -> Selector:
        """Perturb one aspect of the selector: a cutoff, a rule's algorithm,
        the fallback, or the structure (add/remove a rule)."""
        operations = ["cutoff", "rule_choice", "fallback", "structure"]
        operation = rng.choice(operations)
        rules = list(value.rules)

        if operation == "cutoff" and rules:
            index = rng.randrange(len(rules))
            rule = rules[index]
            factor = 1.0 + rng.uniform(-strength, strength) * 2.0
            new_cutoff = int(round(rule.cutoff * max(0.1, factor)))
            new_cutoff = min(self.max_cutoff, max(self.min_cutoff, new_cutoff))
            rules[index] = SelectorRule(cutoff=new_cutoff, choice=rule.choice)
            rules = _repair_cutoffs(rules, self.max_cutoff)
            return Selector(rules=tuple(rules), fallback=value.fallback)

        if operation == "rule_choice" and rules:
            index = rng.randrange(len(rules))
            rule = rules[index]
            rules[index] = SelectorRule(
                cutoff=rule.cutoff, choice=rng.choice(list(self.site.names))
            )
            return Selector(rules=tuple(rules), fallback=value.fallback)

        if operation == "fallback":
            return Selector(rules=value.rules, fallback=self._pick_fallback(rng))

        # structure: add or remove a rule
        if rules and (len(rules) >= self.max_depth or rng.random() < 0.5):
            rules.pop(rng.randrange(len(rules)))
        elif len(rules) < self.max_depth:
            new_cutoffs = self._random_cutoffs(rng, 1)
            if new_cutoffs:
                rules.append(
                    SelectorRule(
                        cutoff=new_cutoffs[0],
                        choice=self._pick_rule_choice(rng, not rules),
                    )
                )
                rules.sort(key=lambda r: r.cutoff)
                rules = _repair_cutoffs(rules, self.max_cutoff)
        return Selector(rules=tuple(rules), fallback=value.fallback)

    # -- validation -----------------------------------------------------

    def validate(self, value: object) -> bool:
        if not isinstance(value, Selector):
            return False
        if value.depth > self.max_depth:
            return False
        if value.fallback not in self.site:
            return False
        for rule in value.rules:
            if rule.choice not in self.site:
                return False
            if not (self.min_cutoff <= rule.cutoff <= self.max_cutoff):
                return False
        return True

    def default(self) -> Selector:
        """Default: always use the first non-terminal choice (or first choice)."""
        non_terminal = [c.name for c in self.site.choices if not c.terminal]
        fallback = non_terminal[0] if non_terminal else self.site.names[0]
        terminals = self.site.terminal_names
        if terminals:
            return Selector(
                rules=(SelectorRule(cutoff=32, choice=terminals[0]),),
                fallback=fallback,
            )
        return Selector.single(fallback)


def _repair_cutoffs(rules: Sequence[SelectorRule], max_cutoff: int) -> list:
    """Make cutoffs strictly increasing after a mutation, preserving choices."""
    repaired = []
    previous: Optional[int] = None
    for rule in sorted(rules, key=lambda r: r.cutoff):
        cutoff = rule.cutoff
        if previous is not None and cutoff <= previous:
            cutoff = previous + 1
        if cutoff > max_cutoff:
            break
        repaired.append(SelectorRule(cutoff=cutoff, choice=rule.choice))
        previous = cutoff
    return repaired
