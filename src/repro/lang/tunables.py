"""The ``tunable`` language keyword.

In PetaBricks, ``tunable double level (0.0, 1.0)`` declares a scalar that the
autotuner is free to set anywhere in the given range.  Tunables appear both
inside algorithm bodies (e.g. the number of ways of a merge sort) and inside
feature extractors (e.g. the sampling ``level`` of the ``Sortedness``
extractor in Figure 1 of the paper).

A :class:`Tunable` is a thin declaration object that knows how to lower
itself into a :class:`~repro.lang.config.Parameter` so it can participate in
a program's configuration space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.lang.config import (
    CategoricalParameter,
    FloatParameter,
    IntegerParameter,
    Parameter,
)

Number = Union[int, float]


@dataclass(frozen=True)
class Tunable:
    """Declaration of an autotuner-set scalar.

    Attributes:
        name: identifier of the tunable (unique within a program).
        low: lower bound (inclusive).  Ignored when ``choices`` is given.
        high: upper bound (inclusive).  Ignored when ``choices`` is given.
        integer: whether the tunable takes integer values.
        log_scale: for integer tunables, whether values span orders of
            magnitude (e.g. recursion cutoffs) and should be mutated
            multiplicatively.
        choices: optional explicit finite set of values; when given the
            tunable is categorical.
    """

    name: str
    low: Number = 0.0
    high: Number = 1.0
    integer: bool = False
    log_scale: bool = False
    choices: Optional[Sequence[object]] = None

    def to_parameter(self, prefix: str = "") -> Parameter:
        """Lower this declaration into a configuration-space parameter.

        Args:
            prefix: optional namespace prefix (e.g. the owning feature
                extractor's name) prepended as ``"{prefix}.{name}"``.
        """
        full_name = f"{prefix}.{self.name}" if prefix else self.name
        if self.choices is not None:
            return CategoricalParameter(full_name, list(self.choices))
        if self.integer:
            return IntegerParameter(
                full_name, int(self.low), int(self.high), log_scale=self.log_scale
            )
        return FloatParameter(full_name, float(self.low), float(self.high))
