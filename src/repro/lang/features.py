"""The ``input_feature`` language keyword.

An *input feature* is a programmer-defined, side-effect-free function that
measures a domain-specific scalar property of a program's input (lines 4 and
19-39 of the paper's Figure 1).  Each feature extractor has a tunable
sampling *level*: higher levels examine more of the input and produce a more
accurate measurement at a higher extraction cost.  The paper uses ``z = 3``
sampling levels per property, giving ``M = u * z`` features for ``u``
properties; the two-level framework is responsible for selecting a subset of
those ``M`` features that pays for itself.

This module provides:

* :class:`FeatureExtractor` -- a named property with a cost-aware
  ``extract(input, level)`` method; concrete benchmarks subclass it or
  construct it from a plain function.
* :class:`FeatureSet` -- the ordered collection of a program's extractors,
  with helpers to compute full feature vectors (all properties at all
  levels), per-feature extraction costs, and named subsets.
* :class:`FeatureValue` -- a single measurement (value + cost + provenance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.lang.cost import CostCounter, scoped_counter

#: Default number of sampling levels per property (the paper uses 3).
DEFAULT_LEVELS = 3


@dataclass(frozen=True)
class FeatureValue:
    """A single feature measurement.

    Attributes:
        property_name: name of the property (e.g. ``"sortedness"``).
        level: sampling level used (0 = cheapest).
        value: the measured scalar.
        cost: work units charged while extracting it.
    """

    property_name: str
    level: int
    value: float
    cost: float

    @property
    def feature_name(self) -> str:
        """Fully-qualified feature name ``"<property>@<level>"``."""
        return f"{self.property_name}@{self.level}"


class FeatureExtractor:
    """A programmer-defined input property with multiple sampling levels.

    Args:
        name: the property name (unique within a program).
        func: callable ``func(input, level_fraction) -> float`` where
            ``level_fraction`` in (0, 1] controls how much of the input is
            examined.  The callable should charge its work to the ambient
            :mod:`repro.lang.cost` counter (benchmark extractors do).
        levels: number of sampling levels (``z`` in the paper).
        level_fractions: the fraction of the input examined at each level;
            defaults to a geometric ramp ending at 1.0.
    """

    def __init__(
        self,
        name: str,
        func: Callable[[Any, float], float],
        levels: int = DEFAULT_LEVELS,
        level_fractions: Optional[Sequence[float]] = None,
    ) -> None:
        if not name:
            raise ValueError("feature extractor name must be non-empty")
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.name = name
        self._func = func
        self.levels = levels
        if level_fractions is None:
            # Geometric ramp, e.g. for 3 levels: 0.05, 0.25, 1.0
            fractions = np.geomspace(0.05, 1.0, num=levels)
            level_fractions = [float(f) for f in fractions]
        if len(level_fractions) != levels:
            raise ValueError(
                f"{name}: need {levels} level fractions, got {len(level_fractions)}"
            )
        if any(not (0.0 < f <= 1.0) for f in level_fractions):
            raise ValueError(f"{name}: level fractions must be in (0, 1]")
        self.level_fractions: Tuple[float, ...] = tuple(level_fractions)

    def extract(self, value: Any, level: int) -> FeatureValue:
        """Measure the property of ``value`` at the given sampling level.

        The extraction cost is whatever the underlying function charges to
        the cost counter installed for the duration of the call.
        """
        if not (0 <= level < self.levels):
            raise ValueError(
                f"{self.name}: level {level} out of range [0, {self.levels})"
            )
        counter = CostCounter()
        with scoped_counter(counter):
            measured = float(self._func(value, self.level_fractions[level]))
        return FeatureValue(
            property_name=self.name,
            level=level,
            value=measured,
            cost=counter.total,
        )

    def feature_names(self) -> List[str]:
        """Names of the per-level features this property contributes."""
        return [f"{self.name}@{level}" for level in range(self.levels)]

    def __repr__(self) -> str:
        return f"FeatureExtractor({self.name!r}, levels={self.levels})"


class FeatureSet:
    """The ordered collection of a program's feature extractors."""

    def __init__(self, extractors: Optional[Iterable[FeatureExtractor]] = None) -> None:
        self._extractors: Dict[str, FeatureExtractor] = {}
        for extractor in extractors or []:
            self.add(extractor)

    def add(self, extractor: FeatureExtractor) -> None:
        """Register an extractor; property names must be unique."""
        if extractor.name in self._extractors:
            raise ValueError(f"duplicate feature extractor: {extractor.name}")
        self._extractors[extractor.name] = extractor

    def __len__(self) -> int:
        return len(self._extractors)

    def __iter__(self) -> Iterator[FeatureExtractor]:
        return iter(self._extractors.values())

    def __contains__(self, name: str) -> bool:
        return name in self._extractors

    def get(self, name: str) -> FeatureExtractor:
        """Return the extractor for property ``name`` (KeyError if unknown)."""
        return self._extractors[name]

    @property
    def property_names(self) -> List[str]:
        """Property names in registration order (``u`` properties)."""
        return list(self._extractors)

    def feature_names(self) -> List[str]:
        """All ``M = u * z`` fully-qualified feature names, property-major."""
        names: List[str] = []
        for extractor in self:
            names.extend(extractor.feature_names())
        return names

    def num_features(self) -> int:
        """Total number of (property, level) features, ``M`` in the paper."""
        return sum(extractor.levels for extractor in self)

    def extract_all(self, value: Any) -> List[FeatureValue]:
        """Extract every property at every level for one input.

        This is what Level 1 of the learning framework does for every
        training input; deployment-time classifiers extract only the subset
        they reference.
        """
        measurements: List[FeatureValue] = []
        for extractor in self:
            for level in range(extractor.levels):
                measurements.append(extractor.extract(value, level))
        return measurements

    def extract_vector(self, value: Any) -> Tuple[np.ndarray, np.ndarray]:
        """Extract all features and return ``(values, costs)`` arrays.

        Both arrays have length :meth:`num_features` and are ordered like
        :meth:`feature_names`.
        """
        measurements = self.extract_all(value)
        values = np.array([m.value for m in measurements], dtype=float)
        costs = np.array([m.cost for m in measurements], dtype=float)
        return values, costs

    def extract_batch(self, values: Sequence[Any]) -> Tuple[np.ndarray, np.ndarray]:
        """Extract all features for a whole chunk of inputs at once.

        Returns ``(features, costs)`` arrays of shape ``(n_inputs, M)`` with
        columns ordered like :meth:`feature_names` -- row ``i`` is
        bit-identical to ``extract_vector(values[i])``.

        The scoped cost counter is installed *once* for the whole chunk and
        reset between extractions (a reset counter accumulates exactly like a
        fresh one), so the per-call overhead of the scalar path -- a
        ContextVar install, a :class:`FeatureValue` allocation, and a
        list-to-array conversion per input per feature -- is paid once per
        chunk instead of ``n * M`` times.
        """
        values = list(values)
        n_inputs = len(values)
        n_features = self.num_features()
        features = np.empty((n_inputs, n_features), dtype=float)
        costs = np.empty((n_inputs, n_features), dtype=float)
        counter = CostCounter()
        with scoped_counter(counter):
            column = 0
            for extractor in self:
                func = extractor._func
                for level in range(extractor.levels):
                    fraction = extractor.level_fractions[level]
                    for row, value in enumerate(values):
                        counter.reset()
                        features[row, column] = float(func(value, fraction))
                        costs[row, column] = counter.total
                    column += 1
        return features, costs

    def extract_subset(self, value: Any, feature_names: Sequence[str]) -> Tuple[Dict[str, float], float]:
        """Extract only the named features, returning values and total cost.

        Args:
            value: the program input.
            feature_names: fully-qualified names (``"<property>@<level>"``).

        Returns:
            A pair of (name -> value mapping, total extraction cost).
        """
        results: Dict[str, float] = {}
        total_cost = 0.0
        for feature_name in feature_names:
            property_name, level = parse_feature_name(feature_name)
            measurement = self.get(property_name).extract(value, level)
            results[feature_name] = measurement.value
            total_cost += measurement.cost
        return results, total_cost

    def index_of(self, feature_name: str) -> int:
        """Return the column index of ``feature_name`` in extract_vector output."""
        names = self.feature_names()
        try:
            return names.index(feature_name)
        except ValueError as exc:
            raise KeyError(f"unknown feature {feature_name!r}") from exc


def parse_feature_name(feature_name: str) -> Tuple[str, int]:
    """Split a fully-qualified feature name into (property, level).

    Raises:
        ValueError: if the name is not of the form ``"<property>@<level>"``.
    """
    if "@" not in feature_name:
        raise ValueError(f"malformed feature name: {feature_name!r}")
    property_name, _, level_text = feature_name.rpartition("@")
    try:
        level = int(level_text)
    except ValueError as exc:
        raise ValueError(f"malformed feature level in {feature_name!r}") from exc
    return property_name, level
