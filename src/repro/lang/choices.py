"""The ``either ... or`` algorithmic-choice construct.

A :class:`ChoiceSite` models a point in a program where exactly one of
several alternative algorithms must be executed (lines 6-16 of the paper's
Figure 1).  Because choice sites are typically executed many times
dynamically (each recursive call of ``Sort`` hits the site again), the
decision of *which* alternative to run is delegated to a
:class:`~repro.lang.selector.Selector`, which picks an alternative based on
the size of the current sub-problem.  A choice site plus a selector therefore
realizes a *polyalgorithm*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Choice:
    """A single alternative of a choice site.

    Attributes:
        name: human-readable identifier (e.g. ``"insertion_sort"``).
        func: the callable implementing the alternative.  Its signature is
            benchmark-specific; the benchmark's driver decides how to call it.
        terminal: True when the alternative does not recurse back into the
            choice site (e.g. insertion sort is terminal; merge sort is not).
            Terminal choices are valid base cases for recursive selectors.
    """

    name: str
    func: Callable[..., Any]
    terminal: bool = False

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.func(*args, **kwargs)


class ChoiceSite:
    """A named ``either ... or`` site with a fixed set of alternatives."""

    def __init__(self, name: str, choices: Optional[Sequence[Choice]] = None) -> None:
        if not name:
            raise ValueError("choice site name must be non-empty")
        self.name = name
        self._choices: List[Choice] = []
        self._by_name: Dict[str, Choice] = {}
        for choice in choices or []:
            self.add(choice)

    def add(self, choice: Choice) -> Choice:
        """Register an alternative; names must be unique within the site."""
        if choice.name in self._by_name:
            raise ValueError(
                f"duplicate choice {choice.name!r} at site {self.name!r}"
            )
        self._choices.append(choice)
        self._by_name[choice.name] = choice
        return choice

    def alternative(
        self, name: str, terminal: bool = False
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator form of :meth:`add` for concise benchmark definitions.

        Example::

            site = ChoiceSite("sort")

            @site.alternative("insertion_sort", terminal=True)
            def insertion_sort(data):
                ...
        """

        def register(func: Callable[..., Any]) -> Callable[..., Any]:
            self.add(Choice(name=name, func=func, terminal=terminal))
            return func

        return register

    @property
    def choices(self) -> Tuple[Choice, ...]:
        """All alternatives, in registration order."""
        return tuple(self._choices)

    @property
    def names(self) -> Tuple[str, ...]:
        """Alternative names, in registration order."""
        return tuple(c.name for c in self._choices)

    @property
    def terminal_names(self) -> Tuple[str, ...]:
        """Names of alternatives marked terminal (valid recursion base cases)."""
        return tuple(c.name for c in self._choices if c.terminal)

    def get(self, name: str) -> Choice:
        """Look up an alternative by name.

        Raises:
            KeyError: if the name is unknown.
        """
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self._choices)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        return f"ChoiceSite({self.name!r}, choices={list(self.names)})"
