"""Variable accuracy support.

Five of the paper's six benchmarks are *variable accuracy* programs: different
algorithmic configurations produce outputs of different quality, and the
autotuner must meet a programmer-specified quality-of-service level.  The
paper's scheme (Section 3.3) uses two programmer-provided thresholds:

* the **accuracy threshold** ``H1`` -- a computation result is "accurate"
  when the benchmark's accuracy metric is at least ``H1``;
* the **satisfaction threshold** ``H2`` -- a configuration (or classifier) is
  acceptable only when at least an ``H2`` fraction of inputs are accurate
  (the paper uses 95% everywhere).

This module models the metric and the requirement, and provides the small
decision helpers used consistently by the autotuner (Level 1) and the
classifier-selection objective (Level 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence


@dataclass(frozen=True)
class AccuracyMetric:
    """A programmer-defined output-quality metric.

    Attributes:
        name: metric name, for reporting.
        func: callable ``func(input, output) -> float`` returning the accuracy
            score (higher is better).  For benchmarks without variable
            accuracy use :func:`always_accurate`.
        higher_is_better: retained for completeness; all paper metrics are
            "higher is better" after their log/ratio transformations.
    """

    name: str
    func: Callable[[Any, Any], float]
    higher_is_better: bool = True

    def score(self, program_input: Any, program_output: Any) -> float:
        """Evaluate the metric for one run."""
        return float(self.func(program_input, program_output))


@dataclass(frozen=True)
class AccuracyRequirement:
    """The paper's dual-threshold quality-of-service contract.

    Attributes:
        accuracy_threshold: ``H1`` -- minimum metric value for a single run
            to count as accurate.
        satisfaction_threshold: ``H2`` -- minimum fraction of accurate runs
            for a configuration/classifier to be acceptable (default 0.95 as
            in the paper's experiments).
        enabled: False for fixed-accuracy benchmarks such as Sort, in which
            case every run is trivially accurate.
    """

    accuracy_threshold: float = 0.0
    satisfaction_threshold: float = 0.95
    enabled: bool = True

    def run_is_accurate(self, accuracy: float) -> bool:
        """Is a single run's accuracy acceptable (``>= H1``)?"""
        if not self.enabled:
            return True
        return accuracy >= self.accuracy_threshold

    def satisfaction_rate(self, accuracies: Sequence[float]) -> float:
        """Fraction of runs meeting the accuracy threshold."""
        if not self.enabled:
            return 1.0
        values = list(accuracies)
        if not values:
            return 1.0
        accurate = sum(1 for a in values if a >= self.accuracy_threshold)
        return accurate / len(values)

    def is_satisfied(self, accuracies: Sequence[float]) -> bool:
        """Does a set of runs meet the satisfaction threshold (``>= H2``)?"""
        if not self.enabled:
            return True
        return self.satisfaction_rate(accuracies) >= self.satisfaction_threshold

    @staticmethod
    def disabled() -> "AccuracyRequirement":
        """A requirement that is always met (fixed-accuracy benchmarks)."""
        return AccuracyRequirement(enabled=False)


def _constant_one(_program_input: Any, _program_output: Any) -> float:
    """Module-level so fixed-accuracy programs stay picklable (process pool)."""
    return 1.0


def always_accurate(name: str = "exact") -> AccuracyMetric:
    """An accuracy metric that always returns 1.0.

    Used by fixed-accuracy benchmarks (Sort) so the rest of the system can
    treat every benchmark uniformly.
    """
    return AccuracyMetric(name=name, func=_constant_one)
