"""PetaBricks-like language substrate.

This subpackage provides the Python equivalent of the PetaBricks language
features the paper relies on:

* **algorithmic choice** -- :class:`~repro.lang.choices.ChoiceSite` models the
  ``either ... or`` construct; :class:`~repro.lang.selector.Selector` models
  the size-cutoff decision lists (Figure 2 of the paper) that turn a set of
  choices into a recursive polyalgorithm.
* **tunables** -- :class:`~repro.lang.tunables.Tunable` models the ``tunable``
  keyword (autotuner-set scalar parameters with a bounded range).
* **input features** -- :class:`~repro.lang.features.FeatureExtractor` models
  the ``input_feature`` keyword, including sampling levels with different
  extraction costs.
* **variable accuracy** -- :class:`~repro.lang.accuracy.AccuracyMetric` and
  :class:`~repro.lang.accuracy.AccuracyRequirement` model programmer-defined
  accuracy metrics, accuracy thresholds, and satisfaction thresholds.
* **cost accounting** -- :class:`~repro.lang.cost.CostCounter` provides the
  deterministic work-unit cost model used in place of wall-clock time (see
  DESIGN.md, substitution 1).
* **programs** -- :class:`~repro.lang.program.PetaBricksProgram` bundles the
  above into the object that the autotuner and the two-level learning
  framework operate on.
"""

from repro.lang.accuracy import (
    AccuracyMetric,
    AccuracyRequirement,
    always_accurate,
)
from repro.lang.choices import Choice, ChoiceSite
from repro.lang.config import (
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    FloatParameter,
    IntegerParameter,
    Parameter,
)
from repro.lang.cost import CostCounter, scoped_counter
from repro.lang.features import FeatureExtractor, FeatureSet, FeatureValue
from repro.lang.program import PetaBricksProgram, RunResult
from repro.lang.selector import Selector, SelectorParameter, SelectorRule
from repro.lang.tunables import Tunable

__all__ = [
    "AccuracyMetric",
    "AccuracyRequirement",
    "always_accurate",
    "CategoricalParameter",
    "Choice",
    "ChoiceSite",
    "Configuration",
    "ConfigurationSpace",
    "CostCounter",
    "FeatureExtractor",
    "FeatureSet",
    "FeatureValue",
    "FloatParameter",
    "IntegerParameter",
    "Parameter",
    "PetaBricksProgram",
    "RunResult",
    "scoped_counter",
    "Selector",
    "SelectorParameter",
    "SelectorRule",
    "Tunable",
]
