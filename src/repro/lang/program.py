"""The program abstraction the autotuner and learning framework operate on.

A :class:`PetaBricksProgram` bundles together everything the paper's system
needs to know about a tunable program:

* its configuration space (tunables + selectors + feature-level tunables);
* a ``run`` entry point that executes the program with a given configuration
  on a given input and reports the work-unit cost and output;
* the set of ``input_feature`` extractors;
* an accuracy metric and requirement (for variable-accuracy programs).

Concrete benchmarks in :mod:`repro.benchmarks_suite` construct instances of
this class; the autotuner (:mod:`repro.autotuner`) and the two-level learning
pipeline (:mod:`repro.core`) only ever see this interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.lang.accuracy import AccuracyMetric, AccuracyRequirement, always_accurate
from repro.lang.config import Configuration, ConfigurationSpace
from repro.lang.cost import CostCounter, scoped_counter
from repro.lang.features import FeatureSet


@dataclass(frozen=True)
class RunResult:
    """Outcome of executing a program once.

    Attributes:
        output: the program's output object (benchmark specific).
        time: execution cost in deterministic work units (stands in for
            wall-clock time; see DESIGN.md).
        accuracy: value of the program's accuracy metric on this run.
        extra: optional benchmark-specific diagnostics.
    """

    output: Any
    time: float
    accuracy: float
    extra: Dict[str, Any] = field(default_factory=dict)


class PetaBricksProgram:
    """A tunable program with algorithmic choices and input features.

    Args:
        name: program name (e.g. ``"sort"``).
        config_space: the space of legal configurations.
        run_func: callable ``run_func(config, input) -> output`` implementing
            the program.  It must charge its work to the ambient cost counter
            (all benchmark implementations do, via :func:`repro.lang.cost.charge`).
        features: the program's ``input_feature`` extractors.
        accuracy_metric: output-quality metric; defaults to "always 1.0".
        accuracy_requirement: quality-of-service contract; defaults to
            disabled (fixed accuracy).
    """

    def __init__(
        self,
        name: str,
        config_space: ConfigurationSpace,
        run_func: Callable[[Configuration, Any], Any],
        features: Optional[FeatureSet] = None,
        accuracy_metric: Optional[AccuracyMetric] = None,
        accuracy_requirement: Optional[AccuracyRequirement] = None,
    ) -> None:
        self.name = name
        self.config_space = config_space
        self._run_func = run_func
        self.features = features if features is not None else FeatureSet()
        self.accuracy_metric = (
            accuracy_metric if accuracy_metric is not None else always_accurate()
        )
        self.accuracy_requirement = (
            accuracy_requirement
            if accuracy_requirement is not None
            else AccuracyRequirement.disabled()
        )

    @property
    def has_variable_accuracy(self) -> bool:
        """True when this program has a real quality-of-service requirement."""
        return self.accuracy_requirement.enabled

    def run(self, config: Configuration, program_input: Any) -> RunResult:
        """Execute the program once and measure cost and accuracy.

        The run is executed under a fresh cost counter, so the reported
        ``time`` covers exactly this run (feature extraction is accounted
        separately by the learning framework).
        """
        counter = CostCounter()
        with scoped_counter(counter):
            output = self._run_func(config, program_input)
        accuracy = self.accuracy_metric.score(program_input, output)
        return RunResult(output=output, time=counter.total, accuracy=accuracy)

    def default_configuration(self) -> Configuration:
        """Convenience passthrough to the configuration space default."""
        return self.config_space.default_configuration()

    def __repr__(self) -> str:
        return (
            f"PetaBricksProgram({self.name!r}, "
            f"{len(self.config_space)} parameters, "
            f"{len(self.features)} feature properties)"
        )
