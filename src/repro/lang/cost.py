"""Deterministic work-unit cost accounting.

The paper measures wall-clock execution time on a 32-core Xeon.  This
reproduction replaces wall-clock time with a deterministic *work unit* count
(see DESIGN.md, substitution 1): every benchmark algorithm charges abstract
operations (comparisons, swaps, arithmetic operations, stencil updates, ...)
to a :class:`CostCounter`.  The resulting counts play the role of execution
time everywhere in the system -- in the autotuner's objective, in the
performance measurements of Level 1, in the classifier-selection objective of
Level 2, and in the reported speedups.

Using operation counts rather than timers keeps the whole reproduction
deterministic and platform independent while preserving the *relative*
performance structure (which algorithm wins on which input, and by what
factor) that the paper's conclusions rest on.
"""

from __future__ import annotations

import contextlib
import contextvars
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass
class CostCounter:
    """Accumulates abstract work units charged by instrumented algorithms.

    Attributes:
        total: total work units charged so far.
        by_category: per-category breakdown (e.g. ``"compare"``, ``"swap"``,
            ``"flop"``).  Categories are free-form strings chosen by the
            charging code.
    """

    total: float = 0.0
    by_category: Dict[str, float] = field(default_factory=dict)

    def charge(self, amount: float, category: str = "work") -> None:
        """Charge ``amount`` work units to ``category``.

        Args:
            amount: non-negative number of work units.
            category: free-form label for the breakdown.

        Raises:
            ValueError: if ``amount`` is negative.
        """
        if amount < 0:
            raise ValueError(f"cannot charge negative cost: {amount}")
        self.total += amount
        self.by_category[category] = self.by_category.get(category, 0.0) + amount

    def merge(self, other: "CostCounter") -> None:
        """Fold another counter's charges into this one."""
        self.total += other.total
        for category, amount in other.by_category.items():
            self.by_category[category] = (
                self.by_category.get(category, 0.0) + amount
            )

    def reset(self) -> None:
        """Zero the counter."""
        self.total = 0.0
        self.by_category.clear()

    def snapshot(self) -> float:
        """Return the current total (useful for measuring a sub-interval)."""
        return self.total

    def since(self, snapshot: float) -> float:
        """Return work charged since a previous :meth:`snapshot`."""
        return self.total - snapshot

    def copy(self) -> "CostCounter":
        """Return an independent copy of this counter."""
        clone = CostCounter(total=self.total)
        clone.by_category = dict(self.by_category)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostCounter(total={self.total:.1f}, categories={len(self.by_category)})"


# An ambient "current" counter lets deeply nested algorithm code charge work
# without threading a counter argument through every helper.  The benchmark
# drivers install a counter for the duration of a run via ``scoped_counter``.
#
# The counter lives in a ContextVar rather than a module global so that
# concurrent runs (the thread-pool executor in ``repro.runtime``) each see
# their own counter: a worker thread starts with no counter installed and
# ``program.run`` scopes a fresh one for exactly its own run.  Within a
# single thread the behaviour is identical to the old module global.
_current: contextvars.ContextVar[Optional[CostCounter]] = contextvars.ContextVar(
    "repro_cost_counter", default=None
)


def current_counter() -> Optional[CostCounter]:
    """Return the counter installed by the innermost :func:`scoped_counter`."""
    return _current.get()


def charge(amount: float, category: str = "work") -> None:
    """Charge work to the currently installed counter, if any.

    Algorithm code calls this unconditionally; when no counter is installed
    (e.g. an algorithm used stand-alone outside a benchmark run) the charge
    is silently dropped, so the algorithms remain usable as ordinary library
    functions.
    """
    counter = _current.get()
    if counter is not None:
        # Inlined CostCounter.charge: this is the hottest call in the whole
        # measurement loop (every instrumented algorithm charges here), so
        # the method dispatch is worth skipping.
        if amount < 0:
            raise ValueError(f"cannot charge negative cost: {amount}")
        counter.total += amount
        categories = counter.by_category
        categories[category] = categories.get(category, 0.0) + amount


@contextlib.contextmanager
def scoped_counter(counter: Optional[CostCounter] = None) -> Iterator[CostCounter]:
    """Install ``counter`` as the current counter for the ``with`` block.

    Args:
        counter: counter to install; a fresh one is created when omitted.

    Yields:
        The installed counter, so callers can read ``counter.total`` after
        the block.
    """
    if counter is None:
        counter = CostCounter()
    token = _current.set(counter)
    try:
        yield counter
    finally:
        _current.reset(token)
