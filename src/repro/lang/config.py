"""Configuration spaces and configurations.

A PetaBricks program exposes a *configuration space*: the cross product of
all its tunables, algorithmic-choice selectors, and feature-extractor
sampling levels.  The evolutionary autotuner searches this space; the
two-level learning framework stores the resulting configurations as
"landmarks".

This module provides the parameter descriptors, the
:class:`ConfigurationSpace` container, and the immutable
:class:`Configuration` assignment object.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


class Parameter:
    """Base class for a single dimension of a configuration space.

    Subclasses define the value domain and how to sample, mutate, and
    validate values.  Parameters are identified by ``name`` within a
    :class:`ConfigurationSpace`.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("parameter name must be non-empty")
        self.name = name

    def sample(self, rng: random.Random) -> Any:
        """Draw a uniformly random legal value."""
        raise NotImplementedError

    def mutate(self, value: Any, rng: random.Random, strength: float = 0.3) -> Any:
        """Return a perturbed legal value near ``value``.

        ``strength`` in (0, 1] scales how far the mutation may move.
        """
        raise NotImplementedError

    def validate(self, value: Any) -> bool:
        """Return True when ``value`` is legal for this parameter."""
        raise NotImplementedError

    def default(self) -> Any:
        """Return a reasonable default value."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class IntegerParameter(Parameter):
    """An integer parameter on the inclusive range [low, high].

    ``log_scale`` samples and mutates multiplicatively, which suits cutoff
    parameters (e.g. recursion cutoffs of 2..10^5) whose useful values span
    orders of magnitude.
    """

    def __init__(self, name: str, low: int, high: int, log_scale: bool = False) -> None:
        super().__init__(name)
        if low > high:
            raise ValueError(f"{name}: low ({low}) > high ({high})")
        if log_scale and low <= 0:
            raise ValueError(f"{name}: log_scale requires low > 0")
        self.low = int(low)
        self.high = int(high)
        self.log_scale = log_scale

    def sample(self, rng: random.Random) -> int:
        if self.log_scale:
            import math

            lo, hi = math.log(self.low), math.log(self.high)
            return int(round(math.exp(rng.uniform(lo, hi))))
        return rng.randint(self.low, self.high)

    def mutate(self, value: Any, rng: random.Random, strength: float = 0.3) -> int:
        import math

        value = int(value)
        if self.log_scale:
            factor = math.exp(rng.gauss(0.0, strength))
            candidate = int(round(value * factor))
        else:
            span = max(1, int(round((self.high - self.low) * strength)))
            candidate = value + rng.randint(-span, span)
        return min(self.high, max(self.low, candidate))

    def validate(self, value: Any) -> bool:
        return isinstance(value, int) and self.low <= value <= self.high

    def default(self) -> int:
        return (self.low + self.high) // 2


class FloatParameter(Parameter):
    """A float parameter on the inclusive range [low, high]."""

    def __init__(self, name: str, low: float, high: float) -> None:
        super().__init__(name)
        if low > high:
            raise ValueError(f"{name}: low ({low}) > high ({high})")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mutate(self, value: Any, rng: random.Random, strength: float = 0.3) -> float:
        span = (self.high - self.low) * strength
        candidate = float(value) + rng.gauss(0.0, span)
        return min(self.high, max(self.low, candidate))

    def validate(self, value: Any) -> bool:
        return isinstance(value, (int, float)) and self.low <= float(value) <= self.high

    def default(self) -> float:
        return (self.low + self.high) / 2.0


class CategoricalParameter(Parameter):
    """A parameter drawn from a finite unordered set of choices."""

    def __init__(self, name: str, choices: Sequence[Any]) -> None:
        super().__init__(name)
        if not choices:
            raise ValueError(f"{name}: choices must be non-empty")
        self.choices: Tuple[Any, ...] = tuple(choices)

    def sample(self, rng: random.Random) -> Any:
        return rng.choice(self.choices)

    def mutate(self, value: Any, rng: random.Random, strength: float = 0.3) -> Any:
        if len(self.choices) == 1:
            return self.choices[0]
        # Mutation re-samples; with probability (1 - strength) keep the value.
        if rng.random() > strength:
            return value
        alternatives = [c for c in self.choices if c != value]
        return rng.choice(alternatives) if alternatives else value

    def validate(self, value: Any) -> bool:
        return value in self.choices

    def default(self) -> Any:
        return self.choices[0]


class ConfigurationSpace:
    """An ordered collection of named :class:`Parameter` objects."""

    def __init__(self, parameters: Optional[Iterable[Parameter]] = None) -> None:
        self._parameters: Dict[str, Parameter] = {}
        for parameter in parameters or []:
            self.add(parameter)

    def add(self, parameter: Parameter) -> None:
        """Add a parameter; names must be unique within the space."""
        if parameter.name in self._parameters:
            raise ValueError(f"duplicate parameter name: {parameter.name}")
        self._parameters[parameter.name] = parameter

    def __contains__(self, name: str) -> bool:
        return name in self._parameters

    def __len__(self) -> int:
        return len(self._parameters)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters.values())

    def names(self) -> List[str]:
        """Return parameter names in insertion order."""
        return list(self._parameters)

    def get(self, name: str) -> Parameter:
        """Return the parameter called ``name``.

        Raises:
            KeyError: if no such parameter exists.
        """
        return self._parameters[name]

    def sample(self, rng: random.Random) -> "Configuration":
        """Draw a uniformly random configuration."""
        values = {p.name: p.sample(rng) for p in self}
        return Configuration(values, space=self)

    def default_configuration(self) -> "Configuration":
        """Return the configuration of per-parameter defaults."""
        values = {p.name: p.default() for p in self}
        return Configuration(values, space=self)

    def validate(self, values: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` unless ``values`` is a complete legal assignment."""
        missing = set(self._parameters) - set(values)
        if missing:
            raise ValueError(f"missing parameters: {sorted(missing)}")
        extra = set(values) - set(self._parameters)
        if extra:
            raise ValueError(f"unknown parameters: {sorted(extra)}")
        for name, parameter in self._parameters.items():
            if not parameter.validate(values[name]):
                raise ValueError(
                    f"illegal value for {name!r}: {values[name]!r}"
                )

    def __repr__(self) -> str:
        return f"ConfigurationSpace({list(self._parameters)})"


@dataclass(frozen=True)
class Configuration:
    """An immutable assignment of values to every parameter of a space.

    Configurations are hashable (so they can be deduplicated in the
    autotuner's population and used as dictionary keys for landmark
    bookkeeping) and validated against their space at construction time.
    """

    values: Mapping[str, Any]
    space: Optional[ConfigurationSpace] = None

    def __post_init__(self) -> None:
        frozen = dict(self.values)
        if self.space is not None:
            self.space.validate(frozen)
        object.__setattr__(self, "values", frozen)

    def __getitem__(self, name: str) -> Any:
        return self.values[name]

    def get(self, name: str, default: Any = None) -> Any:
        return self.values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self.values

    def with_updates(self, **updates: Any) -> "Configuration":
        """Return a new configuration with some values replaced."""
        merged = dict(self.values)
        merged.update(updates)
        return Configuration(merged, space=self.space)

    def as_dict(self) -> Dict[str, Any]:
        """Return a plain-dict copy of the assignment."""
        return dict(self.values)

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, _hashable(v)) for k, v in self.values.items())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return dict(self.values) == dict(other.values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.values.items()))
        return f"Configuration({inner})"


def _hashable(value: Any) -> Any:
    """Convert lists/tuples recursively into hashable tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    return value
