"""Lightweight runtime telemetry: run counters and per-phase wall time.

The measurement runtime records how much work it actually did (runs
requested vs. executed vs. served from cache) and how long each named phase
of the pipeline took.  Telemetry is purely observational -- nothing in the
system changes behaviour based on it -- so it can be shared freely between
phases and experiments.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator


@dataclass
class PhaseStats:
    """Accumulated wall time of one named phase.

    Attributes:
        calls: how many times the phase ran.
        seconds: total wall-clock seconds across all calls.
    """

    calls: int = 0
    seconds: float = 0.0


@dataclass
class Telemetry:
    """Counters and phase timers for one measurement runtime.

    Attributes:
        counters: free-form named event counts (e.g. ``runs_executed``,
            ``cache_hits``).
        phases: wall-time accumulators keyed by phase name.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    phases: Dict[str, PhaseStats] = field(default_factory=dict)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (accumulating)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            stats = self.phases.setdefault(name, PhaseStats())
            stats.calls += 1
            stats.seconds += time.perf_counter() - start

    def add_seconds(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold already-measured wall time into the named phase.

        For work that cannot be wrapped in one :meth:`phase` block -- e.g.
        streamed input generation, whose cost is scattered across every
        chunk of a measurement batch and is timed at each materialization
        site instead.
        """
        stats = self.phases.setdefault(name, PhaseStats())
        stats.calls += calls
        stats.seconds += seconds

    @property
    def runs_requested(self) -> int:
        """Total program runs asked of the runtime (hits + executions)."""
        return self.counters.get("runs_requested", 0)

    @property
    def runs_executed(self) -> int:
        """Program runs that actually executed (cache misses)."""
        return self.counters.get("runs_executed", 0)

    @property
    def cache_hits(self) -> int:
        """Runs served from the cache."""
        return self.counters.get("cache_hits", 0)

    @property
    def tasks_requested(self) -> int:
        """Generalized tasks asked of the runtime (hits + executions)."""
        return self.counters.get("tasks_requested", 0)

    @property
    def tasks_executed(self) -> int:
        """Generalized tasks that actually executed (task-cache misses)."""
        return self.counters.get("tasks_executed", 0)

    @property
    def task_cache_hits(self) -> int:
        """Generalized tasks served from the task cache."""
        return self.counters.get("task_cache_hits", 0)

    def hit_rate(self) -> float:
        """Fraction of requested runs served from cache (0.0 when idle)."""
        requested = self.runs_requested
        if requested <= 0:
            return 0.0
        return self.cache_hits / requested

    def merge(self, other: "Telemetry") -> None:
        """Fold another telemetry object's counts and timings into this one."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, stats in other.phases.items():
            mine = self.phases.setdefault(name, PhaseStats())
            mine.calls += stats.calls
            mine.seconds += stats.seconds

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict view suitable for reports and JSON."""
        return {
            "counters": dict(self.counters),
            "phases": {
                name: {"calls": stats.calls, "seconds": stats.seconds}
                for name, stats in self.phases.items()
            },
            "hit_rate": self.hit_rate(),
        }

    def format_summary(self) -> str:
        """A short human-readable summary (used by the CLI)."""
        lines = [
            f"runs: {self.runs_requested} requested, "
            f"{self.runs_executed} executed, "
            f"{self.cache_hits} cache hits ({self.hit_rate():.1%})"
        ]
        if self.tasks_requested:
            lines.append(
                f"tasks: {self.tasks_requested} requested, "
                f"{self.tasks_executed} executed, "
                f"{self.task_cache_hits} cache hits"
            )
        for name in sorted(self.phases):
            stats = self.phases[name]
            lines.append(f"phase {name}: {stats.seconds:.3f}s over {stats.calls} call(s)")
        return "\n".join(lines)
