"""Lightweight runtime telemetry: run counters and per-phase wall time.

The measurement runtime records how much work it actually did (runs
requested vs. executed vs. served from cache) and how long each named phase
of the pipeline took.  Telemetry is purely observational -- nothing in the
system changes behaviour based on it -- so it can be shared freely between
phases and experiments.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List


@dataclass
class PhaseStats:
    """Accumulated wall time of one named phase.

    Attributes:
        calls: how many times the phase ran.
        seconds: total wall-clock seconds across all calls.
    """

    calls: int = 0
    seconds: float = 0.0


class LatencyRecorder:
    """Per-event latency samples with percentile summaries.

    Phase timers (:class:`PhaseStats`) only accumulate totals, which is the
    right shape for pipeline stages but useless for a request-serving path
    where the *distribution* is the product (p50/p99 selection latency).
    A recorder keeps the individual samples -- bounded by ``max_samples``;
    past the cap new samples are dropped and counted, so a runaway server
    cannot grow memory without bound -- and summarizes them on demand.

    Percentiles use the nearest-rank method on a sorted copy, so ``p50`` of
    one sample is that sample and ``p99`` of 100 samples is the 99th.
    """

    def __init__(self, max_samples: int = 1_000_000) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.max_samples = int(max_samples)
        self.samples: List[float] = []
        #: Samples not retained because the cap was reached.
        self.dropped = 0
        #: Total events recorded (retained + dropped).
        self.count = 0
        self.total_seconds = 0.0

    def record(self, seconds: float) -> None:
        """Record one event's latency in seconds."""
        self.count += 1
        self.total_seconds += seconds
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            return
        self.samples.append(float(seconds))

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the retained samples (0.0 when empty)."""
        if not self.samples:
            return 0.0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        ordered = sorted(self.samples)
        rank = max(1, int(-(-fraction * len(ordered) // 1)))  # ceil, >= 1
        return ordered[min(rank, len(ordered)) - 1]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def mean(self) -> float:
        """Mean latency over all recorded events (0.0 when empty)."""
        return self.total_seconds / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict summary suitable for reports and JSON."""
        return {
            "count": self.count,
            "mean_seconds": self.mean(),
            "p50_seconds": self.p50,
            "p99_seconds": self.p99,
            "dropped_samples": self.dropped,
        }

    def __repr__(self) -> str:
        return (
            f"LatencyRecorder(count={self.count}, "
            f"p50={self.p50:.6f}s, p99={self.p99:.6f}s)"
        )


@dataclass
class Telemetry:
    """Counters, phase timers, and latency recorders for one runtime.

    Attributes:
        counters: free-form named event counts (e.g. ``runs_executed``,
            ``cache_hits``).
        phases: wall-time accumulators keyed by phase name.
        latencies: per-event latency distributions keyed by name (used by
            the serving layer for request latency percentiles).
    """

    counters: Dict[str, int] = field(default_factory=dict)
    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    latencies: Dict[str, LatencyRecorder] = field(default_factory=dict)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    @contextlib.contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (accumulating)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            stats = self.phases.setdefault(name, PhaseStats())
            stats.calls += 1
            stats.seconds += time.perf_counter() - start

    def record_latency(self, name: str, seconds: float) -> None:
        """Record one event's latency under the named distribution."""
        recorder = self.latencies.get(name)
        if recorder is None:
            recorder = self.latencies.setdefault(name, LatencyRecorder())
        recorder.record(seconds)

    def add_seconds(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold already-measured wall time into the named phase.

        For work that cannot be wrapped in one :meth:`phase` block -- e.g.
        streamed input generation, whose cost is scattered across every
        chunk of a measurement batch and is timed at each materialization
        site instead.
        """
        stats = self.phases.setdefault(name, PhaseStats())
        stats.calls += calls
        stats.seconds += seconds

    @property
    def runs_requested(self) -> int:
        """Total program runs asked of the runtime (hits + executions)."""
        return self.counters.get("runs_requested", 0)

    @property
    def runs_executed(self) -> int:
        """Program runs that actually executed (cache misses)."""
        return self.counters.get("runs_executed", 0)

    @property
    def cache_hits(self) -> int:
        """Runs served from the cache."""
        return self.counters.get("cache_hits", 0)

    @property
    def tasks_requested(self) -> int:
        """Generalized tasks asked of the runtime (hits + executions)."""
        return self.counters.get("tasks_requested", 0)

    @property
    def tasks_executed(self) -> int:
        """Generalized tasks that actually executed (task-cache misses)."""
        return self.counters.get("tasks_executed", 0)

    @property
    def task_cache_hits(self) -> int:
        """Generalized tasks served from the task cache."""
        return self.counters.get("task_cache_hits", 0)

    def hit_rate(self) -> float:
        """Fraction of requested runs served from cache (0.0 when idle)."""
        requested = self.runs_requested
        if requested <= 0:
            return 0.0
        return self.cache_hits / requested

    def merge(self, other: "Telemetry") -> None:
        """Fold another telemetry object's counts and timings into this one."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, stats in other.phases.items():
            mine = self.phases.setdefault(name, PhaseStats())
            mine.calls += stats.calls
            mine.seconds += stats.seconds
        for name, recorder in other.latencies.items():
            mine_rec = self.latencies.setdefault(name, LatencyRecorder())
            for sample in recorder.samples:
                mine_rec.record(sample)
            mine_rec.dropped += recorder.dropped
            mine_rec.count += recorder.dropped
            mine_rec.total_seconds += recorder.total_seconds - sum(recorder.samples)

    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict view suitable for reports and JSON."""
        view: Dict[str, Any] = {
            "counters": dict(self.counters),
            "phases": {
                name: {"calls": stats.calls, "seconds": stats.seconds}
                for name, stats in self.phases.items()
            },
            "hit_rate": self.hit_rate(),
        }
        if self.latencies:
            view["latencies"] = {
                name: recorder.snapshot() for name, recorder in self.latencies.items()
            }
        return view

    def format_summary(self) -> str:
        """A short human-readable summary (used by the CLI)."""
        lines = [
            f"runs: {self.runs_requested} requested, "
            f"{self.runs_executed} executed, "
            f"{self.cache_hits} cache hits ({self.hit_rate():.1%})"
        ]
        if self.tasks_requested:
            lines.append(
                f"tasks: {self.tasks_requested} requested, "
                f"{self.tasks_executed} executed, "
                f"{self.task_cache_hits} cache hits"
            )
        for name in sorted(self.phases):
            stats = self.phases[name]
            lines.append(f"phase {name}: {stats.seconds:.3f}s over {stats.calls} call(s)")
        return "\n".join(lines)
