"""Shared measurement runtime: executors, run cache, telemetry.

This package is the execution layer under every program measurement in the
reproduction.  See :class:`repro.runtime.Runtime` for the facade and
``README.md`` ("The measurement runtime") for usage and flags.
"""

from repro.runtime.cache import CacheEntry, RunCache
from repro.runtime.distributed import Coordinator, DistributedExecutor
from repro.runtime.executors import (
    EXECUTORS,
    BaseExecutor,
    ProcessExecutor,
    SerialExecutor,
    SharedRef,
    ThreadExecutor,
    get_executor,
)
from repro.runtime.keys import (
    config_key,
    content_key,
    input_key,
    program_fingerprint,
    run_key,
)
from repro.runtime.runtime import Runtime, default_runtime
from repro.runtime.tasks import TaskCache, TaskSpec
from repro.runtime.telemetry import PhaseStats, Telemetry

__all__ = [
    "BaseExecutor",
    "CacheEntry",
    "Coordinator",
    "DistributedExecutor",
    "EXECUTORS",
    "PhaseStats",
    "ProcessExecutor",
    "RunCache",
    "Runtime",
    "SerialExecutor",
    "SharedRef",
    "TaskCache",
    "TaskSpec",
    "Telemetry",
    "ThreadExecutor",
    "config_key",
    "content_key",
    "default_runtime",
    "get_executor",
    "input_key",
    "program_fingerprint",
    "run_key",
]
