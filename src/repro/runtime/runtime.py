"""The measurement runtime: executor + run cache + telemetry.

:class:`Runtime` is the single entry point the rest of the system uses to
execute program runs.  It batches runs through a pluggable executor
(:mod:`repro.runtime.executors`), deduplicates identical
(program, configuration, input) runs through a content-keyed cache
(:mod:`repro.runtime.cache`), and records counters and phase timings
(:mod:`repro.runtime.telemetry`).

The default runtime (:func:`default_runtime`) is a cache-less serial
runtime, so call sites that do not opt in behave exactly like direct
``program.run`` loops -- bit-identical to the pre-runtime code.  Experiment
drivers construct caching/parallel runtimes explicitly (see
``ExperimentConfig.make_runtime``).
"""

from __future__ import annotations

import contextlib
import itertools
import pickle
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.lang.config import Configuration
from repro.lang.program import PetaBricksProgram, RunResult
from repro.resilience.faults import maybe_fail
from repro.runtime.cache import RunCache
from repro.runtime.executors import BaseExecutor, CallTask, SerialExecutor, Task, get_executor
from repro.runtime.keys import config_key, input_key, program_fingerprint, run_key
from repro.runtime.tasks import TaskCache, TaskSpec, is_missing
from repro.runtime.telemetry import Telemetry


def _strip_output(result: RunResult) -> RunResult:
    """A copy of ``result`` without the program output (for measurement caching)."""
    if result.output is None:
        return result
    return RunResult(
        output=None, time=result.time, accuracy=result.accuracy, extra=result.extra
    )


class Runtime:
    """Shared execution runtime for all program measurements.

    Args:
        executor: execution strategy; defaults to :class:`SerialExecutor`.
        cache: run cache; ``None`` disables caching entirely (every request
            executes), which is the bit-identical legacy behaviour.
        telemetry: telemetry sink; a fresh one is created when omitted.
        task_cache: memo for generalized task results (see
            :meth:`run_tasks`).  When omitted, one is created whenever a run
            cache is present, so a caching runtime also memoizes keyed tasks.
        batch_chunk: streaming chunk size.  ``None`` (default) keeps the
            legacy all-at-once batches; a positive value makes
            :meth:`run_pairs` / :meth:`run_tasks` / :meth:`measure` process
            batches in chunks of at most this many items, bounding peak
            memory by O(chunk) instead of O(batch) while producing
            bit-identical results (chunks preserve enumeration order, and
            chunk-local cache fills stand in for whole-batch deduplication).
    """

    #: Default entry cap for the auto-created task cache; task results
    #: (trained classifiers, fold evaluations) are larger than run
    #: measurements, so the cap is much smaller than the run cache's.
    TASK_CACHE_ENTRIES = 8_192

    def __init__(
        self,
        executor: Optional[BaseExecutor] = None,
        cache: Optional[RunCache] = None,
        telemetry: Optional[Telemetry] = None,
        task_cache: Optional[TaskCache] = None,
        batch_chunk: Optional[int] = None,
    ) -> None:
        if batch_chunk is not None and batch_chunk < 1:
            raise ValueError("batch_chunk must be >= 1 or None")
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        if task_cache is None and cache is not None:
            task_cache = TaskCache(max_entries=self.TASK_CACHE_ENTRIES)
        self.task_cache = task_cache
        self.batch_chunk = batch_chunk
        #: Optional :class:`~repro.resilience.checkpoint.ExperimentCheckpoint`
        #: attached by the experiment runner; when set, every chunk boundary
        #: persists dirty cache shards and advances the resume manifest.
        self.checkpoint: Optional[Any] = None

    @classmethod
    def create(
        cls,
        executor: str = "serial",
        workers: Optional[int] = None,
        use_cache: bool = True,
        max_entries: Optional[int] = RunCache.DEFAULT_MAX_ENTRIES,
        cache_path: Optional[str] = None,
        batch_chunk: Optional[int] = None,
        executor_options: Optional[Dict[str, Any]] = None,
    ) -> "Runtime":
        """Build a runtime from flag-style settings.

        When ``cache_path`` is given, previously persisted measurements are
        attached immediately (missing stores are fine; a legacy single-file
        cache is migrated to the sharded layout); call :meth:`save_cache`
        after a run to persist the updated cache.  ``use_cache=False``
        disables caching outright -- including any persisted store -- so
        every measurement demonstrably re-executes.  ``batch_chunk`` enables
        streaming batches (see the class docstring).  ``max_entries`` caps
        the in-memory run cache (``None`` = unbounded); the default keeps a
        50k-input experiment's cache at tens of MB -- see
        :attr:`RunCache.DEFAULT_MAX_ENTRIES` -- and with a sharded store
        attached, evicted entries remain reachable from disk.
        """
        cache: Optional[RunCache] = None
        if use_cache:
            cache = RunCache(max_entries=max_entries, persist_path=cache_path)
            if cache_path:
                cache.load()
        return cls(
            executor=get_executor(executor, workers=workers, **(executor_options or {})),
            cache=cache,
            batch_chunk=batch_chunk,
        )

    # -- execution ------------------------------------------------------

    def run(
        self,
        program: PetaBricksProgram,
        config: Configuration,
        program_input: Any,
        need_output: bool = False,
    ) -> RunResult:
        """Execute (or recall) a single run.

        Measurement callers leave ``need_output`` False and may receive a
        cached, output-free result; deployment-style callers pass True and
        are guaranteed a result carrying the program's real output.
        """
        result, _cache_hit = self.run_info(
            program, config, program_input, need_output=need_output
        )
        return result

    def run_info(
        self,
        program: PetaBricksProgram,
        config: Configuration,
        program_input: Any,
        need_output: bool = False,
    ) -> Tuple[RunResult, bool]:
        """Like :meth:`run`, but also report whether the result was recalled.

        Returns ``(result, cache_hit)``.  ``cache_hit`` is True only when
        the result came straight from the run cache without executing the
        program -- deployment callers (:class:`repro.core.pipeline.
        DeployedProgram`, the serving layer) use it to keep recall latency
        distinguishable from real execution in their statistics.  The
        result is bit-identical either way; only the provenance differs.
        """
        self.telemetry.count("runs_requested")
        if self.cache is None:
            self.telemetry.count("runs_executed")
            return program.run(config, program_input), False
        key = run_key(program, config, program_input)
        cached = self.cache.get(key, need_output=need_output)
        if cached is not None:
            self.telemetry.count("cache_hits")
            return cached, True
        self.telemetry.count("runs_executed")
        result = program.run(config, program_input)
        if need_output:
            self.cache.put(key, result, has_output=True)
            return result, False
        stripped = _strip_output(result)
        self.cache.put(key, stripped, has_output=False)
        return stripped, False

    def run_pairs(
        self, program: PetaBricksProgram, pairs: Iterable[Task]
    ) -> List[RunResult]:
        """Execute a batch of (configuration, input) tasks, in order.

        Cache hits are recalled, identical tasks within a dispatch execute
        once, and the remaining misses go through the executor.  With
        :attr:`batch_chunk` set the batch is dispatched in content-ordered
        chunks (see :meth:`iter_pairs`); results are identical either way.
        """
        return list(self.iter_pairs(program, pairs))

    def iter_pairs(
        self, program: PetaBricksProgram, pairs: Iterable[Task]
    ) -> Iterator[RunResult]:
        """Stream results for a batch of (configuration, input) tasks, in order.

        The streaming core of :meth:`run_pairs` and :meth:`measure`: with
        :attr:`batch_chunk` set, ``pairs`` is consumed lazily in chunks of at
        most that many tasks -- each chunk is cache-checked, dispatched, and
        folded into the cache before the next chunk is even built -- so a
        50k x K1 measurement matrix never exists as one in-memory task list.
        Without a chunk size the whole batch is dispatched at once (legacy
        behaviour).  Enumeration order, and therefore every yielded result,
        is bit-identical in both modes: duplicates that whole-batch dispatch
        would deduplicate in-batch are instead answered by the cache entries
        the earlier chunk just filled.
        """
        chunk = self.batch_chunk
        if not chunk:
            materialized = pairs if isinstance(pairs, Sequence) else list(pairs)
            yield from self._dispatch_pairs(program, materialized)
            self._chunk_completed()
            return
        iterator = iter(pairs)
        while True:
            piece = list(itertools.islice(iterator, chunk))
            if not piece:
                return
            self.telemetry.count("chunks_dispatched")
            yield from self._dispatch_pairs(program, piece)
            self._chunk_completed()

    def _chunk_completed(self) -> None:
        """Chunk-boundary hook: checkpoint progress, honor injected crashes.

        The ``runtime.chunk`` fault site lives here so chaos plans can kill
        (or stall) a run at a precise chunk boundary; with a checkpoint
        attached, dirty cache shards and the resume manifest are persisted
        *before* the site fires -- the crash-then-resume test's contract.
        """
        if self.checkpoint is not None:
            self.checkpoint.chunk_completed(self)
        maybe_fail("runtime.chunk")

    def _dispatch_pairs(
        self, program: PetaBricksProgram, pairs: Sequence[Task]
    ) -> List[RunResult]:
        """Cache-check and execute one dispatch unit (a whole batch or chunk)."""
        self.telemetry.count("runs_requested", len(pairs))
        if self.cache is None:
            results = self.executor.run_batch(program, pairs)
            self.telemetry.count("runs_executed", len(pairs))
            return results

        keys = self._batch_keys(program, pairs)
        resolved: Dict[str, RunResult] = {}
        miss_keys: List[str] = []
        miss_tasks: List[Task] = []
        for key, task in zip(keys, pairs):
            if key in resolved:
                self.telemetry.count("cache_hits")
                continue
            cached = self.cache.get(key)
            if cached is not None:
                self.telemetry.count("cache_hits")
                resolved[key] = cached
                continue
            resolved[key] = None  # type: ignore[assignment]  # placeholder, filled below
            miss_keys.append(key)
            miss_tasks.append(task)

        if miss_tasks:
            executed = self.executor.run_batch(program, miss_tasks)
            self.telemetry.count("runs_executed", len(miss_tasks))
            for key, result in zip(miss_keys, executed):
                stripped = _strip_output(result)
                self.cache.put(key, stripped, has_output=False)
                resolved[key] = stripped
        return [resolved[key] for key in keys]

    @staticmethod
    def _batch_keys(program: PetaBricksProgram, pairs: Sequence[Task]) -> List[str]:
        """Run keys for a batch, hashing each distinct object only once.

        An N x K measurement matrix holds only K distinct configurations and
        N distinct inputs, so the program fingerprint is computed once and
        config/input digests are memoized by object identity instead of
        re-hashing full array content N*K times.
        """
        prefix = f"{program.name}:{program_fingerprint(program)}"
        config_digests: Dict[int, str] = {}
        input_digests: Dict[int, str] = {}
        keys: List[str] = []
        for config, program_input in pairs:
            ck = config_digests.get(id(config))
            if ck is None:
                ck = config_digests.setdefault(id(config), config_key(config))
            ik = input_digests.get(id(program_input))
            if ik is None:
                ik = input_digests.setdefault(id(program_input), input_key(program_input))
            keys.append(f"{prefix}:{ck}:{ik}")
        return keys

    # -- generalized tasks ----------------------------------------------

    def run_tasks(
        self,
        specs: Sequence[TaskSpec],
        phase: Optional[str] = None,
        shared: Optional[Dict[str, Any]] = None,
    ) -> List[Any]:
        """Execute a batch of arbitrary content-keyed tasks, in order.

        The generalized counterpart of :meth:`run_pairs`: keyed tasks are
        recalled from the task cache, identical keys within a dispatch
        execute once, and the remaining work fans out over the executor.
        Results always come back in submission order, so callers see the
        exact sequence the equivalent serial loop would have produced --
        this is what keeps parallel searches (e.g. Level 2's classifier
        zoo) deterministic: candidates are compared in enumeration order,
        a key independent of completion order.  With :attr:`batch_chunk`
        set, the batch is dispatched chunk by chunk; duplicate keys across
        chunks are answered by the task-cache entries earlier chunks
        filled, so results stay identical to whole-batch dispatch.

        Args:
            specs: the tasks.  Tasks must be pure functions of their
                arguments; specs with ``key=None`` always execute.
            phase: optional telemetry phase name timing this batch.
            shared: mapping of :class:`repro.runtime.SharedRef` tokens to
                the large objects the task arguments reference; shipped to
                process-pool workers once per pool instead of being
                re-pickled with every chunk.
        """
        scope = self.telemetry.phase(phase) if phase else contextlib.nullcontext()
        with scope:
            chunk = self.batch_chunk
            if not chunk or len(specs) <= chunk:
                return self._run_tasks(specs, shared)
            results: List[Any] = []
            for start in range(0, len(specs), chunk):
                self.telemetry.count("chunks_dispatched")
                results.extend(self._run_tasks(specs[start : start + chunk], shared))
                self._chunk_completed()
            return results

    def _run_tasks(
        self, specs: Sequence[TaskSpec], shared: Optional[Dict[str, Any]] = None
    ) -> List[Any]:
        self.telemetry.count("tasks_requested", len(specs))
        if self.task_cache is None:
            calls: List[CallTask] = [(s.fn, s.args, s.kwargs) for s in specs]
            self.telemetry.count("tasks_executed", len(specs))
            return self.executor.run_calls(calls, shared=shared)

        results: List[Any] = [None] * len(specs)
        #: key -> slot of the first miss with that key (for in-batch dedup).
        pending: Dict[str, int] = {}
        #: slots whose result is copied from another slot after execution.
        aliases: List[tuple] = []
        miss_calls: List[CallTask] = []
        miss_slots: List[int] = []
        for slot, spec in enumerate(specs):
            if spec.key is None:
                miss_calls.append((spec.fn, spec.args, spec.kwargs))
                miss_slots.append(slot)
                continue
            cached = self.task_cache.get(spec.key)
            if not is_missing(cached):
                self.telemetry.count("task_cache_hits")
                results[slot] = cached
                continue
            first = pending.get(spec.key)
            if first is not None:
                self.telemetry.count("task_cache_hits")
                aliases.append((slot, first))
                continue
            pending[spec.key] = slot
            miss_calls.append((spec.fn, spec.args, spec.kwargs))
            miss_slots.append(slot)

        if miss_calls:
            executed = self.executor.run_calls(miss_calls, shared=shared)
            self.telemetry.count("tasks_executed", len(miss_calls))
            for slot, value in zip(miss_slots, executed):
                results[slot] = value
        for key, slot in pending.items():
            self.task_cache.put(key, results[slot])
        for slot, first in aliases:
            results[slot] = results[first]
        return results

    def measure(
        self,
        program: PetaBricksProgram,
        configs: Sequence[Configuration],
        inputs: Sequence[Any],
    ) -> Dict[str, np.ndarray]:
        """Run every configuration on every input; the paper's N x K matrix.

        Returns ``{"times": (n, k), "accuracies": (n, k)}`` with input rows
        and configuration columns, matching
        :func:`repro.core.level1.measure_performance`.

        The pair enumeration is lazy, *input-major* (all K configurations
        of input ``i`` before input ``i + 1``), and each result folds
        straight into the output arrays.  Input-major order matters for
        lazily generated inputs (:mod:`repro.core.inputs`): each input is
        materialized exactly once and shared by its K adjacent tasks, so a
        full matrix costs N materializations -- not N x K -- and with
        :attr:`batch_chunk` set only ~chunk/K inputs are ever in flight.
        The matrix itself (two ``(n, k)`` float arrays) is the only
        O(N x K) allocation.  Runs are pure functions of their content, so
        enumeration order never affects any value in the matrices.

        On a cache-less process-executor runtime the batch takes the shared
        -memory matrix path instead (:meth:`_measure_via_matrix`): workers
        write ``(rows, K)`` result blocks straight into a parent-owned
        shared block and whole chunks fold into the matrices by array
        slicing, replacing one pickled result object per run with two
        flat float64 rows per dispatch.  Values are bit-identical on every
        path.
        """
        if self._rows_distributable(program, configs, inputs):
            return self._measure_via_descriptors(program, configs, inputs)
        n, k = len(inputs), len(configs)
        if self._matrix_transportable(program, configs, inputs):
            matrices = self._measure_via_matrix(program, configs, inputs)
            if matrices is not None:
                return matrices
        pairs = (
            (config, program_input) for program_input in inputs for config in configs
        )
        times = np.zeros((n, k))
        accuracies = np.zeros((n, k))
        for flat, result in enumerate(self.iter_pairs(program, pairs)):
            i, j = divmod(flat, k)
            times[i, j] = result.time
            accuracies[i, j] = result.accuracy
        return {"times": times, "accuracies": accuracies}

    def _matrix_transportable(
        self, program: PetaBricksProgram, configs: Sequence[Configuration], inputs: Any
    ) -> bool:
        """Can this measure call use the shared-memory matrix transport?

        Requires an executor exposing ``run_measure`` (the process pool) and
        a cache-less runtime: a measurement run carries exactly two floats
        (time, accuracy) beyond its output, so a matrix fully describes the
        batch -- but a caching runtime must consult and fill the run cache
        with keyed :class:`RunResult` entries, which the pair path does.
        """
        if self.cache is not None:
            return False
        if not hasattr(self.executor, "run_measure"):
            return False
        return len(inputs) > 0 and len(configs) > 0

    def _measure_via_matrix(
        self,
        program: PetaBricksProgram,
        configs: Sequence[Configuration],
        inputs: Sequence[Any],
    ) -> Optional[Dict[str, np.ndarray]]:
        """Process-pool measure: fold shared-memory chunk blocks by slicing.

        Chunks are row-aligned (``batch_chunk // K`` rows, whole batch when
        streaming is off); the executor returns each chunk's times and
        accuracies as flat float64 arrays shipped via shared memory, and
        every chunk lands in the N x K matrices as one slice assignment
        instead of chunk x K per-element stores.  Returns None -- with
        nothing executed -- when the executor cannot ship the batch; the
        caller falls back to the ordinary streamed pair path.
        """
        n, k = len(inputs), len(configs)
        rows_per_chunk = max(1, self.batch_chunk // k) if self.batch_chunk else n
        times = np.zeros((n, k))
        accuracies = np.zeros((n, k))
        flat_times = times.reshape(n * k)
        flat_accuracies = accuracies.reshape(n * k)
        for row in range(0, n, rows_per_chunk):
            stop = min(row + rows_per_chunk, n)
            piece = [
                (config, program_input)
                for program_input in inputs[row:stop]
                for config in configs
            ]
            if self.batch_chunk:
                self.telemetry.count("chunks_dispatched")
            chunk = self.executor.run_measure(program, piece, columns=k)
            if chunk is None:
                if row == 0:
                    return None  # nothing ran; the pair path handles fallback
                # Later chunks of a homogeneous batch should never become
                # unshippable, but if one does, finish it in-process rather
                # than re-running the chunks that already executed.
                results = [program.run(config, value) for config, value in piece]
                chunk = (
                    np.fromiter((r.time for r in results), dtype=np.float64),
                    np.fromiter((r.accuracy for r in results), dtype=np.float64),
                )
            start = row * k
            flat_times[start : start + len(piece)] = chunk[0]
            flat_accuracies[start : start + len(piece)] = chunk[1]
            self.telemetry.count("runs_requested", len(piece))
            self.telemetry.count("runs_executed", len(piece))
            self._chunk_completed()
        return {"times": times, "accuracies": accuracies}

    def _rows_distributable(
        self, program: PetaBricksProgram, configs: Sequence[Configuration], inputs: Any
    ) -> bool:
        """Can this measure call ship row descriptors instead of inputs?

        Requires an executor exposing ``run_rows`` (the distributed one), an
        input *source* (lazy, known length, per-index materialization -- a
        plain list would force materializing everything just to ship it),
        and a picklable ``(program, configs, source)`` triple.  Anything
        else falls back to the ordinary streamed pair path, which is always
        correct.
        """
        if not getattr(self.executor, "supports_input_sources", False):
            return False
        if not hasattr(self.executor, "run_rows"):
            return False
        if not (hasattr(inputs, "materialize") and hasattr(inputs, "__len__")):
            return False
        if len(inputs) == 0 or len(configs) == 0:
            return False
        try:
            pickle.dumps((program, list(configs), inputs))
        except Exception:
            return False
        return True

    def _measure_via_descriptors(
        self,
        program: PetaBricksProgram,
        configs: Sequence[Configuration],
        source: Any,
    ) -> Dict[str, np.ndarray]:
        """Distributed measure: lease (start, stop) row ranges of a source.

        Workers rebuild their input rows from the (few-hundred-byte) source
        descriptor, execute through their local caches, and return
        ``(run_key, time, accuracy, extra)`` entries in row-major order; the
        entries are folded into the matrices *by lease index* -- content
        order, independent of which worker answered when -- and into this
        runtime's cache, so a later ``save_cache`` persists work done on
        every worker.  Values are bit-identical to the serial path because
        runs are pure functions of their content.
        """
        n, k = len(source), len(configs)
        rows_per_lease = max(1, (self.batch_chunk or 0) // k) if self.batch_chunk else 0
        if not rows_per_lease:
            workers = max(1, getattr(self.executor, "workers", 1))
            rows_per_lease = max(1, -(-n // (workers * 4)))
        ranges = [
            (start, min(start + rows_per_lease, n))
            for start in range(0, n, rows_per_lease)
        ]
        self.telemetry.count("runs_requested", n * k)
        with self.telemetry.phase("measure.distributed"):
            leased = self.executor.run_rows(program, configs, source, ranges)
        times = np.zeros((n, k))
        accuracies = np.zeros((n, k))
        worker_hits = 0
        for (start, _stop), block in zip(ranges, leased):
            worker_hits += int(block.get("cache_hits", 0))
            for offset, (key, seconds, accuracy, extra) in enumerate(block["entries"]):
                i, j = divmod(offset, k)
                times[start + i, j] = seconds
                accuracies[start + i, j] = accuracy
                if self.cache is not None and key not in self.cache:
                    self.cache.put(
                        key,
                        RunResult(
                            output=None,
                            time=float(seconds),
                            accuracy=float(accuracy),
                            extra=dict(extra),
                        ),
                        has_output=False,
                    )
        self.telemetry.count("runs_executed", n * k - worker_hits)
        if worker_hits:
            self.telemetry.count("worker_cache_hits", worker_hits)
        self._chunk_completed()
        return {"times": times, "accuracies": accuracies}

    # -- management -----------------------------------------------------

    def save_cache(self, path: Optional[str] = None) -> int:
        """Persist the cache (no-op returning 0 when caching is disabled)."""
        if self.cache is None:
            return 0
        return self.cache.save(path)

    def stats(self) -> Dict[str, Any]:
        """Executor, cache, and telemetry state as a plain dict."""
        info: Dict[str, Any] = {
            "executor": self.executor.name,
            "telemetry": self.telemetry.snapshot(),
        }
        fallback = getattr(self.executor, "fallback_reason", None)
        if fallback:
            info["executor_fallback"] = fallback
        lease_stats = getattr(self.executor, "lease_stats", None)
        if lease_stats:
            info["distributed"] = dict(lease_stats)
        retries = getattr(self.executor, "retry_counters", None)
        if retries:
            info["retries"] = dict(retries)
        if self.cache is not None:
            info["cache"] = self.cache.stats()
        if self.task_cache is not None:
            info["task_cache"] = self.task_cache.stats()
        return info

    def close(self) -> None:
        """Release executor resources (worker pools)."""
        self.executor.close()

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        cache = "on" if self.cache is not None else "off"
        return f"Runtime(executor={self.executor.name!r}, cache={cache})"


#: Process-wide fallback runtime used when call sites do not pass one.
_DEFAULT: Optional[Runtime] = None


def default_runtime() -> Runtime:
    """The shared serial, cache-less runtime (legacy-equivalent behaviour)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Runtime(executor=SerialExecutor(), cache=None)
    return _DEFAULT
