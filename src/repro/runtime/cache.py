"""Content-keyed cache of program run results.

Every run in this reproduction is a deterministic function of (program,
configuration, input) -- the cost model is deterministic and every benchmark
seeds its internal RNGs from constants.  That makes run results safely
shareable across pipeline stages and experiments: Level 1's measurement
matrix, the autotuner's population evaluations, the dynamic oracle's
re-runs, and a whole Table-1 row can all draw from one
:class:`RunCache`.

Two storage tiers:

* **in-memory** -- an LRU-bounded dict of :class:`~repro.lang.program.RunResult`
  objects.  A hit returns the *identical* result object that was stored.
* **on-disk (optional)** -- a JSON file holding the measurements (time,
  accuracy, JSON-safe extras) but *not* the program output.  Loaded entries
  are marked output-free; a caller that needs the output (deployment-style
  runs) treats them as misses and re-executes.
"""

from __future__ import annotations

import base64
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.lang.program import RunResult

#: On-disk format version; bumped when the entry layout changes.
_FORMAT_VERSION = 1

#: Prefix marking a key that was base64-escaped for persistence.  Keys are
#: normally hex digests with a program-name prefix, but program names are
#: arbitrary strings and may contain payloads that are not UTF-8-safe (lone
#: surrogates from undecodable filenames, say).  Emitting those raw would
#: produce a file that is not valid UTF-8/JSON -- readable only by lenient
#: parsers, and silently dropped wholesale by :meth:`RunCache.load` under a
#: strict one -- so such keys are escaped to ASCII on save and restored
#: exactly on load.
_ESCAPED_KEY_PREFIX = "\x00b64:"


def _escape_key(key: str) -> str:
    """ASCII-safe, exactly invertible encoding of an arbitrary cache key.

    UTF-8-safe keys pass through unchanged; anything else (or a key that
    happens to start with the escape prefix itself) is base64-encoded with
    ``surrogatepass`` so even lone surrogates round-trip bit-exactly.
    """
    needs_escape = key.startswith(_ESCAPED_KEY_PREFIX)
    if not needs_escape:
        try:
            key.encode("utf-8")
        except UnicodeEncodeError:
            needs_escape = True
    if not needs_escape:
        return key
    raw = key.encode("utf-8", "surrogatepass")
    return _ESCAPED_KEY_PREFIX + base64.urlsafe_b64encode(raw).decode("ascii")


def _unescape_key(stored: str) -> str:
    """Invert :func:`_escape_key`."""
    if not stored.startswith(_ESCAPED_KEY_PREFIX):
        return stored
    raw = base64.urlsafe_b64decode(stored[len(_ESCAPED_KEY_PREFIX):].encode("ascii"))
    return raw.decode("utf-8", "surrogatepass")


@dataclass
class CacheEntry:
    """One stored run.

    Attributes:
        result: the stored run result.
        has_output: False for entries loaded from disk (or stored stripped),
            whose ``result.output`` is None regardless of what the program
            produced.
    """

    result: RunResult
    has_output: bool = True


class RunCache:
    """LRU cache of run results with optional JSON persistence.

    Args:
        max_entries: in-memory entry cap; least-recently-used entries are
            evicted once the cap is exceeded.  ``None`` means unbounded.
        persist_path: default file path for :meth:`save` / :meth:`load`.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        persist_path: Optional[str] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.max_entries = max_entries
        self.persist_path = persist_path
        self._store: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- core operations ------------------------------------------------

    def get(self, key: str, need_output: bool = False) -> Optional[RunResult]:
        """Return the cached result for ``key``, or None on a miss.

        Args:
            key: run key (see :mod:`repro.runtime.keys`).
            need_output: when True, an output-free entry (loaded from disk)
                counts as a miss, so the caller re-executes and refreshes it.
        """
        entry = self._store.get(key)
        if entry is None or (need_output and not entry.has_output):
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return entry.result

    def put(self, key: str, result: RunResult, has_output: bool = True) -> None:
        """Store ``result`` under ``key``, evicting LRU entries if needed."""
        self._store[key] = CacheEntry(result=result, has_output=has_output)
        self._store.move_to_end(key)
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._store.clear()

    # -- persistence ----------------------------------------------------

    def save(self, path: Optional[str] = None) -> int:
        """Write all entries' measurements to a JSON file.

        Program outputs are not persisted (they can be arbitrary objects);
        reloaded entries therefore serve measurement lookups only.  Returns
        the number of entries written.  The write is atomic (temp file +
        rename), so a crashed run cannot leave a truncated cache behind.

        Keys that are not UTF-8-safe are escaped to ASCII (and restored
        exactly by :meth:`load`) so the file stays valid UTF-8 JSON; a
        non-string key raises ``ValueError`` rather than being dropped.
        """
        target = path or self.persist_path
        if target is None:
            raise ValueError("no persist path configured")
        entries: Dict[str, Dict[str, Any]] = {}
        for key, entry in self._store.items():
            if not isinstance(key, str):
                raise ValueError(f"cache keys must be strings, got {type(key).__name__}")
            record: Dict[str, Any] = {
                "time": entry.result.time,
                "accuracy": entry.result.accuracy,
            }
            extra = _json_safe_extra(entry.result.extra)
            if extra:
                record["extra"] = extra
            entries[_escape_key(key)] = record
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, target)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        return len(entries)

    def load(self, path: Optional[str] = None) -> int:
        """Load entries from a JSON file written by :meth:`save`.

        Missing, corrupt, or incompatible files are tolerated (returns 0):
        the cache is an optimization, so a bad file must degrade to a cold
        start, never kill the run.  Loaded entries are output-free.
        Returns the number of entries loaded.
        """
        target = path or self.persist_path
        if target is None:
            raise ValueError("no persist path configured")
        if not os.path.exists(target):
            return 0
        try:
            with open(target, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
                return 0
            entries = payload.get("entries", {})
            loaded = 0
            for key, record in entries.items():
                result = RunResult(
                    output=None,
                    time=float(record["time"]),
                    accuracy=float(record["accuracy"]),
                    extra=dict(record.get("extra", {})),
                )
                self.put(_unescape_key(key), result, has_output=False)
                loaded += 1
            return loaded
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus the current size."""
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunCache(entries={len(self._store)}, hits={self.hits}, misses={self.misses})"


def _json_safe_extra(extra: Dict[str, Any]) -> Dict[str, Any]:
    """Keep only the JSON- and UTF-8-serializable part of a result's extras.

    Extras are best-effort annotations, so unserializable values (and values
    whose JSON encoding is not valid UTF-8, e.g. strings holding lone
    surrogates) are deliberately omitted from the persisted record; the
    in-memory entry keeps them.
    """
    safe: Dict[str, Any] = {}
    for key, value in extra.items():
        try:
            # ensure_ascii=False forces raw characters, so strings holding
            # lone surrogates fail here instead of producing escape
            # sequences that strict JSON parsers reject.
            json.dumps({key: value}, ensure_ascii=False).encode("utf-8")
        except (TypeError, ValueError, UnicodeEncodeError):
            continue
        safe[key] = value
    return safe
