"""Content-keyed cache of program run results.

Every run in this reproduction is a deterministic function of (program,
configuration, input) -- the cost model is deterministic and every benchmark
seeds its internal RNGs from constants.  That makes run results safely
shareable across pipeline stages and experiments: Level 1's measurement
matrix, the autotuner's population evaluations, the dynamic oracle's
re-runs, and a whole Table-1 row can all draw from one
:class:`RunCache`.

Two storage tiers:

* **in-memory** -- an LRU-bounded dict of :class:`~repro.lang.program.RunResult`
  objects.  A hit returns the *identical* result object that was stored.
* **on-disk (optional)** -- a *sharded store*: a directory holding a small
  manifest (``cache-meta.json``) and one JSON file per key-hash prefix under
  ``shards/``.  Shards record the measurements (time, accuracy, JSON-safe
  extras) but *not* the program output; loaded entries are marked
  output-free, and a caller that needs the output (deployment-style runs)
  treats them as misses and re-executes.

The sharded layout is what lets the cache follow the runtime to the paper's
50-60k-input regime: :meth:`RunCache.save` rewrites only the shards touched
since the last save (atomically, temp file + rename, merging with whatever
is already on disk), and :meth:`RunCache.load` defers reading a shard until
the first lookup that lands in it.  A legacy single-file cache written by
earlier versions is migrated to the sharded layout transparently on first
load.
"""

from __future__ import annotations

import base64
import glob
import hashlib
import json
import os
import shutil
import tempfile
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from repro.lang.program import RunResult
from repro.resilience.faults import truncate_bytes as _fault_truncate_bytes

#: On-disk format version of one entry table (a shard file or a legacy
#: single-file cache); bumped when the entry layout changes.
_FORMAT_VERSION = 1

#: Manifest format version of the sharded store.
_STORE_VERSION = 1

#: Hex digits of the key hash that select a shard (2 -> up to 256 shards).
_SHARD_PREFIX_LEN = 2

#: Manifest filename inside a sharded store directory.
_META_NAME = "cache-meta.json"

#: Subdirectory of a sharded store holding the shard files.
_SHARDS_DIR = "shards"

#: Prefix marking a key that was base64-escaped for persistence.  Keys are
#: normally hex digests with a program-name prefix, but program names are
#: arbitrary strings and may contain payloads that are not UTF-8-safe (lone
#: surrogates from undecodable filenames, say).  Emitting those raw would
#: produce a file that is not valid UTF-8/JSON -- readable only by lenient
#: parsers, and silently dropped wholesale by :meth:`RunCache.load` under a
#: strict one -- so such keys are escaped to ASCII on save and restored
#: exactly on load.
_ESCAPED_KEY_PREFIX = "\x00b64:"


def _escape_key(key: str) -> str:
    """ASCII-safe, exactly invertible encoding of an arbitrary cache key.

    UTF-8-safe keys pass through unchanged; anything else (or a key that
    happens to start with the escape prefix itself) is base64-encoded with
    ``surrogatepass`` so even lone surrogates round-trip bit-exactly.
    """
    needs_escape = key.startswith(_ESCAPED_KEY_PREFIX)
    if not needs_escape:
        try:
            key.encode("utf-8")
        except UnicodeEncodeError:
            needs_escape = True
    if not needs_escape:
        return key
    raw = key.encode("utf-8", "surrogatepass")
    return _ESCAPED_KEY_PREFIX + base64.urlsafe_b64encode(raw).decode("ascii")


def _unescape_key(stored: str) -> str:
    """Invert :func:`_escape_key`."""
    if not stored.startswith(_ESCAPED_KEY_PREFIX):
        return stored
    raw = base64.urlsafe_b64decode(stored[len(_ESCAPED_KEY_PREFIX):].encode("ascii"))
    return raw.decode("utf-8", "surrogatepass")


def _shard_of(key: str) -> str:
    """The shard id (hex prefix) a key belongs to.

    Hashing the *escaped* key keeps the computation ASCII-safe for keys
    carrying lone surrogates and makes the shard assignment a pure function
    of what actually lands in the file.
    """
    digest = hashlib.sha1(_escape_key(key).encode("ascii", "backslashreplace"))
    return digest.hexdigest()[:_SHARD_PREFIX_LEN]


def _entry_record(entry: "CacheEntry") -> Dict[str, Any]:
    """The JSON record persisted for one cache entry (measurements only)."""
    record: Dict[str, Any] = {
        "time": entry.result.time,
        "accuracy": entry.result.accuracy,
    }
    extra = _json_safe_extra(entry.result.extra)
    if extra:
        record["extra"] = extra
    return record


def _record_result(record: Dict[str, Any]) -> RunResult:
    """Invert :func:`_entry_record` (outputs are never persisted)."""
    return RunResult(
        output=None,
        time=float(record["time"]),
        accuracy=float(record["accuracy"]),
        extra=dict(record.get("extra", {})),
    )


def _atomic_write_json(target: str, payload: Any, site: str = "cache.shard_write") -> None:
    """Write ``payload`` as UTF-8 JSON via temp file + fsync + rename.

    Durability: the temp file is flushed and fsynced before the rename, and
    the containing directory is fsynced after it, so a power-loss-style kill
    leaves either the old file or the complete new one -- never a renamed
    half-write.  (Checkpoint manifests and cache shards both ride on this.)

    Any failure -- a mid-``json.dump`` serialization error included -- removes
    the temp file before the original exception re-raises, so a failed save
    never litters the shard directory with orphaned ``*.tmp`` files.  Cleanup
    itself is exception-safe: an unlink error (the temp file already swept by
    another process, say) is suppressed rather than allowed to mask what
    actually went wrong.

    ``site`` names the write's fault-injection site (see
    :mod:`repro.resilience.faults`); a ``truncate`` fault lands the first N
    bytes on disk -- the torn write the fsyncs exist to prevent, which the
    corrupt-shard tests inject to prove readers degrade instead of crash.
    """
    directory = os.path.dirname(os.path.abspath(target))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            torn = _fault_truncate_bytes(site, detail=target)
            if torn is not None:
                handle.truncate(torn)
            os.fsync(handle.fileno())
        os.replace(tmp_path, target)
        _fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _fsync_directory(directory: str) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best-effort: some platforms/filesystems refuse to open or fsync
    directories; losing that last bit of durability there is better than
    failing every save.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(dir_fd)


def _read_entry_table(path: str) -> Optional[Dict[str, Dict[str, Any]]]:
    """Parse one entry table (shard file or legacy cache file).

    Returns the ``{escaped_key: record}`` mapping, or None when the file is
    missing, corrupt, or of an incompatible version (the caller decides
    whether that deserves a warning).
    """
    if not os.path.isfile(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
            return None
        entries = payload.get("entries", {})
        if not isinstance(entries, dict):
            return None
        # Validate eagerly so a half-garbled shard is rejected wholesale
        # instead of crashing a later lazy lookup.
        for record in entries.values():
            float(record["time"])
            float(record["accuracy"])
        return entries
    except (OSError, ValueError, KeyError, TypeError, AttributeError):
        return None


@dataclass
class CacheEntry:
    """One stored run.

    Attributes:
        result: the stored run result.
        has_output: False for entries loaded from disk (or stored stripped),
            whose ``result.output`` is None regardless of what the program
            produced.
    """

    result: RunResult
    has_output: bool = True


class RunCache:
    """LRU cache of run results with optional sharded JSON persistence.

    Args:
        max_entries: in-memory entry cap; least-recently-used entries are
            evicted once the cap is exceeded.  ``None`` means unbounded.
            Capped caches with an attached store stay *complete* from the
            caller's view: a lookup whose entry was evicted re-reads just
            that key from its shard (see :meth:`get`), so eviction trades a
            small file read for the bounded footprint, never a re-execution
            of anything already persisted.
        persist_path: default store path for :meth:`save` / :meth:`load`.
            The path names a *directory* (the sharded store); a legacy
            single-file JSON cache found at the path is migrated in place on
            first load.
    """

    #: Default in-memory entry cap used by :meth:`repro.runtime.Runtime.create`
    #: (overridable via ``--cache-max-entries`` / ``REPRO_CACHE_MAX_ENTRIES``).
    #: An in-memory entry costs ~450 bytes (key + output-free ``RunResult``;
    #: measured by ``benchmarks/test_bench_runtime.py::
    #: test_run_cache_entry_footprint``), so the cap bounds the cache at
    #: ~45 MB -- far above a whole Table-1 row at default sizes, while a
    #: 50k-input x K1 experiment (~750k distinct runs) stays bounded
    #: instead of growing to ~340 MB.  Measurement runs touch each key
    #: once, so LRU eviction inside such a sweep costs nothing.
    DEFAULT_MAX_ENTRIES = 100_000

    def __init__(
        self,
        max_entries: Optional[int] = None,
        persist_path: Optional[str] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.max_entries = max_entries
        self.persist_path = persist_path
        self._store: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Entries recovered from disk because a capped cache missed on a
        #: key whose shard had already been faulted in (LRU-evicted since).
        self.shard_rereads = 0
        #: Store directory attached by :meth:`load` for lazy shard reads.
        self._attached_store: Optional[str] = None
        #: Shard ids already read (or found missing) from the attached store.
        self._seen_shards: Set[str] = set()
        #: Shard ids holding entries added/updated since the last save.
        self._dirty_shards: Set[str] = set()
        #: Shard ids that have lost at least one entry to LRU eviction since
        #: being faulted in.  A miss on a seen shard outside this set cannot
        #: be eviction's doing, so it skips the disk re-read entirely -- a
        #: cold miss (brand-new run) never pays a shard parse unless the
        #: cache has actually been churning that shard.
        self._evicted_shards: Set[str] = set()

    # -- core operations ------------------------------------------------

    def get(self, key: str, need_output: bool = False) -> Optional[RunResult]:
        """Return the cached result for ``key``, or None on a miss.

        When a sharded store is attached (see :meth:`load`), a miss first
        faults in the shard the key hashes to -- each shard is read at most
        once per process -- so the big on-disk cache never loads wholesale.

        Args:
            key: run key (see :mod:`repro.runtime.keys`).
            need_output: when True, an output-free entry (loaded from disk)
                counts as a miss, so the caller re-executes and refreshes it.
        """
        entry = self._store.get(key)
        if entry is None and self._fault_in_shard(key):
            entry = self._store.get(key)
        if entry is None or (need_output and not entry.has_output):
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return entry.result

    def put(self, key: str, result: RunResult, has_output: bool = True) -> None:
        """Store ``result`` under ``key``, evicting LRU entries if needed."""
        self._store[key] = CacheEntry(result=result, has_output=has_output)
        self._store.move_to_end(key)
        if self.persist_path is not None and isinstance(key, str):
            self._dirty_shards.add(_shard_of(key))
        self._evict_over_cap()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def clear(self) -> None:
        """Drop all in-memory entries (statistics and disk state are kept)."""
        self._store.clear()

    def _insert_loaded(self, key: str, result: RunResult) -> None:
        """Insert an entry read from disk.

        Unlike :meth:`put` this does not mark the key's shard dirty -- the
        entry is already persisted -- so lazy faults never force a pointless
        shard rewrite (or, worse, mask a genuinely dirty shard's pending
        additions by being conflated with them).
        """
        self._store[key] = CacheEntry(result=result, has_output=False)
        self._store.move_to_end(key)
        self._evict_over_cap()

    def _evict_over_cap(self) -> None:
        """Drop LRU entries past the cap, remembering which shards they hit."""
        if self.max_entries is None:
            return
        while len(self._store) > self.max_entries:
            evicted_key, _ = self._store.popitem(last=False)
            self.evictions += 1
            if self._attached_store is not None and isinstance(evicted_key, str):
                self._evicted_shards.add(_shard_of(evicted_key))

    # -- sharded persistence --------------------------------------------

    def save(self, path: Optional[str] = None) -> int:
        """Persist dirty shards to the sharded store; returns entries written.

        Only the shards touched since the last save (plus, for a store other
        than the attached one, every shard holding in-memory entries) are
        rewritten.  Each shard write is atomic (temp file + rename) and
        *merges* with the shard already on disk -- in-memory entries win on
        key collision -- so concurrent writers to the same store and entries
        evicted from memory since loading are never silently dropped.

        Program outputs are not persisted (they can be arbitrary objects);
        reloaded entries therefore serve measurement lookups only.  Keys
        that are not UTF-8-safe are escaped to ASCII (and restored exactly
        by :meth:`load`) so every file stays valid UTF-8 JSON; a non-string
        key raises ``ValueError`` rather than being dropped.
        """
        target = path or self.persist_path
        if target is None:
            raise ValueError("no persist path configured")
        if os.path.isfile(target):
            # A file at the store path means a legacy cache whose migration
            # failed earlier (load() already warned).  Persisting is an
            # optimization, so degrade rather than crash the run -- and
            # never clobber the user's file with a directory.
            warnings.warn(
                f"not persisting run cache: {target!r} is a file, not a "
                "sharded store directory",
                stacklevel=2,
            )
            return 0

        by_shard: Dict[str, Dict[str, Dict[str, Any]]] = {}
        for key, entry in self._store.items():
            if not isinstance(key, str):
                raise ValueError(f"cache keys must be strings, got {type(key).__name__}")
            by_shard.setdefault(_shard_of(key), {})[_escape_key(key)] = _entry_record(entry)

        own_store = self._is_own_store(target)
        if own_store:
            # Entries faulted in from this store are already on disk; only
            # shards with additions since the last save need rewriting.
            shard_ids = set(self._dirty_shards)
        else:
            shard_ids = set(by_shard)

        written = 0
        counts: Dict[str, int] = {}
        for shard_id in sorted(shard_ids):
            shard_path = self._shard_path(target, shard_id)
            merged = _read_entry_table(shard_path) or {}
            merged.update(by_shard.get(shard_id, {}))
            _atomic_write_json(
                shard_path, {"version": _FORMAT_VERSION, "entries": merged}
            )
            counts[shard_id] = len(merged)
            written += len(merged)
        self._write_meta(target, counts)
        if own_store:
            self._dirty_shards.clear()
        return written

    def load(self, path: Optional[str] = None) -> int:
        """Attach a sharded store for lazy reads; returns entries available.

        Shards are *not* read here -- each one is faulted in by the first
        :meth:`get` that lands in it -- so attaching a 50k-entry store costs
        one manifest read.  The returned count comes from the manifest.

        A legacy single-file cache found at ``path`` is loaded eagerly and
        migrated to the sharded layout in place (one-shot: the file is
        replaced by a store directory at the same path).

        Missing, corrupt, or incompatible files are tolerated: the cache is
        an optimization, so a bad file degrades to a cold start (with a
        warning naming the offender), never a crash.  Loaded entries are
        output-free.
        """
        target = path or self.persist_path
        if target is None:
            raise ValueError("no persist path configured")
        if os.path.isfile(target):
            return self._load_legacy_and_migrate(target)
        if not os.path.isdir(target):
            return 0

        self._attached_store = target
        self._seen_shards = set()
        meta = self._read_meta(target)
        if meta is not None:
            return int(sum(meta.get("shards", {}).values()))

        # No readable manifest (corrupt, or a foreign directory): fall back
        # to an eager scan of whatever shard files are present, rebuilding
        # the manifest as a side effect.
        shard_paths = sorted(
            glob.glob(os.path.join(target, _SHARDS_DIR, "*.json"))
        )
        if not shard_paths and not os.path.exists(os.path.join(target, _META_NAME)):
            return 0
        warnings.warn(
            f"run cache store {target!r} has no readable manifest; "
            "rescanning shards",
            stacklevel=2,
        )
        loaded = 0
        counts: Dict[str, int] = {}
        for shard_path in shard_paths:
            shard_id = os.path.splitext(os.path.basename(shard_path))[0]
            entries = _read_entry_table(shard_path)
            if entries is None:
                warnings.warn(
                    f"run cache shard {shard_path!r} is corrupt; ignoring it",
                    stacklevel=2,
                )
                continue
            self._seen_shards.add(shard_id)
            for stored, record in entries.items():
                self._insert_loaded(_unescape_key(stored), _record_result(record))
            counts[shard_id] = len(entries)
            loaded += len(entries)
        self._write_meta(target, counts)
        return loaded

    def _load_legacy_and_migrate(self, target: str) -> int:
        """Load a legacy single-file cache and convert it to a sharded store."""
        entries = _read_entry_table(target)
        if entries is None:
            warnings.warn(
                f"run cache file {target!r} is corrupt or incompatible; "
                "starting with an empty cache",
                stacklevel=3,
            )
            return 0
        for stored, record in entries.items():
            self._insert_loaded(_unescape_key(stored), _record_result(record))

        # One-shot migration: build the store next to the file, then swap it
        # into place.  A failure (permissions, say) only costs the migration
        # -- the entries are already in memory and a later save() retries.
        staging: Optional[str] = None
        by_shard: Dict[str, Dict[str, Dict[str, Any]]] = {}
        try:
            staging = tempfile.mkdtemp(
                dir=os.path.dirname(os.path.abspath(target)), suffix=".migrating"
            )
            for stored, record in entries.items():
                by_shard.setdefault(_shard_of(_unescape_key(stored)), {})[stored] = record
            counts = {}
            for shard_id, shard_entries in by_shard.items():
                _atomic_write_json(
                    self._shard_path(staging, shard_id),
                    {"version": _FORMAT_VERSION, "entries": shard_entries},
                )
                counts[shard_id] = len(shard_entries)
            self._write_meta(staging, counts)
            # Swap restorably: park the legacy file first so a failing
            # rename can put it back instead of losing the cache on disk.
            backup = target + ".pre-shard"
            os.replace(target, backup)
            try:
                os.rename(staging, target)
            except OSError:
                os.replace(backup, target)
                raise
            os.unlink(backup)
        except OSError as error:
            warnings.warn(
                f"could not migrate legacy run cache {target!r} to the "
                f"sharded layout: {error}",
                stacklevel=3,
            )
            if staging is not None:
                shutil.rmtree(staging, ignore_errors=True)
            return len(entries)
        self._attached_store = target
        self._seen_shards = set(by_shard)
        return len(entries)

    def _fault_in_shard(self, key: str) -> bool:
        """Read ``key``'s shard from the attached store; True if it loaded.

        A shard is normally read at most once per process.  The exception is
        a *capped* cache: entries faulted in earlier may since have been
        LRU-evicted, so a miss on a seen shard re-reads just the requested
        key from disk (:meth:`_reread_single_key`) -- evicted entries stay
        reachable through the sharded store instead of silently demanding
        re-execution.
        """
        if self._attached_store is None or not isinstance(key, str):
            return False
        shard_id = _shard_of(key)
        if shard_id in self._seen_shards:
            if self.max_entries is None:
                return False
            return self._reread_single_key(key, shard_id)
        self._seen_shards.add(shard_id)
        shard_path = self._shard_path(self._attached_store, shard_id)
        if not os.path.exists(shard_path):
            return False
        entries = _read_entry_table(shard_path)
        if entries is None:
            warnings.warn(
                f"run cache shard {shard_path!r} is corrupt; ignoring it",
                stacklevel=3,
            )
            return False
        requested: Optional[Dict[str, Any]] = None
        for stored, record in entries.items():
            stored_key = _unescape_key(stored)
            if stored_key == key:
                # Defer the key being looked up to the end: inserting it
                # mid-shard could see it LRU-evicted by the rest of the
                # shard's entries on a tightly capped cache, and the shard
                # is never re-read, so the miss would become permanent.
                requested = record
                continue
            # A fresher in-memory entry (e.g. one carrying a live output)
            # must not be clobbered by its stale on-disk measurement.
            if stored_key not in self._store:
                self._insert_loaded(stored_key, _record_result(record))
        if requested is not None and key not in self._store:
            self._insert_loaded(key, _record_result(requested))
        return True

    def _reread_single_key(self, key: str, shard_id: str) -> bool:
        """Recover one evicted entry from an already-seen shard.

        Only runs for shards that have actually lost entries to eviction
        (:attr:`_evicted_shards`), so a brand-new key's miss costs no disk
        work unless the cache is churning its shard.  Only the requested
        key is inserted -- re-importing the whole shard into a tightly
        capped cache would evict most of the working set to answer one
        lookup.  Entries that were ``put()`` after the last save and then
        evicted are genuinely gone (the store never saw them); the caller
        re-executes those, which is always sound.
        """
        if shard_id not in self._evicted_shards:
            return False
        shard_path = self._shard_path(self._attached_store, shard_id)
        entries = _read_entry_table(shard_path)
        if entries is None:
            return False
        record = entries.get(_escape_key(key))
        if record is None:
            return False
        self.shard_rereads += 1
        self._insert_loaded(key, _record_result(record))
        return True

    def _is_own_store(self, target: str) -> bool:
        """Is ``target`` the store this cache's disk bookkeeping describes?

        The dirty-shard set says "these shards differ from the *attached*
        store" -- entries faulted in from it are deliberately not dirty.
        Saving anywhere else must therefore write every in-memory shard,
        or the faulted-in entries would silently be missing from the copy.
        With no store attached, ``persist_path`` is the reference: every
        in-memory entry not from disk was ``put()`` and marked dirty.
        """
        reference = (
            self._attached_store
            if self._attached_store is not None
            else self.persist_path
        )
        if reference is None:
            return False
        return os.path.abspath(target) == os.path.abspath(reference)

    @staticmethod
    def _shard_path(store: str, shard_id: str) -> str:
        return os.path.join(store, _SHARDS_DIR, f"{shard_id}.json")

    @staticmethod
    def _read_meta(store: str) -> Optional[Dict[str, Any]]:
        path = os.path.join(store, _META_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            if (
                not isinstance(meta, dict)
                or meta.get("store_version") != _STORE_VERSION
                or not isinstance(meta.get("shards"), dict)
            ):
                return None
            return meta
        except (OSError, ValueError):
            return None

    def _write_meta(self, store: str, counts: Dict[str, int]) -> None:
        """Merge shard entry counts into the store manifest (atomically)."""
        meta = self._read_meta(store) or {
            "store_version": _STORE_VERSION,
            "prefix_len": _SHARD_PREFIX_LEN,
            "shards": {},
        }
        meta["shards"].update(counts)
        _atomic_write_json(os.path.join(store, _META_NAME), meta)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus the current size."""
        info = {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
        if self._attached_store is not None:
            info["shards_loaded"] = len(self._seen_shards)
            if self.shard_rereads:
                info["shard_rereads"] = self.shard_rereads
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunCache(entries={len(self._store)}, hits={self.hits}, misses={self.misses})"


def _json_safe_extra(extra: Dict[str, Any]) -> Dict[str, Any]:
    """Keep only the JSON- and UTF-8-serializable part of a result's extras.

    Extras are best-effort annotations, so unserializable values (and values
    whose JSON encoding is not valid UTF-8, e.g. strings holding lone
    surrogates) are deliberately omitted from the persisted record; the
    in-memory entry keeps them.
    """
    safe: Dict[str, Any] = {}
    for key, value in extra.items():
        try:
            # ensure_ascii=False forces raw characters, so strings holding
            # lone surrogates fail here instead of producing escape
            # sequences that strict JSON parsers reject.
            json.dumps({key: value}, ensure_ascii=False).encode("utf-8")
        except (TypeError, ValueError, UnicodeEncodeError):
            continue
        safe[key] = value
    return safe
