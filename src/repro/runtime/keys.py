"""Content-based keys for the run cache.

A cached program run is identified by three components:

* the *program fingerprint* -- the program's name plus the identity of its
  run function and accuracy contract.  Two registry benchmarks that share a
  program (e.g. ``sort1`` and ``sort2``, which differ only in their input
  population) produce the same fingerprint and therefore share cache
  entries; two unrelated programs that happen to share a name do not.
* the *configuration key* -- a canonical digest of the configuration's
  parameter values (selectors included).
* the *input key* -- a canonical digest of the input's content (array
  bytes, dataclass fields, nested containers).

Keys are hex digests, so they survive a JSON round-trip unchanged and the
on-disk cache written by one process is readable by another.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
from typing import Any

import numpy as np

from repro.lang.config import Configuration
from repro.lang.program import PetaBricksProgram

#: Separator used when feeding structured tokens into the hash.
_SEP = b"\x1f"


def _update(digest: "hashlib._Hash", value: Any) -> None:
    """Feed one value (recursively) into the digest in a canonical form."""
    if value is None:
        digest.update(b"none")
    elif isinstance(value, bool):
        digest.update(b"bool" + _SEP + str(value).encode())
    elif isinstance(value, (int, np.integer)):
        digest.update(b"int" + _SEP + str(int(value)).encode())
    elif isinstance(value, (float, np.floating)):
        digest.update(b"float" + _SEP + repr(float(value)).encode())
    elif isinstance(value, str):
        digest.update(b"str" + _SEP + value.encode())
    elif isinstance(value, bytes):
        digest.update(b"bytes" + _SEP + value)
    elif isinstance(value, np.ndarray):
        digest.update(
            b"ndarray" + _SEP + str(value.dtype).encode() + _SEP + str(value.shape).encode()
        )
        digest.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (list, tuple)):
        digest.update(b"seq" + _SEP + str(len(value)).encode())
        for item in value:
            _update(digest, item)
    elif isinstance(value, (dict,)):
        digest.update(b"map" + _SEP + str(len(value)).encode())
        for key in sorted(value, key=repr):
            _update(digest, key)
            _update(digest, value[key])
    elif isinstance(value, (set, frozenset)):
        digest.update(b"set" + _SEP + str(len(value)).encode())
        for item in sorted(value, key=repr):
            _update(digest, item)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        digest.update(b"dc" + _SEP + type(value).__qualname__.encode())
        for field in dataclasses.fields(value):
            _update(digest, field.name)
            _update(digest, getattr(value, field.name))
    else:
        # Last resorts: a stable pickle if possible, else the repr.  repr is
        # only reached for exotic unpicklable objects; collisions there would
        # need two distinct unpicklable inputs with identical reprs.
        try:
            digest.update(b"pickle" + _SEP + pickle.dumps(value))
        except Exception:
            digest.update(b"repr" + _SEP + repr(value).encode())


def _digest_of(*values: Any) -> str:
    digest = hashlib.sha1()
    for value in values:
        _update(digest, value)
        digest.update(_SEP)
    return digest.hexdigest()


def content_key(*values: Any) -> str:
    """Canonical digest of arbitrary structured values.

    The generic entry point for content-keying tasks (see
    :mod:`repro.runtime.tasks`): feed every value that determines a task's
    result -- a phase tag, dataset arrays, parameter dataclasses -- and use
    the digest as the :attr:`~repro.runtime.tasks.TaskSpec.key`.  Values are
    hashed with the same canonical encoding as configuration and input keys,
    so numpy arrays, dataclasses, and nested containers are all stable.
    """
    return _digest_of(*values)


def _callable_id(func: Any) -> str:
    """A stable module-qualified identifier for a function-like object."""
    return f"{getattr(func, '__module__', '?')}.{getattr(func, '__qualname__', repr(func))}"


def program_fingerprint(program: PetaBricksProgram) -> str:
    """A stable identifier for *what the program computes*.

    Includes the run function's and accuracy-metric function's
    module-qualified names plus the accuracy contract, so two same-named
    programs with different behaviour do not share cache entries.
    """
    metric = program.accuracy_metric
    requirement = program.accuracy_requirement
    return _digest_of(
        program.name,
        _callable_id(program._run_func),
        metric.name,
        _callable_id(metric.func),
        requirement.enabled,
        float(requirement.accuracy_threshold) if requirement.enabled else 0.0,
        float(requirement.satisfaction_threshold) if requirement.enabled else 0.0,
    )[:16]


def config_key(config: Configuration) -> str:
    """Canonical digest of a configuration's values."""
    return _digest_of(dict(config.values))[:16]


def input_key(program_input: Any) -> str:
    """Canonical digest of an input's content."""
    return _digest_of(program_input)[:16]


def run_key(program: PetaBricksProgram, config: Configuration, program_input: Any) -> str:
    """The full cache key of one (program, configuration, input) run."""
    return (
        f"{program.name}:{program_fingerprint(program)}"
        f":{config_key(config)}:{input_key(program_input)}"
    )
