"""Generalized content-keyed tasks for the measurement runtime.

PR 1 built the runtime around one task shape: "run this program with this
configuration on this input".  This module generalizes that to *arbitrary*
callables so other serial phases of the pipeline -- Level 2's
feature-subset x classifier-zoo search, cross-validation scoring, the
autotuner's objective evaluation -- can fan out over the same executors and
enjoy the same caching and telemetry.

A :class:`TaskSpec` is one unit of work: a callable plus its arguments and
an optional *content key*.  Keyed tasks are memoized in a
:class:`TaskCache` (in-memory only -- task results are arbitrary Python
objects such as trained classifiers, so unlike run measurements they are
never persisted to JSON); unkeyed tasks always execute.  Tasks must be
pure functions of their arguments for either the cache or a parallel
executor to be sound -- the same contract program runs already obey.

A large argument shared by every task in a batch (the Level-2 dataset,
say) should not be embedded in each spec directly: pass a
:class:`repro.runtime.SharedRef` placeholder in ``args`` and hand the real
object to :meth:`repro.runtime.Runtime.run_tasks` via its ``shared``
mapping.  Executors substitute the object at invocation time, and the
process pool ships it to workers once per pool through the initializer
registry instead of re-pickling it with every chunk.

Results are always returned in *submission order* regardless of which
executor carried the work or in what order tasks completed, so a batch of
tasks behaves exactly like the serial loop it replaces.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

#: Sentinel distinguishing "no cached value" from a cached None result.
_MISSING = object()


@dataclass
class TaskSpec:
    """One unit of work for :meth:`repro.runtime.Runtime.run_tasks`.

    Attributes:
        fn: the callable to execute.  For the process executor it must be
            picklable (a module-level function); unpicklable tasks
            transparently fall back to serial execution.
        args: positional arguments.
        kwargs: keyword arguments.
        key: content key identifying the task's result.  Two specs with the
            same key are assumed to produce the same value (within a batch
            the work runs once; across batches the task cache answers).
            ``None`` disables caching for this task.
        label: short human-readable tag (telemetry/debugging only).
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    key: Optional[str] = None
    label: str = ""

    def call(self) -> Any:
        """Execute the task in the calling thread."""
        return self.fn(*self.args, **self.kwargs)


class TaskCache:
    """LRU cache of task results, keyed by :attr:`TaskSpec.key`.

    Unlike :class:`~repro.runtime.cache.RunCache` this stores arbitrary
    Python objects (trained classifiers, evaluation tuples, ...) and is
    therefore purely in-memory; it never persists.

    Args:
        max_entries: entry cap; least-recently-used entries are evicted once
            the cap is exceeded.  ``None`` means unbounded.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.max_entries = max_entries
        self._store: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Any:
        """The cached value for ``key``, or the module's missing sentinel.

        Use :func:`is_missing` (or compare against the returned sentinel) to
        distinguish a miss from a legitimately cached ``None``.
        """
        value = self._store.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return _MISSING
        self._store.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key``, evicting LRU entries if needed."""
        self._store[key] = value
        self._store.move_to_end(key)
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def clear(self) -> None:
        """Drop all entries (statistics are kept)."""
        self._store.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus the current size."""
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskCache(entries={len(self._store)}, hits={self.hits}, misses={self.misses})"


def is_missing(value: Any) -> bool:
    """True when ``value`` is the :meth:`TaskCache.get` miss sentinel."""
    return value is _MISSING
