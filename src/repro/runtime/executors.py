"""Execution strategies for batched program runs.

An executor takes a program and a batch of ``(configuration, input)`` tasks
and returns one :class:`~repro.lang.program.RunResult` per task, in task
order.  Because every run in this reproduction is a pure function of its
task (deterministic cost model, per-run seeded RNGs, per-run cost counters
held in context variables), the three strategies are interchangeable:

* :class:`SerialExecutor` -- the default; runs tasks in a plain loop and is
  the bit-identical reference behaviour.
* :class:`ThreadExecutor` -- a thread pool.  Correct under the thread-local
  cost accounting in :mod:`repro.lang.cost`; mostly useful when run
  functions release the GIL (NumPy-heavy benchmarks) and as a concurrency
  shake-out of the runtime.
* :class:`ProcessExecutor` -- a process pool for genuine parallelism.  The
  program is shipped to workers once per pool (not per task).  If the
  program or a task cannot be pickled, the batch transparently falls back
  to serial execution and the executor records that it did so.
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
from typing import Any, List, Optional, Sequence, Tuple

from repro.lang.config import Configuration
from repro.lang.program import PetaBricksProgram, RunResult

#: A single unit of work: run the program with this configuration on this input.
Task = Tuple[Configuration, Any]

#: A generic unit of work: ``(callable, positional args, keyword args)``.
CallTask = Tuple[Any, Tuple[Any, ...], dict]


def _invoke_call(call: CallTask) -> Any:
    """Execute one generic call task (module-level so process pools can ship it)."""
    fn, args, kwargs = call
    return fn(*args, **kwargs)


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


class BaseExecutor:
    """Interface shared by all execution strategies."""

    #: Short strategy name used in flags and telemetry.
    name: str = "base"

    def run_batch(
        self, program: PetaBricksProgram, tasks: Sequence[Task]
    ) -> List[RunResult]:
        """Execute every task and return results in task order."""
        raise NotImplementedError

    def run_calls(self, calls: Sequence[CallTask]) -> List[Any]:
        """Execute a batch of generic ``(fn, args, kwargs)`` calls, in order.

        The generalized-task counterpart of :meth:`run_batch`: the calls
        must be pure functions of their arguments, and results come back in
        submission order whatever the execution strategy.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "BaseExecutor":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialExecutor(BaseExecutor):
    """Run tasks one after another in the calling thread."""

    name = "serial"

    def run_batch(
        self, program: PetaBricksProgram, tasks: Sequence[Task]
    ) -> List[RunResult]:
        return [program.run(config, program_input) for config, program_input in tasks]

    def run_calls(self, calls: Sequence[CallTask]) -> List[Any]:
        return [_invoke_call(call) for call in calls]


class ThreadExecutor(BaseExecutor):
    """Run tasks on a shared thread pool.

    Args:
        workers: pool size; defaults to the CPU count.
    """

    name = "thread"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers or _default_workers()
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-runtime"
            )
        return self._pool

    def run_batch(
        self, program: PetaBricksProgram, tasks: Sequence[Task]
    ) -> List[RunResult]:
        if len(tasks) <= 1:
            return SerialExecutor().run_batch(program, tasks)
        pool = self._ensure_pool()
        futures = [
            pool.submit(program.run, config, program_input)
            for config, program_input in tasks
        ]
        return [future.result() for future in futures]

    def run_calls(self, calls: Sequence[CallTask]) -> List[Any]:
        if len(calls) <= 1:
            return SerialExecutor().run_calls(calls)
        pool = self._ensure_pool()
        futures = [pool.submit(_invoke_call, call) for call in calls]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return f"ThreadExecutor(workers={self.workers})"


# -- process-pool plumbing ----------------------------------------------
#
# The worker receives the program once via the pool initializer and keeps it
# in a module global; tasks then only carry (configuration, input).

_WORKER_PROGRAM: Optional[PetaBricksProgram] = None


def _process_worker_init(program: PetaBricksProgram) -> None:
    global _WORKER_PROGRAM
    _WORKER_PROGRAM = program


def _process_worker_run(task: Task) -> RunResult:
    assert _WORKER_PROGRAM is not None, "worker pool used before initialization"
    config, program_input = task
    return _WORKER_PROGRAM.run(config, program_input)


class ProcessExecutor(BaseExecutor):
    """Run tasks on a process pool, falling back to serial when pickling fails.

    Args:
        workers: pool size; defaults to the CPU count.

    Attributes:
        fallback_reason: set to a short description the first time a batch
            had to run serially because the program or its tasks could not
            be pickled (or the pool broke); None while the pool is healthy.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers or _default_workers()
        self.fallback_reason: Optional[str] = None
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._pool_program: Optional[PetaBricksProgram] = None

    def _pool_for(
        self, program: PetaBricksProgram
    ) -> Optional[concurrent.futures.ProcessPoolExecutor]:
        """A pool initialized with ``program``, or None if it cannot be shipped."""
        if self._pool is not None and self._pool_program is program:
            return self._pool
        try:
            pickle.dumps(program)
        except Exception as error:
            self.fallback_reason = f"program not picklable: {type(error).__name__}"
            return None
        self._shutdown_pool()
        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_process_worker_init,
            initargs=(program,),
        )
        self._pool_program = program
        return self._pool

    def _any_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        """Any live pool (generic calls do not care about the initializer).

        Reuses a program-initialized pool when one exists -- the initializer
        only sets a worker global that generic calls ignore -- and otherwise
        starts a pool with no initializer at all.
        """
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers
            )
            self._pool_program = None
        return self._pool

    def run_calls(self, calls: Sequence[CallTask]) -> List[Any]:
        if not calls:
            return []
        # The probe is the primary fallback detector: batches are homogeneous
        # in practice, so an unpicklable first call (a closure factory, say)
        # means the batch belongs on the serial path.  Errors raised *by* a
        # task in a worker are then never mistaken for pickling failures --
        # only a genuine mid-batch PicklingError still falls back below.
        try:
            pickle.dumps(calls[0])
        except Exception as error:
            self.fallback_reason = f"call not picklable: {type(error).__name__}"
            return SerialExecutor().run_calls(calls)
        pool = self._any_pool()
        # Chunking matters beyond message overhead: a chunk is pickled as one
        # object, so large arguments shared by its calls (e.g. the dataset
        # every Level-2 candidate task carries) cross the process boundary
        # once per chunk instead of once per call, via the pickle memo.
        chunksize = max(1, len(calls) // (self.workers * 4))
        try:
            return list(pool.map(_invoke_call, calls, chunksize=chunksize))
        except pickle.PicklingError as error:
            self.fallback_reason = f"call batch not picklable: {type(error).__name__}"
            return SerialExecutor().run_calls(calls)
        except concurrent.futures.process.BrokenProcessPool as error:
            self.fallback_reason = f"process pool broke: {error}"
            self._shutdown_pool()
            return SerialExecutor().run_calls(calls)

    def run_batch(
        self, program: PetaBricksProgram, tasks: Sequence[Task]
    ) -> List[RunResult]:
        if not tasks:
            return []
        pool = self._pool_for(program)
        if pool is None:
            return SerialExecutor().run_batch(program, tasks)
        try:
            pickle.dumps(tasks[0])
        except Exception as error:
            self.fallback_reason = f"task not picklable: {type(error).__name__}"
            return SerialExecutor().run_batch(program, tasks)
        try:
            return list(pool.map(_process_worker_run, tasks))
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            self.fallback_reason = f"batch not picklable: {type(error).__name__}"
            return SerialExecutor().run_batch(program, tasks)
        except concurrent.futures.process.BrokenProcessPool as error:
            self.fallback_reason = f"process pool broke: {error}"
            self._shutdown_pool()
            return SerialExecutor().run_batch(program, tasks)

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_program = None

    def close(self) -> None:
        self._shutdown_pool()

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.workers})"


#: Registered executor strategies, keyed by flag value.
EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(spec: str = "serial", workers: Optional[int] = None) -> BaseExecutor:
    """Build an executor from a flag value.

    Accepts ``"serial"``, ``"thread"``, ``"process"``, optionally suffixed
    with a worker count as ``"thread:4"`` / ``"process:8"`` (an explicit
    ``workers`` argument wins over the suffix).
    """
    name, _, suffix = spec.partition(":")
    name = name.strip().lower() or "serial"
    if name not in EXECUTORS:
        raise ValueError(
            f"unknown executor {spec!r}; available: {sorted(EXECUTORS)}"
        )
    if workers is None and suffix:
        workers = int(suffix)
    if name == "serial":
        return SerialExecutor()
    return EXECUTORS[name](workers=workers)
