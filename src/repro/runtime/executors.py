"""Execution strategies for batched program runs.

An executor takes a program and a batch of ``(configuration, input)`` tasks
and returns one :class:`~repro.lang.program.RunResult` per task, in task
order.  Because every run in this reproduction is a pure function of its
task (deterministic cost model, per-run seeded RNGs, per-run cost counters
held in context variables), the three strategies are interchangeable:

* :class:`SerialExecutor` -- the default; runs tasks in a plain loop and is
  the bit-identical reference behaviour.
* :class:`ThreadExecutor` -- a thread pool.  Correct under the thread-local
  cost accounting in :mod:`repro.lang.cost`; mostly useful when run
  functions release the GIL (NumPy-heavy benchmarks) and as a concurrency
  shake-out of the runtime.
* :class:`ProcessExecutor` -- a process pool for genuine parallelism.  The
  program is shipped to workers once per pool (not per task).  If the
  program or a task cannot be pickled, the batch transparently falls back
  to serial execution and the executor records that it did so.
"""

from __future__ import annotations

import concurrent.futures
# The ``process`` submodule is lazily loaded by the package's __getattr__;
# import it eagerly so ``BrokenProcessPool`` is reachable before any pool
# has been built (retryable tuples are evaluated ahead of pool creation).
import concurrent.futures.process
import math
import os
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.lang.config import Configuration
from repro.lang.program import PetaBricksProgram, RunResult
from repro.resilience.faults import install_from_env, maybe_fail
from repro.resilience.retry import RetryPolicy

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shm_module
except ImportError:  # pragma: no cover - minimal builds without _posixshmem
    _shm_module = None  # type: ignore[assignment]

#: A single unit of work: run the program with this configuration on this input.
Task = Tuple[Configuration, Any]

#: A generic unit of work: ``(callable, positional args, keyword args)``.
CallTask = Tuple[Any, Tuple[Any, ...], dict]


@dataclass(frozen=True)
class SharedRef:
    """Placeholder for a large argument shipped to workers once per pool.

    A call batch whose tasks all carry the same big object (the Level-2
    dataset, say) would otherwise re-pickle that object once per chunk.
    Instead the caller passes the object in the batch's ``shared`` mapping
    and puts a ``SharedRef(token)`` in each task's arguments; executors
    substitute the real object at invocation time.  The process executor
    installs the mapping in every worker through the pool initializer --
    exactly how ``run_batch`` already ships the program -- so the object
    crosses the process boundary once per pool, not once per chunk.

    Refs are resolved in top-level positional and keyword arguments only;
    a ref nested inside another container is passed through untouched.
    """

    token: str


def _substitute_shared(call: CallTask, shared: Dict[str, Any]) -> CallTask:
    """Replace top-level :class:`SharedRef` arguments with their objects."""
    fn, args, kwargs = call
    if not any(isinstance(a, SharedRef) for a in args) and not any(
        isinstance(v, SharedRef) for v in kwargs.values()
    ):
        return call
    args = tuple(shared[a.token] if isinstance(a, SharedRef) else a for a in args)
    kwargs = {
        k: shared[v.token] if isinstance(v, SharedRef) else v
        for k, v in kwargs.items()
    }
    return (fn, args, kwargs)


def _invoke_call(call: CallTask) -> Any:
    """Execute one generic call task (module-level so process pools can ship it).

    In a pool worker, :class:`SharedRef` arguments resolve against the
    mapping the pool initializer installed; in the parent process the
    executors substitute refs before invoking, so the worker-side lookup
    only ever sees refs when the registry holds them.
    """
    fn, args, kwargs = _substitute_shared(call, _WORKER_SHARED)
    return fn(*args, **kwargs)


def _call_chunksize(n_calls: int, workers: int) -> int:
    """Chunk size for ``pool.map`` over a generic call batch.

    Large batches target four chunks per worker (load balancing); small
    batches (at most ``workers * 4`` calls) target one chunk per worker
    instead of degenerating to chunksize 1, which would re-pickle any
    shared chunk content once per call.

    The small-batch size is ``n_calls // workers`` (floored, min 1), never
    ``ceil``: rounding the chunk *size* up rounds the chunk *count* down,
    and a batch like 5 calls on 4 workers would ship as 3 chunks of 2 --
    stranding a worker idle while another queues two chunks.  Flooring
    guarantees at least ``min(n_calls, workers)`` chunks, so every worker
    gets one chunk before any worker gets a second.
    """
    if n_calls <= 0:
        return 1
    target_chunks = workers * 4
    if n_calls > target_chunks:
        return max(1, math.ceil(n_calls / target_chunks))
    return max(1, n_calls // max(1, workers))


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


class BaseExecutor:
    """Interface shared by all execution strategies."""

    #: Short strategy name used in flags and telemetry.
    name: str = "base"

    def run_batch(
        self, program: PetaBricksProgram, tasks: Sequence[Task]
    ) -> List[RunResult]:
        """Execute every task and return results in task order."""
        raise NotImplementedError

    def run_calls(
        self,
        calls: Sequence[CallTask],
        shared: Optional[Dict[str, Any]] = None,
    ) -> List[Any]:
        """Execute a batch of generic ``(fn, args, kwargs)`` calls, in order.

        The generalized-task counterpart of :meth:`run_batch`: the calls
        must be pure functions of their arguments, and results come back in
        submission order whatever the execution strategy.

        ``shared`` maps :class:`SharedRef` tokens to the (large) objects the
        calls reference; see :class:`SharedRef` for the contract.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "BaseExecutor":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialExecutor(BaseExecutor):
    """Run tasks one after another in the calling thread."""

    name = "serial"

    def run_batch(
        self, program: PetaBricksProgram, tasks: Sequence[Task]
    ) -> List[RunResult]:
        return [program.run(config, program_input) for config, program_input in tasks]

    def run_calls(
        self,
        calls: Sequence[CallTask],
        shared: Optional[Dict[str, Any]] = None,
    ) -> List[Any]:
        if shared:
            calls = [_substitute_shared(call, shared) for call in calls]
        return [_invoke_call(call) for call in calls]


class ThreadExecutor(BaseExecutor):
    """Run tasks on a shared thread pool.

    Args:
        workers: pool size; defaults to the CPU count.
    """

    name = "thread"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers or _default_workers()
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-runtime"
            )
        return self._pool

    def run_batch(
        self, program: PetaBricksProgram, tasks: Sequence[Task]
    ) -> List[RunResult]:
        if len(tasks) <= 1:
            return SerialExecutor().run_batch(program, tasks)
        pool = self._ensure_pool()
        futures = [
            pool.submit(program.run, config, program_input)
            for config, program_input in tasks
        ]
        return [future.result() for future in futures]

    def run_calls(
        self,
        calls: Sequence[CallTask],
        shared: Optional[Dict[str, Any]] = None,
    ) -> List[Any]:
        # Threads share the parent's memory, so refs resolve locally (no
        # registry hand-off) before the calls are submitted.
        if shared:
            calls = [_substitute_shared(call, shared) for call in calls]
        if len(calls) <= 1:
            return SerialExecutor().run_calls(calls)
        pool = self._ensure_pool()
        futures = [pool.submit(_invoke_call, call) for call in calls]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:
        return f"ThreadExecutor(workers={self.workers})"


# -- process-pool plumbing ----------------------------------------------
#
# The worker receives the program and the shared-argument registry once via
# the pool initializer and keeps them in module globals; tasks then only
# carry (configuration, input) or (fn, args-with-refs, kwargs).

_WORKER_PROGRAM: Optional[PetaBricksProgram] = None

#: Shared-argument registry installed by the pool initializer; parent-side
#: executors substitute refs before invoking, so this stays empty there.
_WORKER_SHARED: Dict[str, Any] = {}


def _process_worker_init(
    program: Optional[PetaBricksProgram], shared: Optional[Dict[str, Any]] = None
) -> None:
    global _WORKER_PROGRAM, _WORKER_SHARED
    _WORKER_PROGRAM = program
    _WORKER_SHARED = shared or {}
    # Chaos plans follow the run into pool workers via the environment.
    install_from_env()


def _process_worker_run(task: Task) -> RunResult:
    assert _WORKER_PROGRAM is not None, "worker pool used before initialization"
    config, program_input = task
    return _WORKER_PROGRAM.run(config, program_input)


def _unregister_shm(segment: Any) -> None:
    """Drop an attach-time resource-tracker registration.

    On POSIX (through Python 3.12) *attaching* to a shared-memory segment
    registers it with the process's resource tracker just like creating it
    does.  The parent created the segment and owns the unlink, so the
    bookkeeping depends on the start method:

    * fork (the Linux default): workers inherit the parent's tracker, whose
      name set deduplicates all the attach registrations -- the creator's
      ``unlink`` is the single balanced removal, and a worker-side
      unregister would race it into KeyErrors.  Do nothing.
    * spawn/forkserver: each worker runs its own tracker, which would try
      to unlink the (already removed) segment at pool shutdown and print
      leak warnings.  Unregister after closing.
    """
    try:
        import multiprocessing

        if multiprocessing.get_start_method() == "fork":
            return
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variations across platforms
        pass


#: A lease of measurement work: ``(start, tasks, shm_name, total)`` where
#: ``start`` is the flat offset of the first task in the dispatch and
#: ``shm_name`` names a parent-created ``(2, total)`` float64 block (times
#: row 0, accuracies row 1), or None when shared memory is unavailable.
MeasureLease = Tuple[int, Sequence[Task], Optional[str], int]


def _process_worker_measure(lease: MeasureLease) -> Tuple[str, int, Optional[Any]]:
    """Run one lease of measurement tasks, shipping results via shared memory.

    The result matrix slice is written directly into the parent-created
    shared block, so the return value is a few bytes -- ``("shm", start,
    None)`` -- instead of one pickled :class:`RunResult` per task.  When the
    block is unavailable (no shared memory on this platform, or the attach
    failed) the slice comes back pickled as ``("data", start, block)``.
    """
    assert _WORKER_PROGRAM is not None, "worker pool used before initialization"
    program = _WORKER_PROGRAM
    start, tasks, shm_name, total = lease
    block = np.empty((2, len(tasks)), dtype=np.float64)
    for index, (config, program_input) in enumerate(tasks):
        result = program.run(config, program_input)
        block[0, index] = result.time
        block[1, index] = result.accuracy
    if shm_name is not None and _shm_module is not None:
        try:
            # Fault site: an attach failure must degrade to the pickled
            # path, never lose the lease's results.
            maybe_fail("shm.attach", detail=shm_name)
            segment = _shm_module.SharedMemory(name=shm_name)
        except Exception:
            return ("data", start, block)
        try:
            matrix = np.ndarray((2, total), dtype=np.float64, buffer=segment.buf)
            matrix[:, start : start + len(tasks)] = block
        finally:
            segment.close()
            _unregister_shm(segment)
        return ("shm", start, None)
    return ("data", start, block)


class ProcessExecutor(BaseExecutor):
    """Run tasks on a process pool, falling back to serial when pickling fails.

    Args:
        workers: pool size; defaults to the CPU count.

    Attributes:
        fallback_reason: set to a short description the first time a batch
            had to run serially because the program or its tasks could not
            be pickled (or the pool broke); None while the pool is healthy.
        retry_policy: the :class:`~repro.resilience.retry.RetryPolicy`
            governing broken-pool resubmission -- one rebuild-and-retry by
            default, matching the historical behaviour.
        retry_counters: ``retry_*`` telemetry incremented by the policy;
            surfaced through ``Runtime.stats()``.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = workers or _default_workers()
        self.fallback_reason: Optional[str] = None
        self.retry_policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        self.retry_counters: Dict[str, int] = {}
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._pool_program: Optional[PetaBricksProgram] = None
        #: Shared-argument registry the live pool's workers were initialized
        #: with.  Holding the real objects (not just ids) keeps them alive,
        #: so identity comparisons against new batches stay meaningful.
        self._pool_shared: Dict[str, Any] = {}

    def _on_pool_break(self, error: BaseException, _attempt: int) -> None:
        """Retry hook: a broken pool is torn down so the resubmission
        closure rebuilds it (re-registering the program/shared-argument
        initializer) -- one dead worker costs a respawn, not every later
        batch."""
        self.fallback_reason = f"process pool broke: {error}"
        self._shutdown_pool()

    def _rebuild_pool(
        self, program: Optional[PetaBricksProgram], shared: Dict[str, Any]
    ) -> concurrent.futures.ProcessPoolExecutor:
        self._shutdown_pool()
        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_process_worker_init,
            initargs=(program, shared),
        )
        self._pool_program = program
        self._pool_shared = shared
        return self._pool

    def _pool_for(
        self, program: PetaBricksProgram
    ) -> Optional[concurrent.futures.ProcessPoolExecutor]:
        """A pool initialized with ``program``, or None if it cannot be shipped."""
        if self._pool is not None and self._pool_program is program:
            return self._pool
        try:
            pickle.dumps(program)
        except Exception as error:
            self.fallback_reason = f"program not picklable: {type(error).__name__}"
            return None
        # A program switch means a new experiment; the old shared registry
        # is dead weight, so the new pool starts with an empty one.
        return self._rebuild_pool(program, {})

    def _calls_pool(
        self, shared: Dict[str, Any]
    ) -> concurrent.futures.ProcessPoolExecutor:
        """A pool whose workers hold (at least) the requested shared registry.

        A batch with no shared arguments runs on any live pool -- the
        program initializer only sets worker globals that generic calls
        ignore.  Otherwise the pool is rebuilt, keeping the current program
        so an interleaved ``run_batch`` does not pay a second rebuild.
        """
        if self._pool is not None and (not shared or self._shared_matches(shared)):
            return self._pool
        return self._rebuild_pool(self._pool_program, shared)

    def _shared_matches(self, shared: Dict[str, Any]) -> bool:
        current = self._pool_shared
        return all(
            token in current and current[token] is value
            for token, value in shared.items()
        )

    def run_calls(
        self,
        calls: Sequence[CallTask],
        shared: Optional[Dict[str, Any]] = None,
    ) -> List[Any]:
        if not calls:
            return []
        shared = shared or {}
        # The probe is the primary fallback detector: batches are homogeneous
        # in practice, so an unpicklable first call (a closure factory, say)
        # means the batch belongs on the serial path.  Errors raised *by* a
        # task in a worker are then never mistaken for pickling failures --
        # only a genuine mid-batch PicklingError still falls back below.
        try:
            pickle.dumps(calls[0])
        except Exception as error:
            self.fallback_reason = f"call not picklable: {type(error).__name__}"
            return SerialExecutor().run_calls(calls, shared=shared)
        # Chunking matters beyond message overhead: a chunk is pickled as one
        # object, so large per-chunk arguments shared by its calls cross the
        # process boundary once per chunk instead of once per call, via the
        # pickle memo.  (Registry-shared arguments do even better: they ride
        # the pool initializer and cross once per pool.)
        chunksize = _call_chunksize(len(calls), self.workers)

        def submit() -> Any:
            # Submission is eager: worker spawn (which, under a spawn start
            # method, pickles the initializer's program/shared registry)
            # happens here, so transport errors raised at this point are
            # never a task's own exception...
            return self._calls_pool(shared).map(
                _invoke_call, calls, chunksize=chunksize
            )

        try:
            # A worker death between batches surfaces as BrokenProcessPool at
            # submission; the retry policy tears the pool down (_on_pool_break)
            # and resubmits on a fresh one before giving up to the serial path.
            result_iterator = self.retry_policy.run(
                submit,
                retryable=(concurrent.futures.process.BrokenProcessPool,),
                before_retry=self._on_pool_break,
                counters=self.retry_counters,
            )
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            self.fallback_reason = f"call batch not picklable: {type(error).__name__}"
            return SerialExecutor().run_calls(calls, shared=shared)
        except concurrent.futures.process.BrokenProcessPool as error:
            self.fallback_reason = f"process pool broke: {error}"
            self._shutdown_pool()
            return SerialExecutor().run_calls(calls, shared=shared)
        try:
            # ...whereas during result iteration only a genuine
            # PicklingError is transport: a task-raised TypeError must
            # propagate as-is, not trigger a misleading serial re-run.
            return list(result_iterator)
        except pickle.PicklingError as error:
            self.fallback_reason = f"call batch not picklable: {type(error).__name__}"
            return SerialExecutor().run_calls(calls, shared=shared)
        except concurrent.futures.process.BrokenProcessPool as error:
            self.fallback_reason = f"process pool broke: {error}"
            self._shutdown_pool()
            return SerialExecutor().run_calls(calls, shared=shared)

    def run_batch(
        self, program: PetaBricksProgram, tasks: Sequence[Task]
    ) -> List[RunResult]:
        if not tasks:
            return []
        pool = self._pool_for(program)
        if pool is None:
            return SerialExecutor().run_batch(program, tasks)
        try:
            pickle.dumps(tasks[0])
        except Exception as error:
            self.fallback_reason = f"task not picklable: {type(error).__name__}"
            return SerialExecutor().run_batch(program, tasks)
        def submit() -> List[RunResult]:
            # A break at submission time (worker died between batches)
            # leaves the tasks unexecuted: the retry rebuilds the pool --
            # with the program initializer re-registered -- and resubmits.
            # A break *during* execution re-runs the batch too; runs are
            # pure functions of their tasks, so re-execution is sound.
            submit_pool = self._pool_for(program)
            if submit_pool is None:
                raise concurrent.futures.process.BrokenProcessPool(
                    "pool unavailable after rebuild"
                )
            return list(submit_pool.map(_process_worker_run, tasks))

        try:
            return self.retry_policy.run(
                submit,
                retryable=(concurrent.futures.process.BrokenProcessPool,),
                before_retry=self._on_pool_break,
                counters=self.retry_counters,
            )
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            self.fallback_reason = f"batch not picklable: {type(error).__name__}"
            return SerialExecutor().run_batch(program, tasks)
        except concurrent.futures.process.BrokenProcessPool as error:
            self.fallback_reason = f"process pool broke: {error}"
            self._shutdown_pool()
            return SerialExecutor().run_batch(program, tasks)

    def run_measure(
        self,
        program: PetaBricksProgram,
        tasks: Sequence[Task],
        columns: int = 1,
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Execute measurement tasks, returning ``(times, accuracies)`` arrays.

        The matrix counterpart of :meth:`run_batch` for callers that only
        need the two floats of each run (:meth:`repro.runtime.Runtime.
        measure`): the parent allocates one ``(2, len(tasks))`` float64
        shared-memory block per dispatch, workers write their lease's slice
        directly into it, and the pool's return traffic shrinks to a
        per-lease acknowledgement instead of a pickled
        :class:`~repro.lang.program.RunResult` per task.  When shared
        memory is unavailable (platform without ``_posixshmem``, exhausted
        ``/dev/shm``) every lease transparently returns its slice pickled.

        ``columns`` is the measurement matrix's K; leases are aligned to
        whole rows so each worker fills contiguous ``(rows, K)`` blocks.

        Returns None -- with nothing executed -- when the program or tasks
        cannot be shipped to workers; the caller should fall back to
        :meth:`run_batch` (whose serial fallback handles that case).  A
        pool that breaks mid-dispatch is rebuilt and the dispatch retried
        once (runs are pure, so re-execution is sound); a second break
        finishes the batch serially.
        """
        if not tasks:
            return np.empty(0), np.empty(0)
        pool = self._pool_for(program)
        if pool is None:
            return None
        try:
            pickle.dumps(tasks[0])
        except Exception as error:
            self.fallback_reason = f"task not picklable: {type(error).__name__}"
            return None

        total = len(tasks)
        columns = max(1, columns)
        rows = max(1, total // columns)
        lease_tasks = _call_chunksize(rows, self.workers) * columns
        segment = None
        shm_name: Optional[str] = None
        if _shm_module is not None:
            try:
                segment = _shm_module.SharedMemory(
                    create=True, size=2 * total * np.dtype(np.float64).itemsize
                )
                shm_name = segment.name
            except Exception:  # exhausted /dev/shm etc: pickled fallback
                segment = None
        try:
            leases: List[MeasureLease] = [
                (start, tasks[start : start + lease_tasks], shm_name, total)
                for start in range(0, total, lease_tasks)
            ]
            def submit() -> List[Tuple[str, int, Optional[Any]]]:
                submit_pool = self._pool_for(program)
                if submit_pool is None:
                    raise concurrent.futures.process.BrokenProcessPool(
                        "pool unavailable after rebuild"
                    )
                return list(
                    submit_pool.map(_process_worker_measure, leases, chunksize=1)
                )

            answers: Optional[List[Tuple[str, int, Optional[Any]]]] = None
            try:
                answers = self.retry_policy.run(
                    submit,
                    retryable=(concurrent.futures.process.BrokenProcessPool,),
                    before_retry=self._on_pool_break,
                    counters=self.retry_counters,
                )
            except (pickle.PicklingError, TypeError, AttributeError) as error:
                self.fallback_reason = f"batch not picklable: {type(error).__name__}"
            except concurrent.futures.process.BrokenProcessPool as error:
                self.fallback_reason = f"process pool broke: {error}"
                self._shutdown_pool()
            if answers is None:
                # Transport failed after the probe succeeded (broken pool
                # twice, or a pathological mid-batch pickling error): finish
                # the whole dispatch serially.  Runs are pure, so any work a
                # half-finished attempt did is simply recomputed.
                serial = SerialExecutor().run_batch(program, tasks)
                times = np.fromiter(
                    (r.time for r in serial), dtype=np.float64, count=total
                )
                accuracies = np.fromiter(
                    (r.accuracy for r in serial), dtype=np.float64, count=total
                )
                return times, accuracies
            if segment is not None:
                matrix = np.ndarray(
                    (2, total), dtype=np.float64, buffer=segment.buf
                )
            else:
                matrix = np.empty((2, total), dtype=np.float64)
            for kind, start, block in answers:
                if kind == "data":
                    matrix[:, start : start + block.shape[1]] = block
            return matrix[0].copy(), matrix[1].copy()
        finally:
            if segment is not None:
                segment.close()
                segment.unlink()

    def _shutdown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_program = None
            self._pool_shared = {}

    def close(self) -> None:
        self._shutdown_pool()

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.workers})"


def _make_distributed(workers: Optional[int] = None, **options: Any) -> BaseExecutor:
    """Factory for the distributed executor (imported lazily: no cycle)."""
    from repro.runtime.distributed import DistributedExecutor

    return DistributedExecutor(workers=workers, **options)


#: Registered executor strategies, keyed by flag value.
EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
    "distributed": _make_distributed,
}


def get_executor(
    spec: str = "serial", workers: Optional[int] = None, **options: Any
) -> BaseExecutor:
    """Build an executor from a flag value.

    Accepts ``"serial"``, ``"thread"``, ``"process"``, ``"distributed"``,
    optionally suffixed with a worker count as ``"thread:4"`` /
    ``"process:8"`` / ``"distributed:2"`` (an explicit ``workers`` argument
    wins over the suffix).  Extra keyword ``options`` (``socket_timeout``,
    ``join_timeout``, ...) apply to the distributed strategy and are
    ignored by the in-process ones.
    """
    name, _, suffix = spec.partition(":")
    name = name.strip().lower() or "serial"
    if name not in EXECUTORS:
        raise ValueError(
            f"unknown executor {spec!r}; available: {sorted(EXECUTORS)}"
        )
    if workers is None and suffix:
        workers = int(suffix)
    if name == "serial":
        return SerialExecutor()
    if name == "distributed":
        return _make_distributed(
            workers=workers,
            **{k: v for k, v in options.items() if v is not None},
        )
    return EXECUTORS[name](workers=workers)
