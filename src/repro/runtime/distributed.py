"""Distributed executor: content-keyed chunk leases over a localhost socket.

The coordinator (:class:`Coordinator`) binds an ephemeral TCP port on
127.0.0.1, partitions each batch into *chunk leases*, and hands them to
worker processes -- either local ones it spawns through ``multiprocessing``
or external ones attached with ``python -m repro.worker --connect
HOST:PORT``.  The executor facade (:class:`DistributedExecutor`) plugs the
coordinator into the :class:`~repro.runtime.executors.BaseExecutor`
interface, so it is interchangeable with the serial/thread/process
strategies and carries the same determinism contract: results are folded by
*chunk index* (the position of the chunk in the batch's content order),
never by arrival order, so a batch answers bit-identically however leases
land on workers.

Wire protocol (see ``docs/architecture.md`` for the lifecycle diagram):
newline-delimited JSON messages; Python payloads ride in a ``payload``
field as base64-encoded pickles.  Workers pull: after ``hello`` (and after
finishing each lease) a worker is idle, and the coordinator assigns it the
next pending chunk.  A batch's shared content -- the program, the shared-
argument registry, or a ``(program, configs, input source)`` triple -- is
shipped once per worker per batch in a ``context`` message; leases then
carry only their chunk (a task list, or a row range of descriptors that the
worker materializes itself).

Fault tolerance: every lease carries a deadline.  A worker death (socket
EOF, or a spawned process observed dead) or a deadline expiry requeues the
chunk for reassignment, bounded by :attr:`Coordinator.max_lease_retries`
attempts per chunk; spawned workers are replaced up to a bounded respawn
budget.  Because runs are pure functions of their content, re-executing a
lost chunk -- or accepting a straggler's late result for a chunk that was
already reassigned -- can never change a value, only who computed it.
Telemetry counters (``leases_issued``, ``leases_reassigned``,
``worker_deaths``, ...) surface through ``Runtime.stats()['distributed']``.

Three lease kinds cover the runtime's dispatch shapes:

* ``"pairs"``   -- context = program; chunk = ``[(config, input), ...]``;
  result = the pickled :class:`~repro.lang.program.RunResult` list.
* ``"calls"``   -- context = shared-argument registry; chunk = a list of
  ``(fn, args, kwargs)`` call tasks; result = their return values.
* ``"rows"``    -- context = ``(program, configs, source)``; chunk =
  ``(start, stop)`` row range.  The worker materializes its own inputs
  from the source (the PR-4 descriptor: a few hundred bytes, not the
  inputs), executes through a worker-local :class:`~repro.runtime.cache.
  RunCache`, and streams back ``(run_key, time, accuracy, extra)``
  entries that the coordinator's runtime folds into the measurement
  matrix *and* its sharded cache store.
"""

from __future__ import annotations

import base64
import json
import multiprocessing
import os
import pickle
import selectors
import socket
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.lang.program import PetaBricksProgram, RunResult
from repro.resilience.faults import FaultError, fault_site
from repro.runtime.executors import (
    BaseExecutor,
    CallTask,
    SerialExecutor,
    Task,
    _call_chunksize,
    _default_workers,
)

#: Wire-protocol version; both sides refuse to talk across a mismatch.
PROTOCOL_VERSION = 1

#: How long the coordinator waits in one ``selector.select`` call; bounds
#: the latency of deadline/death checks without busy-waiting.
_POLL_SECONDS = 0.05


def _env_float(name: str, default: float) -> float:
    """A float environment override, degrading to the default with a warning."""
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        return float(value)
    except ValueError:
        warnings.warn(f"ignoring non-numeric {name}={value!r}")
        return default


def default_socket_timeout() -> float:
    """Per-connection socket timeout (``REPRO_DIST_SOCKET_TIMEOUT``, 30s)."""
    return _env_float("REPRO_DIST_SOCKET_TIMEOUT", 30.0)


def default_join_timeout() -> float:
    """Dead-worker process join timeout (``REPRO_DIST_JOIN_TIMEOUT``, 2s)."""
    return _env_float("REPRO_DIST_JOIN_TIMEOUT", 2.0)


def encode_payload(obj: Any) -> str:
    """Pickle + base64 an arbitrary Python object for a JSON message."""
    raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return base64.b64encode(raw).decode("ascii")


def decode_payload(text: str) -> Any:
    """Invert :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Send one newline-delimited JSON message (blocking)."""
    sock.sendall(json.dumps(message).encode("utf-8") + b"\n")


def recv_messages(buffer: bytearray, data: bytes) -> List[Dict[str, Any]]:
    """Fold received bytes into ``buffer``; return the completed messages."""
    buffer.extend(data)
    messages: List[Dict[str, Any]] = []
    while True:
        newline = buffer.find(b"\n")
        if newline < 0:
            return messages
        line = bytes(buffer[:newline])
        del buffer[: newline + 1]
        if line.strip():
            messages.append(json.loads(line.decode("utf-8")))


class LeaseError(RuntimeError):
    """A lease failed permanently (task raised, or retries exhausted)."""


@dataclass
class _Chunk:
    """One pending unit of a batch: the chunk payload plus its retry state."""

    index: int
    payload: Any
    attempts: int = 0


@dataclass
class _WorkerState:
    """Coordinator-side view of one connected worker."""

    conn: socket.socket
    buffer: bytearray = field(default_factory=bytearray)
    #: pid reported in the worker's hello (diagnostics only).
    pid: Optional[int] = None
    #: Spawned process handle; None for externally attached workers.
    process: Optional[multiprocessing.process.BaseProcess] = None
    #: Batch id whose context this worker has already received.
    context_batch: Optional[int] = None
    #: The chunk currently leased to this worker (None when idle).
    chunk: Optional[_Chunk] = None
    #: Wall-clock deadline of the current lease.
    deadline: float = 0.0
    #: True once the hello arrived; leases are only assigned after it.
    ready: bool = False


class Coordinator:
    """Localhost lease server: partitions batches, survives worker deaths.

    Args:
        workers: target number of locally spawned worker processes; 0 means
            "externally attached workers only".
        lease_timeout: seconds a worker gets per lease before its chunk is
            reassigned (a hung worker's work is redone elsewhere; its late
            result, if it ever arrives, is accepted only while the chunk is
            still unresolved).
        max_lease_retries: how many times one chunk may be *re*assigned
            before the batch fails -- the bound that keeps a chunk that
            reliably kills workers from cycling forever.
        socket_timeout: per-connection timeout on accepted worker sockets,
            in seconds.  Defaults to ``REPRO_DIST_SOCKET_TIMEOUT`` (30s).
            Bounds how long a blocking send to a wedged worker can stall
            the coordinator loop; it is *not* the lease deadline --
            ``lease_timeout`` governs how long a worker may hold a chunk,
            this governs how long one socket operation may block.
        join_timeout: how long to wait for a dead spawned worker process
            to be reaped, in seconds.  Defaults to
            ``REPRO_DIST_JOIN_TIMEOUT`` (2s).
        port: TCP port to listen on; 0 (default) picks an ephemeral port.
            A fixed port is what lets external workers reconnect to a
            *restarted* coordinator without rediscovering the address --
            ``SO_REUSEADDR`` on the listener makes the rebind immediate
            even while connections from the previous incarnation linger in
            TIME_WAIT (see ``tests/runtime/test_distributed.py::
            TestPortRebind``).
    """

    def __init__(
        self,
        workers: int = 0,
        lease_timeout: float = 60.0,
        max_lease_retries: int = 3,
        socket_timeout: Optional[float] = None,
        join_timeout: Optional[float] = None,
        port: int = 0,
    ) -> None:
        self.workers = max(0, int(workers))
        self.lease_timeout = float(lease_timeout)
        self.max_lease_retries = int(max_lease_retries)
        self.socket_timeout = (
            default_socket_timeout() if socket_timeout is None else float(socket_timeout)
        )
        self.join_timeout = (
            default_join_timeout() if join_timeout is None else float(join_timeout)
        )
        self.counters: Dict[str, int] = {
            "leases_issued": 0,
            "leases_reassigned": 0,
            "worker_deaths": 0,
            "workers_spawned": 0,
            "workers_attached": 0,
            "batches_dispatched": 0,
        }
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        # Without SO_REUSEADDR a coordinator restarting on a fixed port
        # would fail to bind while its previous incarnation's accepted
        # connections sit in TIME_WAIT -- the restart path must be clean.
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", int(port)))
        self._listener.listen(64)
        self._listener.setblocking(False)
        self.address: Tuple[str, int] = self._listener.getsockname()
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._listener, selectors.EVENT_READ)
        self._workers: Dict[socket.socket, _WorkerState] = {}
        self._batch_seq = 0
        #: Respawn budget: a batch of chunks that each kill their worker is
        #: already bounded by per-chunk retries, but a worker that dies
        #: outside any lease (bad import, OOM loop) must not respawn forever.
        self._respawn_budget = 4 * max(1, self.workers) + 8
        #: Spawned-but-not-yet-connected process handles (paired on hello).
        self._pending_processes: List[multiprocessing.process.BaseProcess] = []
        self._closed = False

    # -- worker management ----------------------------------------------

    def _spawn_worker(self) -> None:
        if self._respawn_budget <= 0:
            return
        self._respawn_budget -= 1
        # Import here: repro.worker imports this module for the framing
        # helpers, so a module-level import would be circular.
        from repro.worker import worker_main

        context = multiprocessing.get_context("spawn")
        process = context.Process(
            target=worker_main,
            args=(self.address[0], self.address[1]),
            daemon=True,
            name="repro-dist-worker",
        )
        process.start()
        self.counters["workers_spawned"] += 1
        # The connection arrives through the listener like any external
        # worker; _accept pairs it with this process handle by pid.
        self._pending_processes.append(process)

    def ensure_workers(self) -> None:
        """Spawn local workers up to the target count (dead ones replaced)."""
        self._pending_processes = [
            p for p in self._pending_processes if p.is_alive()
        ]
        live = sum(
            1
            for state in self._workers.values()
            if state.process is not None and state.process.is_alive()
        ) + len(self._pending_processes)
        for _ in range(self.workers - live):
            self._spawn_worker()

    def _accept(self) -> None:
        try:
            conn, _addr = self._listener.accept()
        except (BlockingIOError, OSError):
            return
        conn.setblocking(True)
        conn.settimeout(self.socket_timeout)
        self._selector.register(conn, selectors.EVENT_READ)
        self._workers[conn] = _WorkerState(conn=conn)

    def _drop_worker(self, state: _WorkerState, *, died: bool) -> Optional[_Chunk]:
        """Forget a worker; return its outstanding chunk for requeueing."""
        if died:
            self.counters["worker_deaths"] += 1
        try:
            self._selector.unregister(state.conn)
        except (KeyError, ValueError):
            pass
        try:
            state.conn.close()
        except OSError:
            pass
        self._workers.pop(state.conn, None)
        if state.process is not None and not state.process.is_alive():
            state.process.join(timeout=self.join_timeout)
        return state.chunk

    def connected_workers(self) -> int:
        """Workers that have completed their hello (diagnostics/tests)."""
        return sum(1 for state in self._workers.values() if state.ready)

    # -- batch dispatch --------------------------------------------------

    def run_leases(self, kind: str, context: Any, payloads: Sequence[Any]) -> List[Any]:
        """Execute one batch of chunk leases; results aligned to ``payloads``.

        Blocks until every chunk is resolved (executing chunks on whichever
        workers are alive, reassigning lost ones) or a chunk fails
        permanently, in which case :class:`LeaseError` is raised.
        """
        if self._closed:
            raise RuntimeError("coordinator is closed")
        if not payloads:
            return []
        self._batch_seq += 1
        self.counters["batches_dispatched"] += 1
        batch_id = self._batch_seq
        context_blob = encode_payload(context)
        pending: Deque[_Chunk] = deque(
            _Chunk(index=i, payload=payload) for i, payload in enumerate(payloads)
        )
        results: List[Any] = [None] * len(payloads)
        unresolved = set(range(len(payloads)))

        # A previous batch may have been aborted with leases in flight;
        # those workers drain their queue sequentially, so new leases just
        # line up behind the stale work (whose results are dropped by id).
        for state in self._workers.values():
            state.chunk = None

        self.ensure_workers()
        no_worker_since: Optional[float] = None
        while unresolved:
            self._service_sockets(batch_id, results, unresolved, pending)
            self._reap_dead(pending)
            self._expire_leases(pending)
            # Keep the local pool at strength: a worker killed mid-batch is
            # replaced (within the respawn budget) instead of the batch
            # limping along on the survivors.
            self.ensure_workers()
            self._assign(batch_id, kind, context_blob, pending)
            if self._workers or self._pending_processes:
                no_worker_since = None
            else:
                # Worker-less but not hopeless: an external worker may still
                # attach (the workers=0 mode exists for exactly that), so
                # give it one lease-timeout's grace before failing.
                now = time.monotonic()
                if no_worker_since is None:
                    no_worker_since = now
                elif now - no_worker_since > self.lease_timeout:
                    raise LeaseError(
                        "no workers available (respawn budget exhausted, "
                        "none attached within the lease timeout; "
                        f"{len(unresolved)} chunk(s) unresolved)"
                    )
        return results

    def _service_sockets(
        self,
        batch_id: int,
        results: List[Any],
        unresolved: set,
        pending: Deque[_Chunk],
    ) -> None:
        for key, _events in self._selector.select(timeout=_POLL_SECONDS):
            if key.fileobj is self._listener:
                self._accept()
                continue
            state = self._workers.get(key.fileobj)  # type: ignore[arg-type]
            if state is None:
                continue
            try:
                data = state.conn.recv(1 << 16)
            except (socket.timeout, BlockingIOError):
                continue
            except OSError:
                data = b""
            if not data:
                chunk = self._drop_worker(state, died=True)
                if chunk is not None:
                    self._requeue(chunk, pending)
                continue
            for message in recv_messages(state.buffer, data):
                self._handle_message(state, message, batch_id, results, unresolved)

    def _handle_message(
        self,
        state: _WorkerState,
        message: Dict[str, Any],
        batch_id: int,
        results: List[Any],
        unresolved: set,
    ) -> None:
        kind = message.get("type")
        if kind == "hello":
            if message.get("protocol") != PROTOCOL_VERSION:
                self._drop_worker(state, died=False)
                return
            state.pid = message.get("pid")
            state.ready = True
            # Pair the connection with the spawned process handle (if any),
            # so process-level death detection covers this socket.
            for process in list(self._pending_processes):
                if process.pid == state.pid:
                    state.process = process
                    self._pending_processes.remove(process)
                    break
            if state.process is None and state.pid is not None:
                self.counters["workers_attached"] += 1
            return
        if kind == "result":
            lease_batch, index, _attempt = _parse_lease_id(message["lease_id"])
            state.chunk = None
            if lease_batch == batch_id and index in unresolved:
                results[index] = decode_payload(message["payload"])
                unresolved.discard(index)
            # A stale result (older batch, or an index a reassignment
            # already answered) is simply dropped: purity guarantees the
            # accepted copy carried identical values.
            return
        if kind == "error":
            # The task itself raised in the worker: that is the caller's
            # exception, not a transport fault -- fail the batch with it.
            state.chunk = None
            detail = message.get("error", "worker task failed")
            raise LeaseError(
                f"lease {message.get('lease_id')} failed on worker "
                f"pid={state.pid}: {detail}"
            )

    def _reap_dead(self, pending: Deque[_Chunk]) -> None:
        """Requeue chunks held by spawned workers whose process has died."""
        for state in list(self._workers.values()):
            if state.process is not None and not state.process.is_alive():
                chunk = self._drop_worker(state, died=True)
                if chunk is not None:
                    self._requeue(chunk, pending)

    def _expire_leases(self, pending: Deque[_Chunk]) -> None:
        now = time.monotonic()
        for state in self._workers.values():
            if state.chunk is not None and now > state.deadline:
                chunk = state.chunk
                # The worker keeps the connection; if it ever finishes, the
                # straggler result is accepted only while still unresolved.
                state.chunk = None
                self._requeue(chunk, pending)

    def _requeue(self, chunk: _Chunk, pending: Deque[_Chunk]) -> None:
        chunk.attempts += 1
        if chunk.attempts > self.max_lease_retries:
            raise LeaseError(
                f"chunk {chunk.index} lost {chunk.attempts} time(s); "
                "max lease retries exhausted"
            )
        self.counters["leases_reassigned"] += 1
        pending.appendleft(chunk)

    def _assign(
        self, batch_id: int, kind: str, context_blob: str, pending: Deque[_Chunk]
    ) -> None:
        for state in list(self._workers.values()):
            if not pending:
                return
            if not state.ready or state.chunk is not None:
                continue
            chunk = pending.popleft()
            lease_id = f"{batch_id}:{chunk.index}:{chunk.attempts}"
            try:
                # Fault site: a send that fails (raise) or a connection torn
                # down just before the send (drop) -- both land in the
                # except OSError requeue path below, exactly like a real
                # peer reset would.
                spec = fault_site("dist.send", detail=lease_id)
                if spec is not None and spec.action == "drop":
                    _shutdown_socket(state.conn)
                    raise FaultError("dist.send", "drop")
                if state.context_batch != batch_id:
                    send_message(
                        state.conn,
                        {"type": "context", "batch": batch_id, "kind": kind,
                         "payload": context_blob},
                    )
                    state.context_batch = batch_id
                send_message(
                    state.conn,
                    {"type": "lease", "lease_id": lease_id,
                     "payload": encode_payload(chunk.payload)},
                )
            except OSError:
                dropped = self._drop_worker(state, died=True)
                if dropped is not None:
                    self._requeue(dropped, pending)
                self._requeue(chunk, pending)
                continue
            state.chunk = chunk
            state.deadline = time.monotonic() + self.lease_timeout
            self.counters["leases_issued"] += 1
            # Fault site: the connection dies *mid-lease*, after the worker
            # was granted the chunk -- exercises EOF detection and the
            # requeue-on-death path rather than the send error path.
            spec = fault_site("dist.lease", detail=lease_id)
            if spec is not None and spec.action == "drop":
                _shutdown_socket(state.conn)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Shut workers down and release all sockets (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for state in list(self._workers.values()):
            try:
                send_message(state.conn, {"type": "shutdown"})
            except OSError:
                pass
            self._drop_worker(state, died=False)
        for process in self._pending_processes:
            process.terminate()
            process.join(timeout=self.join_timeout)
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._selector.close()

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def _shutdown_socket(conn: socket.socket) -> None:
    """Tear a connection down abruptly (the injected-drop primitive)."""
    try:
        conn.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass


def _parse_lease_id(lease_id: str) -> Tuple[int, int, int]:
    batch, index, attempt = lease_id.split(":")
    return int(batch), int(index), int(attempt)


def _partition(items: Sequence[Any], size: int) -> List[List[Any]]:
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


class DistributedExecutor(BaseExecutor):
    """Executor facade over a :class:`Coordinator` and its leased workers.

    Args:
        workers: locally spawned worker count (default: CPU count).  Set 0
            to rely solely on externally attached workers.
        lease_timeout: per-lease deadline in seconds.
        max_lease_retries: reassignment bound per chunk.
        socket_timeout: per-connection socket timeout in seconds
            (default: ``REPRO_DIST_SOCKET_TIMEOUT`` or 30s).
        join_timeout: dead-worker process join timeout in seconds
            (default: ``REPRO_DIST_JOIN_TIMEOUT`` or 2s).
        port: fixed coordinator port (0 = ephemeral); lets a restarted
            executor rebind the same address for externally attached
            workers, and lets a host budget its ports when a serving
            process and a distributed executor run side by side.

    Attributes:
        fallback_reason: set when a batch had to run serially because its
            content could not be pickled across the socket; None otherwise.

    Note: ``run_batch`` results come back *output-free* (workers strip the
    program output before shipping, exactly as the measurement cache does);
    callers needing outputs use ``Runtime.run(need_output=True)``, which
    never routes through an executor batch.
    """

    name = "distributed"

    #: Tells :meth:`repro.runtime.Runtime.measure` that this executor can
    #: take a ``(program, configs, source)`` descriptor batch directly.
    supports_input_sources = True

    def __init__(
        self,
        workers: Optional[int] = None,
        lease_timeout: float = 60.0,
        max_lease_retries: int = 3,
        socket_timeout: Optional[float] = None,
        join_timeout: Optional[float] = None,
        port: int = 0,
    ) -> None:
        self.workers = _default_workers() if workers is None else max(0, int(workers))
        self.lease_timeout = lease_timeout
        self.max_lease_retries = max_lease_retries
        self.socket_timeout = socket_timeout
        self.join_timeout = join_timeout
        self.port = int(port)
        self.fallback_reason: Optional[str] = None
        self._coordinator: Optional[Coordinator] = None

    @property
    def coordinator(self) -> Coordinator:
        """The lazily started coordinator (binds the socket on first use)."""
        if self._coordinator is None:
            self._coordinator = Coordinator(
                workers=self.workers,
                lease_timeout=self.lease_timeout,
                max_lease_retries=self.max_lease_retries,
                socket_timeout=self.socket_timeout,
                join_timeout=self.join_timeout,
                port=self.port,
            )
        return self._coordinator

    @property
    def address(self) -> Tuple[str, int]:
        """Coordinator ``(host, port)`` for external ``repro.worker`` attach."""
        return self.coordinator.address

    @property
    def lease_stats(self) -> Dict[str, int]:
        """Lease/worker telemetry counters (zeros before the first batch)."""
        if self._coordinator is None:
            return {}
        return dict(self._coordinator.counters)

    def _picklable(self, *objects: Any) -> bool:
        try:
            for obj in objects:
                pickle.dumps(obj)
            return True
        except Exception as error:
            self.fallback_reason = f"not picklable: {type(error).__name__}"
            return False

    def run_batch(
        self, program: PetaBricksProgram, tasks: Sequence[Task]
    ) -> List[RunResult]:
        if not tasks:
            return []
        if not self._picklable(program, tasks[0]):
            return SerialExecutor().run_batch(program, tasks)
        size = _call_chunksize(len(tasks), max(1, self.workers))
        chunks = self.coordinator.run_leases("pairs", program, _partition(tasks, size))
        return [result for chunk in chunks for result in chunk]

    def run_calls(
        self,
        calls: Sequence[CallTask],
        shared: Optional[Dict[str, Any]] = None,
    ) -> List[Any]:
        if not calls:
            return []
        shared = shared or {}
        if not self._picklable(calls[0], shared):
            return SerialExecutor().run_calls(calls, shared=shared)
        size = _call_chunksize(len(calls), max(1, self.workers))
        chunks = self.coordinator.run_leases("calls", shared, _partition(calls, size))
        return [result for chunk in chunks for result in chunk]

    def run_rows(
        self,
        program: PetaBricksProgram,
        configs: Sequence[Any],
        source: Any,
        row_ranges: Sequence[Tuple[int, int]],
    ) -> List[Dict[str, Any]]:
        """Execute descriptor row-range leases (the streaming measure path).

        Each returned element matches its row range and is a dict with
        ``entries`` (one ``(run_key, time, accuracy, extra)`` tuple per
        (row, config) pair, row-major) and ``cache_hits`` (how many of them
        the worker's local cache answered).  The caller must have verified
        picklability of ``(program, configs, source)`` beforehand
        (``Runtime.measure`` does, falling back to the pair path).
        """
        return self.coordinator.run_leases(
            "rows", (program, list(configs), source), list(row_ranges)
        )

    def close(self) -> None:
        if self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None

    def __repr__(self) -> str:
        return f"DistributedExecutor(workers={self.workers})"
