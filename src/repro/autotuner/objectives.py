"""The autotuner's dual objective: meet accuracy, then minimize time.

PetaBricks variable-accuracy autotuning considers "a two dimensional
objective space, where its first objective is to meet the accuracy target
(with a given level of confidence) and the second objective is to maximize
performance".  This module encodes that ordering as a total order over
candidate evaluations so the evolutionary search can compare individuals
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.lang.accuracy import AccuracyRequirement
from repro.lang.config import Configuration
from repro.lang.program import PetaBricksProgram
from repro.runtime import Runtime, default_runtime


@dataclass(frozen=True)
class CandidateEvaluation:
    """Measured behaviour of one configuration on the tuning input(s).

    Attributes:
        config: the evaluated configuration.
        mean_time: mean work-unit cost across the tuning inputs.
        accuracies: per-input accuracy scores.
        satisfaction_rate: fraction of tuning inputs meeting the accuracy
            threshold.
        meets_accuracy: whether the satisfaction rate reaches the
            requirement's satisfaction threshold.
    """

    config: Configuration
    mean_time: float
    accuracies: Tuple[float, ...]
    satisfaction_rate: float
    meets_accuracy: bool

    def sort_key(self) -> Tuple[int, float, float]:
        """Total-order key: accuracy feasibility first, then time.

        Infeasible candidates are ordered among themselves by how badly they
        miss the target (higher satisfaction first) and then by time, which
        gives the evolutionary search a gradient toward feasibility.
        """
        if self.meets_accuracy:
            return (0, self.mean_time, 0.0)
        return (1, -self.satisfaction_rate, self.mean_time)


class TuningObjective:
    """Evaluates configurations for the autotuner.

    Args:
        program: the program under tuning.
        tuning_inputs: the inputs used to evaluate candidates.  Level 1 uses
            the cluster centroid (a single synthetic input); passing several
            inputs gives a more robust but slower evaluation.
        requirement: accuracy requirement; defaults to the program's own.
        runtime: measurement runtime the candidate runs go through; defaults
            to the shared serial, cache-less runtime.  ``evaluations_performed``
            counts *requested* runs, so a caching runtime leaves the reported
            tuning budget unchanged while skipping re-execution.
    """

    def __init__(
        self,
        program: PetaBricksProgram,
        tuning_inputs: Sequence[Any],
        requirement: Optional[AccuracyRequirement] = None,
        runtime: Optional[Runtime] = None,
    ) -> None:
        if not tuning_inputs:
            raise ValueError("need at least one tuning input")
        self.program = program
        self.tuning_inputs = list(tuning_inputs)
        self.requirement = requirement or program.accuracy_requirement
        self.runtime = runtime if runtime is not None else default_runtime()
        self.evaluations_performed = 0

    def evaluate(self, config: Configuration) -> CandidateEvaluation:
        """Run the program with ``config`` on every tuning input (one batch)."""
        return self.evaluate_many([config])[0]

    def evaluate_many(self, configs: Sequence[Configuration]) -> List[CandidateEvaluation]:
        """Evaluate a whole generation of configurations at once.

        All (configuration, input) runs go through the runtime as one batch
        (``phase tuner.objective``), so candidate evaluations -- the
        autotuner's hot loop -- fan out over the configured executor while
        keeping every run in the content-keyed run cache (deduplicated
        within the batch, shared with other pipeline stages, and persisted
        via ``cache_path`` like any other measurement).  Results come back
        in ``configs`` order, run for run the same sequence a serial
        ``[evaluate(c) for c in configs]`` loop would have produced.
        """
        pairs = [
            (config, tuning_input)
            for config in configs
            for tuning_input in self.tuning_inputs
        ]
        with self.runtime.telemetry.phase("tuner.objective"):
            results = self.runtime.run_pairs(self.program, pairs)
        self.evaluations_performed += len(pairs)
        n = len(self.tuning_inputs)
        return [
            self._assemble(
                config,
                [result.time for result in chunk],
                [result.accuracy for result in chunk],
            )
            for config, chunk in zip(
                configs, (results[i : i + n] for i in range(0, len(results), n))
            )
        ]

    def _assemble(
        self, config: Configuration, times: List[float], accuracies: List[float]
    ) -> CandidateEvaluation:
        mean_time = sum(times) / len(times)
        satisfaction = self.requirement.satisfaction_rate(accuracies)
        return CandidateEvaluation(
            config=config,
            mean_time=mean_time,
            accuracies=tuple(accuracies),
            satisfaction_rate=satisfaction,
            meets_accuracy=satisfaction >= self.requirement.satisfaction_threshold
            if self.requirement.enabled
            else True,
        )

    @staticmethod
    def best(evaluations: Iterable[CandidateEvaluation]) -> CandidateEvaluation:
        """Return the best evaluation under the dual objective.

        Raises:
            ValueError: if ``evaluations`` is empty.
        """
        candidates = list(evaluations)
        if not candidates:
            raise ValueError("no evaluations to compare")
        return min(candidates, key=lambda e: e.sort_key())
