"""Random-search tuner.

A deliberately simple baseline used in ablation experiments (how much does
the evolutionary search buy over uniform sampling of the configuration
space?) and as a cheap fallback when a benchmark's space is small.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Sequence

from repro.autotuner.evolution import TuningResult
from repro.autotuner.objectives import TuningObjective
from repro.lang.config import Configuration
from repro.lang.program import PetaBricksProgram
from repro.runtime import Runtime


class RandomSearchTuner:
    """Uniform random sampling of the configuration space.

    Args:
        n_samples: number of random configurations to evaluate (the default
            configuration is always evaluated in addition).
        seed: RNG seed.
        runtime: measurement runtime candidate evaluations go through.
    """

    def __init__(
        self,
        n_samples: int = 60,
        seed: Optional[int] = None,
        runtime: Optional[Runtime] = None,
    ) -> None:
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        self.n_samples = n_samples
        self.seed = seed
        self.runtime = runtime

    def tune(
        self,
        program: PetaBricksProgram,
        tuning_inputs: Sequence[Any],
        initial_configs: Optional[Sequence[Configuration]] = None,
    ) -> TuningResult:
        """Evaluate ``n_samples`` random configurations and return the best."""
        rng = random.Random(self.seed)
        objective = TuningObjective(program, tuning_inputs, runtime=self.runtime)

        candidates = [program.default_configuration()]
        if initial_configs:
            candidates.extend(initial_configs)
        candidates.extend(
            program.config_space.sample(rng) for _ in range(self.n_samples)
        )

        evaluations = [objective.evaluate(config) for config in candidates]
        best = TuningObjective.best(evaluations)
        history = []
        incumbent = None
        for evaluation in evaluations:
            if incumbent is None or evaluation.sort_key() < incumbent.sort_key():
                incumbent = evaluation
            history.append(incumbent.mean_time)
        return TuningResult(
            best=best,
            history=history,
            evaluations=objective.evaluations_performed,
            generations=1,
        )
