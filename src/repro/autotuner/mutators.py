"""Mutation and crossover operators over configurations.

The evolutionary autotuner manipulates whole :class:`Configuration` objects.
Mutation perturbs a random subset of parameters using each parameter's own
``mutate`` method (integers move within their range, selectors restructure
their rule lists, categoricals re-sample, ...).  Crossover performs uniform
parameter exchange between two parents.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.lang.config import Configuration, ConfigurationSpace


def mutate_configuration(
    config: Configuration,
    space: ConfigurationSpace,
    rng: random.Random,
    mutation_rate: float = 0.35,
    strength: float = 0.4,
) -> Configuration:
    """Return a mutated copy of ``config``.

    Each parameter is independently mutated with probability
    ``mutation_rate``; at least one parameter is always mutated so the
    offspring differs from its parent whenever the space allows it.

    Args:
        config: parent configuration.
        space: the configuration space (supplies per-parameter mutators).
        rng: random source.
        mutation_rate: per-parameter mutation probability.
        strength: mutation strength forwarded to each parameter.
    """
    names = space.names()
    if not names:
        return config
    values = config.as_dict()
    mutated_any = False
    for name in names:
        if rng.random() < mutation_rate:
            values[name] = space.get(name).mutate(values[name], rng, strength)
            mutated_any = True
    if not mutated_any:
        name = rng.choice(names)
        values[name] = space.get(name).mutate(values[name], rng, strength)
    return Configuration(values, space=space)


def crossover_configurations(
    first: Configuration,
    second: Configuration,
    space: ConfigurationSpace,
    rng: random.Random,
) -> Tuple[Configuration, Configuration]:
    """Uniform crossover: each parameter is swapped between parents with p=0.5."""
    values_a = first.as_dict()
    values_b = second.as_dict()
    for name in space.names():
        if rng.random() < 0.5:
            values_a[name], values_b[name] = values_b[name], values_a[name]
    return (
        Configuration(values_a, space=space),
        Configuration(values_b, space=space),
    )
