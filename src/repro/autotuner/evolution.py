"""The evolutionary autotuner.

A (mu + lambda) evolutionary search over a program's configuration space,
standing in for the PetaBricks evolutionary autotuner the paper invokes once
per input cluster.  The search:

1. seeds a population with the default configuration plus random samples;
2. each generation, creates offspring by tournament selection, uniform
   crossover, and per-parameter mutation;
3. evaluates every new candidate with the dual accuracy-then-time objective
   (:class:`~repro.autotuner.objectives.TuningObjective`);
4. keeps the best ``population_size`` individuals (elitism is implicit in
   the plus-selection);
5. stops after ``max_generations`` generations or when no improvement has
   been seen for ``stall_generations`` generations.

Because this reproduction replaces wall-clock measurement with a
deterministic cost model, a full tuning run takes seconds rather than the
hours-to-days the paper reports; the *interface* (give me the best
configuration for this presumed input) is identical, which is all Level 1
requires.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.autotuner.mutators import crossover_configurations, mutate_configuration
from repro.autotuner.objectives import CandidateEvaluation, TuningObjective
from repro.lang.config import Configuration
from repro.lang.program import PetaBricksProgram
from repro.runtime import Runtime


@dataclass
class TuningResult:
    """Outcome of one autotuning run.

    Attributes:
        best: the best evaluation found (configuration + measurements).
        history: best objective value (mean time of the incumbent) per
            generation, useful for convergence diagnostics and tests.
        evaluations: total number of program executions performed.
        generations: number of generations actually run.
    """

    best: CandidateEvaluation
    history: List[float] = field(default_factory=list)
    evaluations: int = 0
    generations: int = 0

    @property
    def best_config(self) -> Configuration:
        """The winning configuration (the landmark, in Level-1 terms)."""
        return self.best.config


class EvolutionaryAutotuner:
    """(mu + lambda) evolutionary search over configurations.

    Args:
        population_size: mu, the number of survivors per generation.
        offspring_per_generation: lambda, the number of children bred per
            generation.
        max_generations: generation cap.
        stall_generations: early-stop patience (generations without
            improvement of the incumbent).
        tournament_size: tournament selection pressure.
        crossover_rate: probability that a child is produced by crossover
            (otherwise pure mutation of one parent).
        mutation_rate: per-parameter mutation probability.
        seed: RNG seed; tuning is fully deterministic given the seed and the
            (deterministic) cost model.
        runtime: measurement runtime candidate evaluations go through; the
            search itself (selection, crossover, mutation) stays on the
            seeded RNG, so the runtime only affects *how* runs execute, not
            which configurations are tried.
    """

    def __init__(
        self,
        population_size: int = 12,
        offspring_per_generation: int = 12,
        max_generations: int = 15,
        stall_generations: int = 5,
        tournament_size: int = 3,
        crossover_rate: float = 0.4,
        mutation_rate: float = 0.35,
        seed: Optional[int] = None,
        runtime: Optional[Runtime] = None,
    ) -> None:
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if offspring_per_generation < 1:
            raise ValueError("offspring_per_generation must be >= 1")
        if max_generations < 1:
            raise ValueError("max_generations must be >= 1")
        self.population_size = population_size
        self.offspring_per_generation = offspring_per_generation
        self.max_generations = max_generations
        self.stall_generations = stall_generations
        self.tournament_size = tournament_size
        self.crossover_rate = crossover_rate
        self.mutation_rate = mutation_rate
        self.seed = seed
        self.runtime = runtime

    def tune(
        self,
        program: PetaBricksProgram,
        tuning_inputs: Sequence[Any],
        initial_configs: Optional[Sequence[Configuration]] = None,
    ) -> TuningResult:
        """Search for the best configuration of ``program`` on ``tuning_inputs``.

        Args:
            program: the program under tuning.
            tuning_inputs: the presumed inputs (Level 1 passes the cluster
                centroid reconstructed as a concrete input).
            initial_configs: optional extra seed configurations (e.g. the
                previous cluster's landmark) injected into the first
                population.
        """
        rng = random.Random(self.seed)
        objective = TuningObjective(program, tuning_inputs, runtime=self.runtime)
        space = program.config_space

        seeds: List[Configuration] = [program.default_configuration()]
        if initial_configs:
            seeds.extend(initial_configs)
        while len(seeds) < self.population_size:
            seeds.append(space.sample(rng))

        evaluated: Dict[Configuration, CandidateEvaluation] = {}
        population = self._evaluate_batch(
            objective, seeds[: self.population_size], evaluated
        )

        population.sort(key=lambda e: e.sort_key())
        incumbent = population[0]
        history = [incumbent.mean_time]
        stall = 0
        generations_run = 0

        for _generation in range(self.max_generations):
            generations_run += 1
            # Breed the whole generation first (pure RNG work), then evaluate
            # it as one batch over the runtime's executor.  Breeding depends
            # only on the *previous* population, so this is exactly the
            # serial child-by-child loop with the measurements hoisted out.
            children = [
                self._breed(population, space, rng)
                for _ in range(self.offspring_per_generation)
            ]
            offspring = self._evaluate_batch(objective, children, evaluated)

            population = sorted(
                population + offspring, key=lambda e: e.sort_key()
            )[: self.population_size]

            new_incumbent = population[0]
            if new_incumbent.sort_key() < incumbent.sort_key():
                incumbent = new_incumbent
                stall = 0
            else:
                stall += 1
            history.append(incumbent.mean_time)
            if stall >= self.stall_generations:
                break

        return TuningResult(
            best=incumbent,
            history=history,
            evaluations=objective.evaluations_performed,
            generations=generations_run,
        )

    # -- internals ------------------------------------------------------

    def _breed(
        self,
        population: List[CandidateEvaluation],
        space,
        rng: random.Random,
    ) -> Configuration:
        parent_a = self._tournament(population, rng).config
        if rng.random() < self.crossover_rate and len(population) > 1:
            parent_b = self._tournament(population, rng).config
            child, _ = crossover_configurations(parent_a, parent_b, space, rng)
        else:
            child = parent_a
        return mutate_configuration(
            child, space, rng, mutation_rate=self.mutation_rate
        )

    def _tournament(
        self, population: List[CandidateEvaluation], rng: random.Random
    ) -> CandidateEvaluation:
        size = min(self.tournament_size, len(population))
        contestants = rng.sample(population, size)
        return min(contestants, key=lambda e: e.sort_key())

    @staticmethod
    def _evaluate_batch(
        objective: TuningObjective,
        configs: Sequence[Configuration],
        cache: Dict[Configuration, CandidateEvaluation],
    ) -> List[CandidateEvaluation]:
        """Evaluate ``configs`` through the memo, batching the fresh ones.

        Only configurations not yet in the memo reach the objective (once
        each, preserving the reported evaluation budget of the serial
        child-by-child loop); everything fresh goes through
        :meth:`TuningObjective.evaluate_many` as a single parallel batch.
        """
        fresh: List[Configuration] = []
        for config in configs:
            if config not in cache and config not in fresh:
                fresh.append(config)
        if fresh:
            for config, evaluation in zip(fresh, objective.evaluate_many(fresh)):
                cache[config] = evaluation
        return [cache[config] for config in configs]
