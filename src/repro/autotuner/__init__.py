"""Evolutionary autotuner substrate.

PetaBricks ships an evolutionary autotuner that searches the program's
configuration space (selector structures, cutoffs, tunables) for the
configuration that best satisfies a dual objective: meet the accuracy target,
then minimize execution time.  Level 1 of the paper's framework invokes this
autotuner once per input cluster, with the cluster's centroid as the presumed
input, to produce the "landmark" configurations.

This subpackage provides:

* :class:`~repro.autotuner.objectives.TuningObjective` -- the dual
  accuracy-then-time objective used to compare candidate configurations;
* :class:`~repro.autotuner.evolution.EvolutionaryAutotuner` -- a (mu + lambda)
  evolutionary search with tournament selection and per-parameter mutation;
* :class:`~repro.autotuner.random_search.RandomSearchTuner` -- a baseline
  tuner used in ablation experiments.
"""

from repro.autotuner.evolution import EvolutionaryAutotuner, TuningResult
from repro.autotuner.objectives import CandidateEvaluation, TuningObjective
from repro.autotuner.random_search import RandomSearchTuner

__all__ = [
    "CandidateEvaluation",
    "EvolutionaryAutotuner",
    "RandomSearchTuner",
    "TuningObjective",
    "TuningResult",
]
