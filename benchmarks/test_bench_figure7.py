"""Benchmark: regenerate Figure 7 (theoretical model curves).

Figure 7a: expected lost speedup vs. region size for 2-9 configurations.
Figure 7b: predicted fraction of full speedup at the worst-case region size
as the number of landmarks grows.  Both are closed-form model evaluations.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure7 import model_figure7a, model_figure7b


def test_figure7a_curves(benchmark):
    """Regenerate the Figure-7a curve family."""
    curves = benchmark(model_figure7a)
    assert set(curves) == {2, 3, 4, 5, 6, 7, 8, 9}
    peaks = {k: float(curve.y.max()) for k, curve in curves.items()}
    print("\n[figure7a] peak loss by #configs: " + ", ".join(f"{k}:{v:.3f}" for k, v in sorted(peaks.items())))
    # More configurations -> lower worst-case loss.
    ordered = [peaks[k] for k in sorted(peaks)]
    assert all(b < a for a, b in zip(ordered, ordered[1:]))


def test_figure7b_curve(benchmark):
    """Regenerate the Figure-7b diminishing-returns curve."""
    curve = benchmark(model_figure7b)
    print(
        "\n[figure7b] fraction of full speedup at k=10..100: "
        + ", ".join(f"{int(k)}:{v:.3f}" for k, v in zip(curve.x, curve.y))
    )
    assert np.all(np.diff(curve.y) >= 0.0)
    assert curve.y[0] < curve.y[-1]
    assert curve.y[-1] > 0.95
