"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The full
paper-scale runs are long; the harness therefore exposes a small/large switch
via the ``REPRO_BENCH_SCALE`` environment variable:

* ``small`` (default) -- minutes for the full suite, preserves the shapes;
* ``large`` -- closer to the defaults used to produce EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ExperimentConfig


def bench_scale() -> str:
    """The requested benchmark scale (``small`` or ``large``)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    return scale if scale in ("small", "large") else "small"


def experiment_config(seed: int = 0) -> ExperimentConfig:
    """The experiment configuration for the selected scale."""
    if bench_scale() == "large":
        return ExperimentConfig(
            n_inputs=240,
            n_clusters=12,
            tuner_generations=8,
            tuner_population=10,
            tuning_neighbors=4,
            max_subsets=128,
            seed=seed,
        )
    return ExperimentConfig(
        n_inputs=60,
        n_clusters=6,
        tuner_generations=3,
        tuner_population=6,
        tuning_neighbors=2,
        max_subsets=24,
        seed=seed,
    )


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Session-wide experiment configuration for all benchmark files."""
    return experiment_config()
