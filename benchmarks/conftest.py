"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The full
paper-scale runs are long; the harness therefore exposes a small/large switch
via the ``REPRO_BENCH_SCALE`` environment variable:

* ``small`` (default) -- minutes for the full suite, preserves the shapes;
* ``large`` -- closer to the defaults used to produce EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import warnings

import pytest

from repro.experiments.runner import ExperimentConfig


def bench_scale() -> str:
    """The requested benchmark scale (``small`` or ``large``).

    An unrecognized ``REPRO_BENCH_SCALE`` still falls back to ``small`` --
    a typo must not silently skip the large run the caller asked for, so
    the coercion warns with the offending value instead of hiding it.
    """
    raw = os.environ.get("REPRO_BENCH_SCALE", "small")
    scale = raw.lower()
    if scale in ("small", "large"):
        return scale
    warnings.warn(
        f"invalid REPRO_BENCH_SCALE={raw!r} (expected 'small' or 'large'); "
        "falling back to 'small'",
        RuntimeWarning,
        stacklevel=2,
    )
    return "small"


def experiment_config(seed: int = 0) -> ExperimentConfig:
    """The experiment configuration for the selected scale."""
    if bench_scale() == "large":
        return ExperimentConfig(
            n_inputs=240,
            n_clusters=12,
            tuner_generations=8,
            tuner_population=10,
            tuning_neighbors=4,
            max_subsets=128,
            seed=seed,
        )
    return ExperimentConfig(
        n_inputs=60,
        n_clusters=6,
        tuner_generations=3,
        tuner_population=6,
        tuning_neighbors=2,
        max_subsets=24,
        seed=seed,
    )


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Session-wide experiment configuration for all benchmark files."""
    return experiment_config()
