"""Benchmark: regenerate Figure 8 (speedup vs. number of landmarks).

Trains the system once per selected test, then re-evaluates it restricted to
random subsets of its landmarks of increasing size, printing the
median/quartile series the paper plots and asserting the diminishing-returns
shape (more landmarks never hurt, early landmarks contribute the most).
"""

from __future__ import annotations

import pytest

from repro.experiments.figure8 import landmark_sweep
from repro.experiments.runner import run_experiment

FIGURE8_TESTS = ("sort2", "binpacking")


def _run_sweep(test_name, config):
    result = run_experiment(test_name, config=config)
    total = result.training.dataset.n_landmarks
    counts = sorted({1, 2, max(3, total // 2), total})
    return landmark_sweep(result, landmark_counts=counts, n_subsets=20, seed=0)


@pytest.mark.parametrize("test_name", FIGURE8_TESTS)
def test_figure8_panel(benchmark, bench_config, test_name):
    """Regenerate one Figure-8 panel (landmark-count sweep)."""
    points = benchmark.pedantic(
        _run_sweep, args=(test_name, bench_config), rounds=1, iterations=1
    )
    series = ", ".join(f"k={p.n_landmarks}: median {p.median:.2f}x" for p in points)
    print(f"\n[figure8:{test_name}] {series}")
    medians = [p.median for p in points]
    # Diminishing returns: the largest subset is at least as good as the
    # smallest, and never dramatically better than the mid-size subset.
    assert medians[-1] >= medians[0] - 1e-9
    assert all(m >= 1.0 - 1e-6 for m in medians)
