"""Benchmark: regenerate Figure 6 (per-input speedup distributions).

For a representative pair of tests (one fixed-accuracy, one variable
accuracy), trains the system and produces the sorted per-input speedup series
the paper plots, printing its summary statistics and asserting the heavy
right tail the paper highlights (the maximum per-input speedup well above the
mean).
"""

from __future__ import annotations

import pytest

from repro.experiments.figure6 import distribution_from_result
from repro.experiments.runner import run_experiment

FIGURE6_TESTS = ("sort2", "binpacking")


def _run_panel(test_name, config):
    result = run_experiment(test_name, config=config)
    return distribution_from_result(result)


@pytest.mark.parametrize("test_name", FIGURE6_TESTS)
def test_figure6_panel(benchmark, bench_config, test_name):
    """Regenerate one Figure-6 panel (sorted per-input speedups)."""
    panel = benchmark.pedantic(
        _run_panel, args=(test_name, bench_config), rounds=1, iterations=1
    )
    print(
        f"\n[figure6:{test_name}] n={len(panel.speedups)} mean={panel.mean:.2f}x "
        f"max={panel.maximum:.2f}x tail(>2x)={panel.tail_fraction(2.0):.2%}"
    )
    assert len(panel.speedups) > 0
    assert panel.maximum >= panel.mean
