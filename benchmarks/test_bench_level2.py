"""Benchmark: the parallel Level-2 candidate search.

Records the serial-vs-parallel ``level2.train`` baseline for the
generalized task runtime: the same feature-subset x classifier-zoo search
on a stock-suite (``sort1``) dataset, carried serially and by a 4-worker
process pool, plus the warm-task-cache rerun.

On hosts with >= 4 cores the parallel search must be at least 2x faster
than the serial one; on smaller hosts the numbers are recorded without the
assertion (a 1-core container cannot demonstrate parallel speedup).  The
selected classifier must be identical either way -- the speedup is never
allowed to buy a different answer.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.benchmarks_suite import get_benchmark
from repro.core.level1 import Level1Config, run_level1
from repro.core.level2 import Level2Config, run_level2
from repro.runtime import Runtime

from conftest import bench_scale

#: Workers used for the parallel measurement (the baseline's fixed point).
WORKERS = 4

#: Committed small-scale baseline (``BENCH_level2.json``): the selected
#: classifier, its cost, and the candidate count are deterministic anchors;
#: the walls in it are informational only.
_BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_level2.json")


def _baseline():
    if bench_scale() != "small" or not os.path.exists(_BASELINE):
        return None
    with open(_BASELINE, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _level2_config() -> Level2Config:
    max_subsets = 128 if bench_scale() == "large" else 64
    return Level2Config(max_subsets=max_subsets, seed=0)


@pytest.fixture(scope="module")
def sort1_dataset():
    """A stock-suite dataset sized so Level-2 training dominates."""
    n_inputs = 320 if bench_scale() == "large" else 160
    variant = get_benchmark("sort1")
    inputs = variant.benchmark.generate_inputs(n_inputs, variant.variant, seed=0)
    level1 = run_level1(
        variant.benchmark.program,
        inputs,
        config=Level1Config(
            n_clusters=6,
            tuner_generations=3,
            tuner_population=6,
            tuning_neighbors=2,
            seed=0,
        ),
    )
    half = n_inputs // 2
    return level1.dataset, range(half), range(half, n_inputs)


def test_level2_train_speedup_at_4_workers(benchmark, sort1_dataset):
    """Serial vs process-pool wall time of the Level-2 candidate search."""
    dataset, train_rows, test_rows = sort1_dataset
    config = _level2_config()

    serial_start = time.perf_counter()
    serial_result = run_level2(dataset, train_rows, test_rows, config=config)
    serial_seconds = time.perf_counter() - serial_start

    runtime = Runtime.create(executor="process", workers=WORKERS, use_cache=False)
    try:
        parallel_result = benchmark.pedantic(
            run_level2,
            args=(dataset, train_rows, test_rows),
            kwargs={"config": config, "runtime": runtime},
            rounds=1,
            iterations=1,
        )
        parallel_seconds = runtime.telemetry.phases["level2.candidates"].seconds
        fallback = runtime.stats().get("executor_fallback")
    finally:
        runtime.close()

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print(
        f"\n[level2.train] serial={serial_seconds:.3f}s "
        f"process:{WORKERS}={parallel_seconds:.3f}s speedup={speedup:.2f}x "
        f"candidates={len(serial_result.classifiers)} cores={os.cpu_count()}"
    )

    baseline = _baseline()
    if baseline is not None:
        expected = baseline["search"]
        assert serial_result.production.classifier.name == (
            expected["production_classifier"]
        )
        assert serial_result.production.performance_cost == (
            expected["performance_cost"]
        )
        assert len(serial_result.classifiers) == expected["n_candidates"]

    # Parallelism must never change the answer.
    assert fallback is None
    assert (
        parallel_result.production.classifier.name
        == serial_result.production.classifier.name
    )
    assert (
        parallel_result.production.performance_cost
        == serial_result.production.performance_cost
    )
    if (os.cpu_count() or 1) >= WORKERS:
        assert speedup >= 2.0, (
            f"level2.train speedup at {WORKERS} workers regressed to {speedup:.2f}x"
        )


def test_level2_warm_task_cache_skips_retraining(benchmark, sort1_dataset):
    """A warm runtime answers the whole search from the task cache."""
    dataset, train_rows, test_rows = sort1_dataset
    config = _level2_config()
    runtime = Runtime.create(executor="serial")

    cold_start = time.perf_counter()
    cold = run_level2(dataset, train_rows, test_rows, config=config, runtime=runtime)
    cold_seconds = time.perf_counter() - cold_start
    executed_cold = runtime.telemetry.tasks_executed

    warm_start = time.perf_counter()
    warm = benchmark.pedantic(
        run_level2,
        args=(dataset, train_rows, test_rows),
        kwargs={"config": config, "runtime": runtime},
        rounds=1,
        iterations=1,
    )
    warm_seconds = time.perf_counter() - warm_start
    runtime.close()

    print(
        f"\n[level2.cache] cold={cold_seconds:.3f}s warm={warm_seconds:.3f}s "
        f"speedup={cold_seconds / max(warm_seconds, 1e-9):.1f}x"
    )
    # The warm search retrains nothing and must be decisively faster.
    assert runtime.telemetry.tasks_executed == executed_cold
    assert warm.production.classifier.name == cold.production.classifier.name
    assert warm_seconds < cold_seconds
