"""Benchmark: the online-adaptation loop on the scripted drift scenario.

Records the adaptation baseline (``BENCH_adaptation.json`` is the
``repro adapt-replay --scale small --output`` report, digest included).
The replay is fully deterministic, so beyond the performance numbers the
committed digest is a bit-exact regression anchor: any change to the
feature pipeline, drift statistics, retrainer, or serving path that moves
a single served cost shows up as a digest mismatch here.

Invariants asserted at every scale:

* the mixture shift trips the drift monitor at least once,
* at least one validated retrain hot-swaps (and none fail),
* the adapted pass strictly reduces shifted-tail regret vs the frozen
  selector.

Scales with ``REPRO_BENCH_SCALE``: ``small`` replays the 96-request small
scenario; ``large`` replays the 224-request large one.
"""

from __future__ import annotations

import json
import os

from repro.adaptation import replay_scenario, sort_drift_scenario
from repro.runtime import RunCache, Runtime
from repro.runtime.executors import SerialExecutor

from conftest import bench_scale

_BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_adaptation.json")


def _scenario_scale() -> str:
    return "large" if bench_scale() == "large" else "small"


def _replay():
    runtime = Runtime(executor=SerialExecutor(), cache=RunCache())
    try:
        return replay_scenario(
            sort_drift_scenario(_scenario_scale(), seed=0), runtime
        )
    finally:
        runtime.close()


def test_adaptation_replay(benchmark):
    """Drift -> retrain -> hot-swap, measured end to end."""
    report = benchmark.pedantic(_replay, rounds=1, iterations=1)
    print("\n[adaptation] " + json.dumps(
        {
            "scale": _scenario_scale(),
            "digest": report.digest(),
            "regret_frozen_shifted": report.regret_frozen_shifted,
            "regret_adapted_shifted": report.regret_adapted_shifted,
            "shifted_improvement": report.shifted_improvement,
            "drift_trips": report.adapted.drift_trips,
            "swaps": len([s for s in report.adapted.swaps if s["swapped"]]),
        },
        sort_keys=True,
    ))

    assert report.adapted.drift_trips >= 1
    swaps = [s for s in report.adapted.swaps if s["swapped"]]
    assert len(swaps) >= 1
    assert report.adapted.retrains_failed == 0
    assert report.adapted.final_version == 1 + len(swaps)
    assert report.frozen.final_version == 1
    assert report.regret_adapted_shifted < report.regret_frozen_shifted
    assert report.shifted_improvement > 0

    if _scenario_scale() == "small" and os.path.exists(_BASELINE):
        with open(_BASELINE, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        assert report.digest() == baseline["digest"]
