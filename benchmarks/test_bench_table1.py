"""Benchmark: regenerate Table 1 (mean speedups over the static oracle).

One benchmark per Table-1 test.  Each run trains the two-level system on the
configured input budget, evaluates all comparison methods, prints the row the
paper reports, and asserts the qualitative shape (dynamic oracle >= 1,
two-level not worse than the one-level method once feature-extraction cost is
charged).
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.table1 import TABLE1_TESTS, row_from_result


def _run_row(test_name, config):
    result = run_experiment(test_name, config=config)
    return row_from_result(result)


@pytest.mark.parametrize("test_name", TABLE1_TESTS)
def test_table1_row(benchmark, bench_config, test_name):
    """Regenerate one row of Table 1."""
    row = benchmark.pedantic(
        _run_row, args=(test_name, bench_config), rounds=1, iterations=1
    )
    print(
        f"\n[table1:{test_name}] dyn={row.dynamic_oracle:.2f}x "
        f"two-level={row.two_level_with_extraction:.2f}x "
        f"(no-extr {row.two_level_no_extraction:.2f}x) "
        f"one-level={row.one_level_with_extraction:.2f}x "
        f"(no-extr {row.one_level_no_extraction:.2f}x) "
        f"one-level-acc={row.one_level_accuracy:.2%}"
    )
    assert row.dynamic_oracle >= 1.0 - 1e-6
    assert row.two_level_with_extraction >= row.one_level_with_extraction * 0.8
