"""Benchmark: regenerate the paper's in-text ablations.

* Section 3.1: with a small landmark budget, k-means-based landmark selection
  beats uniformly random landmark selection.
* Section 4.2: a large fraction of training inputs change cluster when the
  Level-2 performance-based relabelling is applied (the paper reports 73.4%
  for its k-means example).
"""

from __future__ import annotations

from repro.experiments.ablations import landmark_selection_ablation, relabel_shift
from repro.experiments.runner import run_experiment


def _run(config):
    result = run_experiment("sort2", config=config)
    ablation = landmark_selection_ablation(result, n_landmarks=5, seed=0)
    return result, ablation


def test_landmark_selection_and_relabel_shift(benchmark, bench_config):
    """Regenerate both ablations on the sort2 test."""
    result, ablation = benchmark.pedantic(_run, args=(bench_config,), rounds=1, iterations=1)
    shift = relabel_shift(result)
    print(
        f"\n[ablation] kmeans landmarks: {ablation.kmeans_speedup:.2f}x, "
        f"random landmarks: {ablation.random_speedup:.2f}x "
        f"(degradation {ablation.degradation:.1%}); "
        f"level-2 relabel shift: {shift:.1%}"
    )
    assert ablation.kmeans_speedup > 0 and ablation.random_speedup > 0
    assert shift is not None and 0.0 <= shift <= 1.0
