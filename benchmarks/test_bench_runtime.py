"""Benchmark: the measurement runtime (executors + run cache + streaming).

Records the perf baseline future scale-up PRs are measured against:

* serial vs. process-pool wall time for one small Table-1 row (``sort1``),
* cold-cache vs. warm-cache wall time and the warm run's cache hit rate,
* raw executor throughput on one N x K measurement matrix,
* peak transient memory of a measurement matrix with and without streaming
  chunks (``Runtime.batch_chunk``),
* end-to-end peak memory of a whole experiment with streamed inputs + a
  capped cache vs. the materialized-list path, at two input counts (the
  streamed peak must stop scaling with N),
* the in-memory footprint of one run-cache entry (the number behind
  ``RunCache.DEFAULT_MAX_ENTRIES``).

The warm-cache run must be decisively faster than the cold run (every
program execution is replaced by a cache lookup); the parallel numbers are
recorded for tracking rather than asserted, because speedup depends on the
host's core count and the benchmark's run-time granularity.  The streaming
comparison asserts at ``REPRO_BENCH_SCALE=large`` that chunked dispatch
keeps peak memory decisively below whole-batch dispatch (the results are
asserted bit-identical at every scale).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import tracemalloc

import numpy as np
import pytest

from repro.benchmarks_suite import get_benchmark
from repro.experiments.runner import run_experiment
from repro.runtime import RunCache, Runtime

from conftest import bench_scale, experiment_config

#: Committed small-scale baseline (``BENCH_runtime.json``): bit-exact
#: digests of the deterministic measurement matrix plus the experiment's
#: telemetry counters.  Wall times in it are informational only.
_BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_runtime.json")


def _baseline():
    if bench_scale() != "small" or not os.path.exists(_BASELINE):
        return None
    with open(_BASELINE, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _digest(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


def _config(executor: str, use_cache: bool = True):
    config = experiment_config()
    config.executor = executor
    config.use_cache = use_cache
    return config


@pytest.mark.parametrize("executor", ["serial", "process"])
def test_experiment_wall_time_by_executor(benchmark, executor):
    """Wall time of the sort1 row under each executor (perf baseline)."""
    config = _config(executor)
    result = benchmark.pedantic(
        run_experiment, args=("sort1", config), rounds=1, iterations=1
    )
    counters = result.runtime_stats["telemetry"]["counters"]
    print(
        f"\n[runtime:{executor}] runs={counters.get('runs_requested', 0)} "
        f"executed={counters.get('runs_executed', 0)} "
        f"hits={counters.get('cache_hits', 0)}"
    )
    assert result.runtime_stats["executor"] == executor
    assert "executor_fallback" not in result.runtime_stats
    baseline = _baseline()
    if baseline is not None:
        # Counters and the headline speedup are deterministic and
        # executor-independent; any drift is a behavior change, not noise.
        expected = baseline["experiment"]
        assert result.mean_speedup("two_level") == expected["two_level_speedup"]
        assert counters.get("runs_requested", 0) == expected["runs_requested"]
        assert counters.get("runs_executed", 0) == expected["runs_executed"]
        assert counters.get("cache_hits", 0) == expected["cache_hits"]


def test_warm_cache_speedup(benchmark):
    """A shared cache makes a repeated row dramatically cheaper."""
    config = _config("serial")
    runtime = Runtime(cache=RunCache())

    cold_start = time.perf_counter()
    run_experiment("sort1", config, runtime=runtime)
    cold_seconds = time.perf_counter() - cold_start
    hits_before = runtime.telemetry.cache_hits
    executed_before = runtime.telemetry.runs_executed

    warm_start = time.perf_counter()
    result = benchmark.pedantic(
        run_experiment,
        args=("sort1", config),
        kwargs={"runtime": runtime},
        rounds=1,
        iterations=1,
    )
    warm_seconds = time.perf_counter() - warm_start

    warm_hits = runtime.telemetry.cache_hits - hits_before
    warm_executed = runtime.telemetry.runs_executed - executed_before
    hit_rate = warm_hits / max(1, warm_hits + warm_executed)
    print(
        f"\n[runtime:cache] cold={cold_seconds:.3f}s warm={warm_seconds:.3f}s "
        f"speedup={cold_seconds / max(warm_seconds, 1e-9):.1f}x "
        f"warm-hit-rate={hit_rate:.1%}"
    )
    runtime.close()
    assert result.test_name == "sort1"
    # The repeat run re-executes nothing and must be decisively faster.
    assert warm_executed == 0
    assert hit_rate == 1.0
    assert warm_seconds < cold_seconds


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_measurement_matrix_throughput(benchmark, executor):
    """Raw N x K measurement throughput per executor (no cache)."""
    variant = get_benchmark("sort1")
    program = variant.benchmark.program
    inputs = variant.benchmark.generate_inputs(24, variant.variant, seed=0)
    import random

    rng = random.Random(0)
    configs = [program.default_configuration()] + [
        program.config_space.sample(rng) for _ in range(3)
    ]
    runtime = Runtime.create(executor=executor, use_cache=False)
    measured = benchmark.pedantic(
        runtime.measure, args=(program, configs, inputs), rounds=1, iterations=1
    )
    runtime.close()
    assert measured["times"].shape == (24, 4)
    baseline = _baseline()
    if baseline is not None:
        # Measured times are deterministic work units, so the matrix is a
        # bit-exact, machine-independent anchor for every executor.
        expected = baseline["matrix"]
        assert _digest(measured["times"]) == expected["times_digest"]
        assert _digest(measured["accuracies"]) == expected["accuracies_digest"]


def test_streaming_peak_memory(benchmark):
    """Peak transient memory of one N x K matrix: whole-batch vs chunked.

    Without a cache, whole-batch dispatch holds every pair *and* every
    result (including program outputs) until the batch completes -- O(N x K)
    transient memory.  Streaming with ``batch_chunk`` folds each chunk into
    the output arrays and drops it, so the transient footprint is bounded
    by the chunk.  Results must be bit-identical either way.
    """
    variant = get_benchmark("sort1")
    program = variant.benchmark.program
    n_inputs = 400 if bench_scale() == "large" else 96
    inputs = variant.benchmark.generate_inputs(n_inputs, variant.variant, seed=0)
    import random

    rng = random.Random(0)
    configs = [program.default_configuration()] + [
        program.config_space.sample(rng) for _ in range(3)
    ]

    def measure_with_peak(batch_chunk):
        runtime = Runtime.create(
            executor="serial", use_cache=False, batch_chunk=batch_chunk
        )
        tracemalloc.start()
        try:
            measured = runtime.measure(program, configs, inputs)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
            runtime.close()
        return measured, peak

    full, full_peak = measure_with_peak(None)
    chunked, chunk_peak = measure_with_peak(32)
    np.testing.assert_array_equal(full["times"], chunked["times"])
    np.testing.assert_array_equal(full["accuracies"], chunked["accuracies"])

    # Record the chunked run's wall time as the tracked perf number.
    runtime = Runtime.create(executor="serial", use_cache=False, batch_chunk=32)
    benchmark.pedantic(
        runtime.measure, args=(program, configs, inputs), rounds=1, iterations=1
    )
    runtime.close()

    ratio = full_peak / max(chunk_peak, 1)
    print(
        f"\n[runtime:streaming] n={n_inputs} k={len(configs)} "
        f"full-peak={full_peak / 1e6:.2f}MB chunk-peak={chunk_peak / 1e6:.2f}MB "
        f"ratio={ratio:.1f}x"
    )
    if bench_scale() == "large":
        # At paper-closer sizes the chunked peak must be decisively smaller.
        assert chunk_peak < full_peak * 0.5, (
            f"streaming peak {chunk_peak} not below half of whole-batch "
            f"peak {full_peak}"
        )


def test_streaming_input_peak_memory(benchmark):
    """End-to-end peak memory: streamed inputs + capped cache vs. O(N) lists.

    Runs the whole experiment (input generation, feature extraction,
    autotuning, the measurement matrix, Level 2, evaluation) at two input
    counts, once the legacy way (materialized input list, unbounded cache)
    and once fully streamed (lazy ``InputSource``, ``batch_chunk``,
    ``cache_max_entries``).  The streamed run's peak must be decisively
    below the materialized run's, and -- the point of the input-streaming
    work -- its *growth* with N must be a fraction of the materialized
    growth: what remains is the <F, T, A, E> datatable itself, not the
    input list or the cache.  Results of both paths are bit-identical
    (``tests/runtime/test_streaming.py`` pins that; this benchmark pins the
    memory shape).
    """
    large = bench_scale() == "large"
    n_small, n_large = (120, 360) if large else (48, 120)

    def config(n_inputs, streamed):
        config = experiment_config()
        config.n_inputs = n_inputs
        config.n_clusters = 3
        config.tuner_generations = 2
        config.tuner_population = 4
        config.tuning_neighbors = 2
        config.max_subsets = 8
        config.executor = "serial"
        config.stream_inputs = streamed
        config.batch_chunk = 32 if streamed else None
        config.cache_max_entries = 256 if streamed else None
        return config

    # Warm up imports (numpy lazily pulls submodules on first use) so the
    # traced peaks compare run-scale allocations, not module objects.
    run_experiment("sort1", config(8, streamed=False))

    def traced_peak(n_inputs, streamed):
        tracemalloc.start()
        try:
            run_experiment("sort1", config(n_inputs, streamed))
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    materialized = {n: traced_peak(n, streamed=False) for n in (n_small, n_large)}
    streamed = {n: traced_peak(n, streamed=True) for n in (n_small, n_large)}

    benchmark.pedantic(
        run_experiment,
        args=("sort1", config(n_small, streamed=True)),
        rounds=1,
        iterations=1,
    )

    growth_materialized = materialized[n_large] - materialized[n_small]
    growth_streamed = streamed[n_large] - streamed[n_small]
    print(
        f"\n[runtime:streaming-inputs] n={n_small}->{n_large} "
        f"materialized={materialized[n_small] / 1e6:.2f}->"
        f"{materialized[n_large] / 1e6:.2f}MB "
        f"streamed={streamed[n_small] / 1e6:.2f}->"
        f"{streamed[n_large] / 1e6:.2f}MB "
        f"ratio@{n_large}={materialized[n_large] / max(streamed[n_large], 1):.2f}x"
    )
    if large:
        assert streamed[n_large] < materialized[n_large] * 0.65, (
            f"streamed peak {streamed[n_large]} not decisively below "
            f"materialized peak {materialized[n_large]}"
        )
        assert growth_streamed < growth_materialized * 0.6, (
            f"streamed peak still scales with N: grew {growth_streamed} vs "
            f"materialized growth {growth_materialized}"
        )


def test_run_cache_entry_footprint(benchmark):
    """Traced bytes per in-memory run-cache entry (key + stripped result).

    This is the number ``RunCache.DEFAULT_MAX_ENTRIES`` is derived from:
    ~450 B/entry means the default 100k-entry cap bounds the in-memory
    cache near 45 MB.  The assertion is a loose ceiling so a regression
    that bloats entries (say, accidentally caching outputs) fails loudly.
    """
    from repro.lang.program import RunResult

    n = 20_000

    def fill():
        cache = RunCache()
        tracemalloc.start()
        try:
            for i in range(n):
                cache.put(
                    f"prog:{i:016x}:{i:016x}:{i:016x}",
                    RunResult(output=None, time=float(i), accuracy=1.0),
                    has_output=False,
                )
            current, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return current / n

    per_entry = benchmark.pedantic(fill, rounds=1, iterations=1)
    capped_mb = per_entry * RunCache.DEFAULT_MAX_ENTRIES / 1e6
    print(
        f"\n[runtime:cache-entry] {per_entry:.0f} B/entry, default cap "
        f"{RunCache.DEFAULT_MAX_ENTRIES} entries = {capped_mb:.0f} MB"
    )
    assert per_entry < 1500, f"run-cache entries ballooned to {per_entry:.0f} B"
