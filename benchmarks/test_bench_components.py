"""Micro-benchmarks for the heavier individual components.

Not tied to a specific table/figure; these track the cost of the substrate
pieces (autotuning one landmark, measuring one landmark over an input set,
training the classifier zoo) so regressions in the reproduction's own
performance are visible.
"""

from __future__ import annotations

import numpy as np

from repro.autotuner import EvolutionaryAutotuner
from repro.benchmarks_suite import get_benchmark
from repro.core.level1 import Level1Config, run_level1
from repro.core.level2 import Level2Config, run_level2
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.kmeans import KMeans


def test_bench_autotune_one_landmark(benchmark):
    """Time to autotune one landmark of the sort benchmark."""
    variant = get_benchmark("sort2")
    program = variant.benchmark.program
    inputs = variant.benchmark.generate_inputs(3, "synthetic", seed=0)
    tuner = EvolutionaryAutotuner(
        population_size=6, offspring_per_generation=6, max_generations=4, seed=0
    )
    result = benchmark.pedantic(tuner.tune, args=(program, inputs[:1]), rounds=1, iterations=1)
    assert result.best.mean_time > 0


def test_bench_level1_pipeline(benchmark):
    """Time of the full Level-1 pipeline on a small sort workload."""
    variant = get_benchmark("sort2")
    program = variant.benchmark.program
    inputs = variant.benchmark.generate_inputs(24, "synthetic", seed=1)
    config = Level1Config(n_clusters=4, tuner_generations=2, tuner_population=5, tuning_neighbors=2)
    result = benchmark.pedantic(run_level1, args=(program, inputs, config), rounds=1, iterations=1)
    assert result.dataset.n_landmarks >= 1


def test_bench_level2_pipeline(benchmark):
    """Time of the Level-2 classifier zoo on a pre-built Level-1 dataset."""
    variant = get_benchmark("sort2")
    program = variant.benchmark.program
    inputs = variant.benchmark.generate_inputs(24, "synthetic", seed=2)
    level1 = run_level1(
        program,
        inputs,
        Level1Config(n_clusters=4, tuner_generations=2, tuner_population=5, tuning_neighbors=2),
    )
    result = benchmark.pedantic(
        run_level2,
        args=(level1.dataset, list(range(12)), list(range(12, 24))),
        kwargs={"config": Level2Config(max_subsets=24)},
        rounds=1,
        iterations=1,
    )
    assert result.production is not None


def test_bench_kmeans(benchmark):
    """K-means on a few thousand feature vectors (the Level-1 clustering load)."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(2000, 12))
    result = benchmark(lambda: KMeans(n_clusters=20, random_state=0, n_init=1).fit(X))
    assert result.k == 20


def test_bench_decision_tree(benchmark):
    """Cost-sensitive decision-tree training at Level-2 scale."""
    rng = np.random.default_rng(1)
    X = rng.normal(size=(500, 8))
    y = (X[:, 0] > 0).astype(int) + 2 * (X[:, 1] > 0).astype(int)
    cost = np.abs(rng.normal(size=(4, 4)))
    np.fill_diagonal(cost, 0.0)
    tree = benchmark(
        lambda: DecisionTreeClassifier(max_depth=8, cost_matrix=cost).fit(X, y)
    )
    assert tree.depth() >= 1
