"""Benchmark: the vectorized measurement/feature/scoring hot paths.

``BENCH_vectorized.json`` is the committed record of the vectorization
work: min-of-3 end-to-end walls at ``REPRO_BENCH_SCALE=large`` from the
pre-change tree (``baseline_commit``) and from this tree, the >= 5x
speedup between them, and the bit-identical ``two_level_speedup`` both
trees report (the optimization changes no measured value).  The "before"
profile that motivated the work is ``benchmarks/PROFILE_vectorized.md``.

This file keeps that record honest on every run:

* the committed large-scale speedup must stay >= 5x (the ISSUE's bar);
* the experiment re-run here must reproduce the committed
  ``two_level_speedup`` for the active scale, bit for bit -- a wrong
  value means vectorization bought speed with a different answer;
* serial, thread, and process executors must produce bit-identical
  measurement matrices (the shared-memory transport is exercised by the
  process run);
* the wall time must stay within ``_TOLERANCE``x of the committed wall
  for the active scale -- generous enough for CI machine variation, far
  below the ~6.5x cliff a de-vectorization regression would cause.
"""

from __future__ import annotations

import json
import os
import random
import time

import numpy as np

from repro.benchmarks_suite import get_benchmark
from repro.experiments.runner import run_experiment
from repro.runtime import Runtime

from conftest import bench_scale, experiment_config

_BASELINE = os.path.join(os.path.dirname(__file__), "BENCH_vectorized.json")

#: Allowed slowdown vs. the committed wall before the gate trips.
_TOLERANCE = 3.0


def _baseline():
    if not os.path.exists(_BASELINE):
        return None
    with open(_BASELINE, "r", encoding="utf-8") as handle:
        return json.load(handle)


def test_committed_speedup_meets_bar():
    """The committed large-scale record itself must show >= 5x."""
    baseline = _baseline()
    assert baseline is not None, "BENCH_vectorized.json must be committed"
    large = baseline["large"]
    assert large["speedup"] >= 5.0
    measured = large["baseline_min_seconds"] / large["vectorized_min_seconds"]
    assert measured >= 5.0, f"recorded walls only show {measured:.2f}x"


def test_vectorized_experiment_wall_and_answer(benchmark):
    """End-to-end wall with vectorized paths; answer pinned to the record."""
    config = experiment_config()
    config.use_cache = False

    start = time.perf_counter()
    result = benchmark.pedantic(
        run_experiment, args=("sort1", config), rounds=1, iterations=1
    )
    wall = time.perf_counter() - start

    baseline = _baseline()
    recorded = baseline[bench_scale()] if baseline else None
    print(
        f"\n[vectorized:{bench_scale()}] wall={wall:.3f}s "
        f"two-level={result.mean_speedup('two_level'):.4f}x "
        f"committed-min={recorded['vectorized_min_seconds'] if recorded else '-'}s"
    )
    if recorded is None:
        return
    # Bit-exact answer anchor: speed must never buy a different result.
    assert result.mean_speedup("two_level") == recorded["two_level_speedup"]
    # Regression tolerance gate on the wall itself.
    ceiling = recorded["vectorized_min_seconds"] * _TOLERANCE
    assert wall <= ceiling, (
        f"vectorized wall {wall:.3f}s exceeds {_TOLERANCE}x the committed "
        f"{recorded['vectorized_min_seconds']}s -- hot paths regressed"
    )


def test_executor_matrix_parity(benchmark):
    """Serial, thread, and process matrices are bit-identical.

    The process run takes the shared-memory transport; thread and serial
    take the in-process matrix path.  All three must agree bitwise.
    """
    variant = get_benchmark("sort1")
    program = variant.benchmark.program
    n_inputs = 48 if bench_scale() == "large" else 24
    inputs = variant.benchmark.generate_inputs(n_inputs, variant.variant, seed=0)
    rng = random.Random(0)
    configs = [program.default_configuration()] + [
        program.config_space.sample(rng) for _ in range(3)
    ]

    def measure(executor):
        runtime = Runtime.create(executor=executor, use_cache=False)
        try:
            measured = runtime.measure(program, configs, inputs)
            fallback = runtime.stats().get("executor_fallback")
        finally:
            runtime.close()
        return measured, fallback

    serial, _ = measure("serial")
    threaded, _ = measure("thread")
    process, process_fallback = measure("process")

    runtime = Runtime.create(executor="serial", use_cache=False)
    benchmark.pedantic(
        runtime.measure, args=(program, configs, inputs), rounds=1, iterations=1
    )
    runtime.close()

    assert process_fallback is None
    for other in (threaded, process):
        np.testing.assert_array_equal(serial["times"], other["times"])
        np.testing.assert_array_equal(serial["accuracies"], other["accuracies"])
