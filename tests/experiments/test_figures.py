"""Tests for the Figure 6, 7, and 8 drivers."""

import numpy as np
import pytest

from repro.experiments.figure6 import distribution_from_result, run_figure6
from repro.experiments.figure7 import model_figure7a, model_figure7b
from repro.experiments.figure8 import landmark_sweep
from repro.experiments.runner import ExperimentConfig, run_experiment

TINY = ExperimentConfig(
    n_inputs=26,
    n_clusters=4,
    tuner_generations=2,
    tuner_population=5,
    tuning_neighbors=2,
    max_subsets=8,
    seed=2,
)


@pytest.fixture(scope="module")
def sort_result():
    return run_experiment("sort2", TINY)


class TestFigure6:
    def test_distribution_is_sorted_and_sized(self, sort_result):
        panel = distribution_from_result(sort_result)
        assert panel.test_name == "sort2"
        assert len(panel.speedups) == len(sort_result.test_rows)
        assert np.all(np.diff(panel.speedups) >= 0.0)

    def test_statistics(self, sort_result):
        panel = distribution_from_result(sort_result)
        assert panel.maximum >= panel.mean
        assert 0.0 <= panel.tail_fraction(2.0) <= 1.0
        q25, q50, q75 = panel.quantiles()
        assert q25 <= q50 <= q75

    def test_run_figure6_returns_panel_per_test(self):
        panels = run_figure6(["sort2"], config=TINY)
        assert set(panels) == {"sort2"}


class TestFigure7:
    def test_figure7a_one_curve_per_config_count(self):
        curves = model_figure7a(config_counts=(2, 5, 9), n_points=50)
        assert set(curves) == {2, 5, 9}
        for curve in curves.values():
            assert curve.x.shape == curve.y.shape == (50,)
            assert np.all((curve.y >= 0.0) & (curve.y <= 1.0))

    def test_figure7a_more_configs_lower_loss(self):
        curves = model_figure7a(config_counts=(2, 9), n_points=100)
        assert curves[9].y.max() < curves[2].y.max()

    def test_figure7b_monotone_increasing(self):
        curve = model_figure7b(landmark_counts=range(10, 101, 10))
        assert np.all(np.diff(curve.y) >= 0.0)
        assert curve.y[-1] > 0.95


class TestFigure8:
    def test_landmark_sweep_structure(self, sort_result):
        points = landmark_sweep(sort_result, landmark_counts=[1, 2], n_subsets=5, seed=0)
        assert [p.n_landmarks for p in points] == [1, 2]
        for point in points:
            assert len(point.speedups) == 5
            assert point.minimum <= point.first_quartile <= point.median
            assert point.median <= point.third_quartile <= point.maximum

    def test_single_landmark_speedup_at_most_one(self, sort_result):
        """With one landmark there is nothing to adapt: the restricted dynamic
        oracle equals the restricted static oracle."""
        points = landmark_sweep(sort_result, landmark_counts=[1], n_subsets=4, seed=1)
        assert points[0].maximum == pytest.approx(1.0)

    def test_full_landmark_set_at_least_single(self, sort_result):
        total = sort_result.training.dataset.n_landmarks
        points = landmark_sweep(
            sort_result, landmark_counts=[1, total], n_subsets=6, seed=2
        )
        assert points[1].median >= points[0].median - 1e-9

    def test_classifier_mode_runs(self, sort_result):
        points = landmark_sweep(
            sort_result, landmark_counts=[2], n_subsets=2, mode="classifier", seed=3
        )
        assert len(points) == 1

    def test_unknown_mode_rejected(self, sort_result):
        with pytest.raises(ValueError):
            landmark_sweep(sort_result, landmark_counts=[2], n_subsets=1, mode="bogus")
