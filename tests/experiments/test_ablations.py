"""Tests for the in-text ablation drivers."""

import pytest

from repro.experiments.ablations import (
    LandmarkSelectionAblation,
    landmark_selection_ablation,
    pca_clustering_ablation,
    relabel_shift,
)
from repro.experiments.runner import ExperimentConfig, run_experiment

TINY = ExperimentConfig(
    n_inputs=24,
    n_clusters=4,
    tuner_generations=2,
    tuner_population=5,
    tuning_neighbors=2,
    max_subsets=8,
    seed=3,
)


@pytest.fixture(scope="module")
def sort_result():
    return run_experiment("sort2", TINY)


class TestLandmarkSelectionAblation:
    def test_both_speedups_positive(self, sort_result):
        ablation = landmark_selection_ablation(
            sort_result, n_landmarks=3, tuner_generations=2, tuner_population=5
        )
        assert ablation.kmeans_speedup > 0
        assert ablation.random_speedup > 0

    def test_degradation_definition(self):
        ablation = LandmarkSelectionAblation(kmeans_speedup=2.0, random_speedup=1.5)
        assert ablation.degradation == pytest.approx(0.25)
        assert LandmarkSelectionAblation(0.0, 1.0).degradation == 0.0


class TestPcaClusteringAblation:
    def test_speedups_positive_and_comparable(self, sort_result):
        ablation = pca_clustering_ablation(sort_result, n_components=2, seed=0)
        assert ablation.pca_speedup > 0
        assert ablation.two_level_speedup > 0

    def test_component_count_capped(self, sort_result):
        ablation = pca_clustering_ablation(sort_result, n_components=999, seed=0)
        assert ablation.pca_speedup > 0


class TestRelabelShift:
    def test_reported_and_bounded(self, sort_result):
        shift = relabel_shift(sort_result)
        assert shift is not None
        assert 0.0 <= shift <= 1.0

    def test_level2_records_the_statistic(self, sort_result):
        assert sort_result.training.level2.relabel_shift == relabel_shift(sort_result)
