"""Tests for the Table-1 driver."""

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.table1 import (
    TABLE1_TESTS,
    Table1Row,
    format_table1,
    row_from_result,
    run_table1,
    summarize_headline,
)

TINY = ExperimentConfig(
    n_inputs=24,
    n_clusters=3,
    tuner_generations=2,
    tuner_population=5,
    tuning_neighbors=2,
    max_subsets=8,
    seed=1,
)


@pytest.fixture(scope="module")
def small_rows():
    return run_table1(tests=("sort2", "binpacking"), config=TINY)


class TestTable1:
    def test_paper_test_list(self):
        assert TABLE1_TESTS == (
            "sort1", "sort2", "clustering1", "clustering2",
            "binpacking", "svd", "poisson2d", "helmholtz3d",
        )

    def test_row_from_result_fields(self):
        result = run_experiment("sort2", TINY)
        row = row_from_result(result)
        assert row.test_name == "sort2"
        assert row.dynamic_oracle >= 1.0 - 1e-9
        assert not row.variable_accuracy  # sort has fixed accuracy

    def test_run_table1_returns_requested_rows(self, small_rows):
        assert set(small_rows) == {"sort2", "binpacking"}
        assert all(isinstance(row, Table1Row) for row in small_rows.values())

    def test_variable_accuracy_flag_per_benchmark(self, small_rows):
        assert not small_rows["sort2"].variable_accuracy
        assert small_rows["binpacking"].variable_accuracy

    def test_format_table_contains_all_rows_and_columns(self, small_rows):
        text = format_table1(small_rows)
        assert "sort2" in text and "binpacking" in text
        assert "Dynamic Oracle" in text
        assert "One-level accuracy" in text
        # Fixed-accuracy benchmarks print "-" in the accuracy column.
        assert "-" in text.splitlines()[2]

    def test_cells_render_speedups_with_x_suffix(self, small_rows):
        cells = small_rows["sort2"].as_cells()
        assert cells[0] == "sort2"
        assert all(cell.endswith("x") for cell in cells[1:6])

    def test_headline_summary_keys_and_sanity(self, small_rows):
        summary = summarize_headline(small_rows)
        assert set(summary) == {
            "max_two_level_speedup",
            "max_one_level_slowdown",
            "max_two_over_one_level",
        }
        assert summary["max_two_level_speedup"] > 0
        assert summary["max_two_over_one_level"] >= 1.0 - 1e-9
