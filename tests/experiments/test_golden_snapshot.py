"""Golden regression test: one small Table-1 row pinned to a snapshot.

The full pipeline (input generation, autotuning, Level 1, the parallel
Level-2 search, method evaluation) is deterministic given the seed, so one
small ``sort1`` row's numbers are checked into
``snapshots/sort1_small.json`` and every run -- serial or threaded -- must
reproduce them.  This is the whole-system complement of the unit-level
determinism tests: any unintended behaviour change anywhere in the
pipeline moves at least one pinned number.

Regenerate the snapshot after an *intended* behaviour change with::

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/experiments/test_golden_snapshot.py
"""

import json
import os
import pathlib

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment

SNAPSHOT_PATH = pathlib.Path(__file__).parent / "snapshots" / "sort1_small.json"

#: Methods whose numbers are pinned.
METHODS = ("static_oracle", "dynamic_oracle", "two_level", "one_level")

#: Pinned floats are rounded to this many digits and compared with a matching
#: tolerance, absorbing harmless last-bit drift across numpy builds while
#: still catching any real behaviour change.
DIGITS = 9


def golden_config(executor: str) -> ExperimentConfig:
    return ExperimentConfig(
        n_inputs=32,
        n_clusters=4,
        tuner_generations=2,
        tuner_population=4,
        tuning_neighbors=2,
        max_subsets=8,
        seed=0,
        executor=executor,
        workers=2,
    )


def summarize(result) -> dict:
    training = result.training
    two_level_times = result.methods["two_level"].times
    return {
        "test": result.test_name,
        "n_landmarks": len(training.landmarks),
        "production_classifier": training.production_classifier.name,
        "relabel_shift": round(training.level2.relabel_shift, DIGITS),
        "mean_speedups": {
            method: round(result.mean_speedup(method), DIGITS) for method in METHODS
        },
        "satisfaction": {
            method: round(result.satisfaction(method), DIGITS) for method in METHODS
        },
        "two_level_times": [round(float(t), DIGITS) for t in two_level_times],
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    if not SNAPSHOT_PATH.exists() and not os.environ.get("REPRO_UPDATE_GOLDEN"):
        pytest.fail(f"missing golden snapshot {SNAPSHOT_PATH}")
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        summary = summarize(run_experiment("sort1", golden_config("serial")))
        SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
        SNAPSHOT_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    return json.loads(SNAPSHOT_PATH.read_text())


@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_pipeline_output_matches_snapshot(golden, executor):
    result = run_experiment("sort1", golden_config(executor))
    assert result.runtime_stats["executor"] == executor
    summary = summarize(result)

    assert summary["test"] == golden["test"]
    assert summary["n_landmarks"] == golden["n_landmarks"]
    assert summary["production_classifier"] == golden["production_classifier"]
    assert summary["relabel_shift"] == pytest.approx(
        golden["relabel_shift"], abs=10**-DIGITS
    )
    for method in METHODS:
        assert summary["mean_speedups"][method] == pytest.approx(
            golden["mean_speedups"][method], abs=10**-DIGITS
        ), f"mean speedup drifted for {method}"
        assert summary["satisfaction"][method] == pytest.approx(
            golden["satisfaction"][method], abs=10**-DIGITS
        ), f"satisfaction drifted for {method}"
    assert summary["two_level_times"] == pytest.approx(
        golden["two_level_times"], abs=10**-DIGITS
    )
