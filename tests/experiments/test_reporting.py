"""Tests for plain-text reporting helpers."""

import pytest

from repro.experiments.reporting import (
    ascii_sparkline,
    format_csv,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"], [["a", "1"], ["longer", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[2:])
        assert "longer" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_non_string_cells_coerced(self):
        text = format_table(["x"], [[1.5], [2]])
        assert "1.5" in text and "2" in text


class TestCsvAndSeries:
    def test_csv_shape(self):
        text = format_csv(["a", "b"], [[1, 2], [3, 4]])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[2] == "3,4"

    def test_series(self):
        text = format_series([1, 2], [10.0, 20.0], x_label="k", y_label="speedup")
        assert "k" in text and "speedup" in text
        assert "20" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series([1, 2], [1.0])


class TestSparkline:
    def test_length_capped(self):
        line = ascii_sparkline(list(range(1000)), width=40)
        assert len(line) == 40

    def test_constant_series(self):
        line = ascii_sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3

    def test_empty_series(self):
        assert ascii_sparkline([]) == ""
