"""Tests for the shared experiment runner."""

import numpy as np
import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment

#: A deliberately tiny configuration so experiment tests stay fast.
TINY = ExperimentConfig(
    n_inputs=28,
    n_clusters=4,
    tuner_generations=2,
    tuner_population=5,
    tuning_neighbors=2,
    max_subsets=12,
    seed=0,
)


@pytest.fixture(scope="module")
def sort_result():
    return run_experiment("sort2", TINY)


class TestRunExperiment:
    def test_all_methods_present(self, sort_result):
        assert set(sort_result.methods) == {
            "static_oracle",
            "dynamic_oracle",
            "two_level",
            "one_level",
        }

    def test_per_input_series_aligned_with_test_rows(self, sort_result):
        n_test = len(sort_result.test_rows)
        for outcome in sort_result.methods.values():
            assert outcome.times.shape == (n_test,)
            assert outcome.times_no_extraction.shape == (n_test,)

    def test_static_oracle_speedup_is_one(self, sort_result):
        assert sort_result.mean_speedup("static_oracle") == pytest.approx(1.0)

    def test_dynamic_oracle_dominates_every_method(self, sort_result):
        dynamic = sort_result.methods["dynamic_oracle"].times
        for name in ("static_oracle", "two_level", "one_level"):
            others = sort_result.methods[name].times_no_extraction
            assert np.all(dynamic <= others + 1e-9)

    def test_dynamic_oracle_mean_speedup_at_least_one(self, sort_result):
        assert sort_result.mean_speedup("dynamic_oracle") >= 1.0 - 1e-9

    def test_extraction_cost_only_hurts(self, sort_result):
        for name in ("two_level", "one_level"):
            with_cost = sort_result.mean_speedup(name, with_extraction=True)
            without_cost = sort_result.mean_speedup(name, with_extraction=False)
            assert with_cost <= without_cost + 1e-9

    def test_satisfaction_in_unit_interval(self, sort_result):
        for name in sort_result.methods:
            assert 0.0 <= sort_result.satisfaction(name) <= 1.0

    def test_sort_satisfaction_is_trivially_full(self, sort_result):
        """Sort is the fixed-accuracy benchmark: everything is accurate."""
        assert sort_result.satisfaction("two_level") == 1.0
        assert sort_result.satisfaction("one_level") == 1.0

    def test_unknown_test_name_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("bogus", TINY)

    def test_config_materialization(self):
        config = ExperimentConfig(n_clusters=7, tuner_generations=3, max_subsets=5)
        assert config.level1().n_clusters == 7
        assert config.level1().tuner_generations == 3
        assert config.level2().max_subsets == 5


class TestMemoryKnobDefaults:
    """The streaming/cap knobs and their environment overrides."""

    def test_defaults(self, monkeypatch):
        from repro.runtime import RunCache

        monkeypatch.delenv("REPRO_CACHE_MAX_ENTRIES", raising=False)
        monkeypatch.delenv("REPRO_STREAM_INPUTS", raising=False)
        config = ExperimentConfig()
        assert config.stream_inputs is True
        assert config.cache_max_entries == RunCache.DEFAULT_MAX_ENTRIES
        runtime = config.make_runtime()
        try:
            assert runtime.cache.max_entries == RunCache.DEFAULT_MAX_ENTRIES
        finally:
            runtime.close()

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "512")
        monkeypatch.setenv("REPRO_STREAM_INPUTS", "0")
        config = ExperimentConfig()
        assert config.cache_max_entries == 512
        assert config.stream_inputs is False

    def test_env_cap_zero_means_unbounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "0")
        assert ExperimentConfig().cache_max_entries is None

    def test_env_cap_malformed_warns_and_defaults(self, monkeypatch):
        from repro.runtime import RunCache

        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "lots")
        with pytest.warns(UserWarning, match="REPRO_CACHE_MAX_ENTRIES"):
            config = ExperimentConfig()
        assert config.cache_max_entries == RunCache.DEFAULT_MAX_ENTRIES
