"""Tests for the feedback log: bounds, thread safety, trace round-trip."""

import json
import threading

import numpy as np
import pytest

from repro.adaptation import FeedbackLog, FeedbackRecord


def make_record(i: int, **overrides) -> FeedbackRecord:
    fields = dict(
        features=(float(i), float(i) * 2.0, 0.5),
        predicted_label=i % 3,
        chosen_landmark=i % 3,
        observed_cost=100.0 + i,
        observed_accuracy=1.0,
    )
    fields.update(overrides)
    return FeedbackRecord(**fields)


class TestFeedbackRecord:
    def test_json_round_trip(self):
        record = make_record(7, input_spec={"encoding": "index", "index": 7, "test": "sort2"})
        restored = FeedbackRecord.from_json(record.to_json())
        assert restored == record

    def test_json_round_trip_without_spec(self):
        record = make_record(0)
        assert "input_spec" not in record.to_json()
        assert FeedbackRecord.from_json(record.to_json()) == record

    def test_malformed_record_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            FeedbackRecord.from_json({"features": [1.0]})

    def test_materialize_index_spec_matches_source(self):
        from repro.benchmarks_suite import get_benchmark

        variant = get_benchmark("sort2")
        expected = variant.benchmark.input_source(6, variant.variant, seed=3).materialize(5)
        record = make_record(
            5, input_spec={"encoding": "index", "index": 5, "seed": 3, "test": "sort2"}
        )
        np.testing.assert_array_equal(record.materialize_input(), expected)

    def test_materialize_without_spec_raises(self):
        with pytest.raises(ValueError, match="no input spec"):
            make_record(0).materialize_input()

    def test_materialize_unknown_encoding_raises(self):
        record = make_record(0, input_spec={"encoding": "carrier-pigeon"})
        with pytest.raises(ValueError, match="unknown feedback input encoding"):
            record.materialize_input()


class TestFeedbackLog:
    def test_append_and_order(self):
        log = FeedbackLog(capacity=10)
        for i in range(5):
            log.append(make_record(i))
        assert len(log) == 5
        assert [r.predicted_label for r in log] == [0, 1, 2, 0, 1]

    def test_capacity_evicts_oldest(self):
        log = FeedbackLog(capacity=3)
        for i in range(8):
            log.append(make_record(i))
        assert len(log) == 3
        assert log.evicted == 5
        assert log.total_appended == 8
        assert [r.observed_cost for r in log.records()] == [105.0, 106.0, 107.0]

    def test_window_returns_most_recent(self):
        log = FeedbackLog(capacity=10)
        for i in range(6):
            log.append(make_record(i))
        window = log.window(2)
        assert [r.observed_cost for r in window] == [104.0, 105.0]
        # A window wider than the log returns everything retained.
        assert len(log.window(100)) == 6

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            FeedbackLog(capacity=0)
        with pytest.raises(ValueError):
            FeedbackLog().window(0)

    def test_feature_matrix_shape(self):
        log = FeedbackLog()
        for i in range(4):
            log.append(make_record(i))
        matrix = log.feature_matrix()
        assert matrix.shape == (4, 3)
        np.testing.assert_allclose(matrix[2], [2.0, 4.0, 0.5])
        assert FeedbackLog().feature_matrix().shape == (0, 0)

    def test_concurrent_appends_lose_nothing(self):
        log = FeedbackLog(capacity=10_000)
        n_threads, per_thread = 8, 250
        barrier = threading.Barrier(n_threads)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                log.append(make_record(worker * per_thread + i))

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(log) == n_threads * per_thread
        assert log.total_appended == n_threads * per_thread
        assert log.evicted == 0
        # Every record made it in exactly once.
        costs = sorted(r.observed_cost for r in log.records())
        assert costs == [100.0 + i for i in range(n_threads * per_thread)]


class TestTracePersistence:
    def test_save_and_load_round_trip(self, tmp_path):
        log = FeedbackLog(capacity=10)
        for i in range(5):
            log.append(make_record(i, input_spec={"encoding": "index", "index": i, "test": "sort2"}))
        path = str(tmp_path / "trace.jsonl")
        assert log.save_trace(path) == 5
        restored = FeedbackLog.load_trace(path)
        assert restored.records() == log.records()

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        record = make_record(1)
        path.write_text(json.dumps(record.to_json()) + "\n\n\n")
        restored = FeedbackLog.load_trace(str(path))
        assert restored.records() == [record]

    def test_load_reports_bad_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(make_record(0).to_json()) + "\nnot-json\n")
        with pytest.raises(ValueError, match=r"trace\.jsonl:2"):
            FeedbackLog.load_trace(str(path))

    def test_load_respects_capacity(self, tmp_path):
        log = FeedbackLog()
        for i in range(6):
            log.append(make_record(i))
        path = str(tmp_path / "trace.jsonl")
        log.save_trace(path)
        restored = FeedbackLog.load_trace(path, capacity=2)
        assert len(restored) == 2
        assert restored.evicted == 4
