"""Fault injection for the adaptation loop.

A retrain that raises, or that produces a worse model, must leave the old
model serving, count the failure in telemetry, and never publish partial
state -- the registry entry after a failed retrain is the *same immutable
snapshot* that was serving before it.
"""

import numpy as np
import pytest

from repro.adaptation import RetrainConfig, Retrainer
from repro.adaptation import retrainer as retrainer_module
from repro.core.classifiers import (
    CandidateClassifier,
    ClassifierDescription,
    DatasetPredictions,
)
from repro.runtime import RunCache, Runtime
from repro.runtime.executors import SerialExecutor
from repro.serving.registry import ModelRegistry


class WorstLandmarkClassifier(CandidateClassifier):
    """Adversarial candidate: always picks the slowest landmark per row."""

    def __init__(self) -> None:
        super().__init__(
            ClassifierDescription(
                name="worst_landmark", method="adversarial", feature_names=()
            )
        )

    def fit(self, dataset, rows, labels):
        return self

    def predict_rows(self, dataset, rows):
        rows = np.asarray(rows, dtype=int)
        labels = np.argmax(dataset.times[rows], axis=1)
        return DatasetPredictions(
            labels=labels, extraction_costs=np.zeros(rows.size)
        )

    def classify_input(self, program_input, features):
        return 0, 0.0


class _FakeProduction:
    def __init__(self, classifier):
        self.classifier = classifier


class _FakeLevel2Result:
    def __init__(self, classifier):
        self.production = _FakeProduction(classifier)


@pytest.fixture()
def adaptation_setup(sort_training):
    """A registry serving the session-trained sort model, plus a window."""
    runtime = Runtime(executor=SerialExecutor(), cache=RunCache())
    registry = ModelRegistry()
    training = sort_training["training"]
    variant = sort_training["variant"]
    registry.publish("sort2", training.deployed)
    window = variant.benchmark.generate_inputs(12, variant.variant, seed=99)
    retrainer = Retrainer(
        variant.benchmark.program,
        registry,
        "sort2",
        config=RetrainConfig(
            n_clusters=2, tuner_generations=1, tuner_population=4, max_subsets=8
        ),
        runtime=runtime,
    )
    try:
        yield {
            "runtime": runtime,
            "registry": registry,
            "retrainer": retrainer,
            "window": window,
        }
    finally:
        runtime.close()


def counters(runtime: Runtime) -> dict:
    return runtime.stats()["telemetry"]["counters"]


class TestRetrainRaises:
    def test_pipeline_error_keeps_old_model(self, adaptation_setup, monkeypatch):
        registry = adaptation_setup["registry"]
        before = registry.get("sort2")

        def explode(*args, **kwargs):
            raise RuntimeError("tuner crashed mid-flight")

        monkeypatch.setattr(retrainer_module, "create_landmarks", explode)
        outcome = adaptation_setup["retrainer"].retrain_on_inputs(
            adaptation_setup["window"]
        )
        assert not outcome.swapped
        assert outcome.reason == "failed: tuner crashed mid-flight"
        after = registry.get("sort2")
        assert after is before  # the very same immutable snapshot
        assert after.version == 1
        stats = counters(adaptation_setup["runtime"])
        assert stats["adapt_retrain_failures"] == 1
        assert "adapt_swaps" not in stats

    def test_too_small_window_is_contained(self, adaptation_setup):
        registry = adaptation_setup["registry"]
        before = registry.get("sort2")
        outcome = adaptation_setup["retrainer"].retrain_on_inputs(
            adaptation_setup["window"][:2]
        )
        assert not outcome.swapped
        assert outcome.reason.startswith("failed:")
        assert "at least 4" in outcome.reason
        assert registry.get("sort2") is before
        assert counters(adaptation_setup["runtime"])["adapt_retrain_failures"] == 1


class TestWorseModelRejected:
    def test_worse_candidate_never_swaps(self, adaptation_setup, monkeypatch):
        registry = adaptation_setup["registry"]
        before = registry.get("sort2")

        def worse_level2(dataset, train_rows, test_rows, **kwargs):
            return _FakeLevel2Result(WorstLandmarkClassifier())

        monkeypatch.setattr(retrainer_module, "run_level2", worse_level2)
        outcome = adaptation_setup["retrainer"].retrain_on_inputs(
            adaptation_setup["window"]
        )
        assert not outcome.swapped
        assert outcome.reason == "rejected"
        # The validation guard measured the adversary as strictly worse.
        assert outcome.new_cost > outcome.old_cost
        assert registry.get("sort2") is before
        assert registry.get("sort2").version == 1
        stats = counters(adaptation_setup["runtime"])
        assert stats["adapt_retrains_rejected"] == 1
        assert "adapt_swaps" not in stats
        assert "adapt_retrain_failures" not in stats

    def test_equal_candidate_is_rejected_too(self, adaptation_setup, monkeypatch):
        # The incumbent resubmitted as "new" scores identically -- and a
        # swap needs strict improvement, so nothing is published.
        registry = adaptation_setup["registry"]
        incumbent = registry.get("sort2").deployed.classifier

        def same_level2(dataset, train_rows, test_rows, **kwargs):
            return _FakeLevel2Result(incumbent)

        monkeypatch.setattr(retrainer_module, "run_level2", same_level2)
        outcome = adaptation_setup["retrainer"].retrain_on_inputs(
            adaptation_setup["window"]
        )
        assert not outcome.swapped
        assert outcome.reason == "rejected"
        assert outcome.new_cost == outcome.old_cost
        assert registry.get("sort2").version == 1


class TestSuccessfulSwapBookkeeping:
    def test_swap_counts_and_versions(self, adaptation_setup):
        registry = adaptation_setup["registry"]
        outcome = adaptation_setup["retrainer"].retrain_on_inputs(
            adaptation_setup["window"]
        )
        stats = counters(adaptation_setup["runtime"])
        assert stats["adapt_retrains"] == 1
        if outcome.swapped:
            assert registry.get("sort2").version == 2
            assert stats["adapt_swaps"] == 1
            assert outcome.new_cost < outcome.old_cost
        else:
            # A genuine retrain may legitimately fail to beat the incumbent
            # on an in-distribution window; the invariant is no partial swap.
            assert registry.get("sort2").version == 1
            assert outcome.reason == "rejected"
            assert stats["adapt_retrains_rejected"] == 1
