"""Tests for the drift monitor: thresholds, patience, cooldown."""

import numpy as np
import pytest

from repro.adaptation import DriftConfig, DriftMonitor


def reference_matrix(n: int = 200, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.column_stack(
        [rng.normal(0.0, 1.0, size=n), rng.uniform(0.0, 10.0, size=n)]
    )


def same_population(n: int = 64, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.column_stack(
        [rng.normal(0.0, 1.0, size=n), rng.uniform(0.0, 10.0, size=n)]
    )


def shifted_population(n: int = 64, seed: int = 2) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.column_stack(
        [rng.normal(6.0, 1.0, size=n), rng.uniform(50.0, 60.0, size=n)]
    )


def make_monitor(**overrides) -> DriftMonitor:
    defaults = dict(window=64, min_window=16, patience=2, cooldown=3)
    defaults.update(overrides)
    return DriftMonitor(
        feature_names=["a", "b"],
        reference=reference_matrix(),
        config=DriftConfig(**defaults),
    )


class TestDriftConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"window": 0},
            {"min_window": 0},
            {"min_window": 100, "window": 50},
            {"patience": 0},
            {"cooldown": -1},
            {"min_drifted_features": 0},
        ],
    )
    def test_bad_knobs_raise(self, overrides):
        defaults = dict(window=64, min_window=16)
        defaults.update(overrides)
        with pytest.raises(ValueError):
            DriftConfig(**defaults)


class TestDriftMonitor:
    def test_same_population_stays_quiet(self):
        monitor = make_monitor()
        for round_seed in range(5):
            report = monitor.check(same_population(seed=round_seed + 10))
            assert not report.drifted
            assert not report.window_drifted
        assert monitor.trips == 0

    def test_shift_trips_after_patience(self):
        monitor = make_monitor(patience=2)
        first = monitor.check(shifted_population())
        assert first.window_drifted and not first.drifted
        assert first.consecutive == 1
        second = monitor.check(shifted_population(seed=3))
        assert second.drifted
        assert second.consecutive == 2
        assert monitor.trips == 1
        assert set(second.drifted_features) == {"a", "b"}

    def test_quiet_window_resets_patience(self):
        monitor = make_monitor(patience=2)
        assert not monitor.check(shifted_population()).drifted
        assert not monitor.check(same_population()).window_drifted
        # Patience was reset; a single drifted window is not enough again.
        assert not monitor.check(shifted_population(seed=4)).drifted

    def test_thin_window_is_insufficient_and_keeps_patience(self):
        monitor = make_monitor(patience=2, min_window=16)
        monitor.check(shifted_population())
        thin = monitor.check(shifted_population(n=4))
        assert thin.insufficient and not thin.drifted
        assert thin.consecutive == 1  # untouched
        assert monitor.check(shifted_population(seed=5)).drifted

    def test_cooldown_absorbs_checks_after_retrain(self):
        monitor = make_monitor(patience=1, cooldown=2)
        assert monitor.check(shifted_population()).drifted
        monitor.notify_retrained()
        for seed in (6, 7):
            report = monitor.check(shifted_population(seed=seed))
            assert report.cooling_down
            assert not report.drifted
            assert report.window_drifted  # the raw verdict still reported
        # Cooldown over: the next drifted window trips again (patience 1).
        assert monitor.check(shifted_population(seed=8)).drifted

    def test_notify_retrained_swaps_reference(self):
        monitor = make_monitor(patience=1)
        shifted = shifted_population(n=200)
        assert monitor.check(shifted_population(seed=9)).drifted
        monitor.notify_retrained(shifted)
        # Burn the cooldown with thin windows (insufficient, still counted).
        for _ in range(monitor.config.cooldown):
            monitor.check(shifted_population(n=4))
        # The shifted population is now the reference: no drift reported.
        report = monitor.check(shifted_population(seed=10))
        assert not report.window_drifted

    def test_min_drifted_features_gates_single_feature_noise(self):
        monitor = make_monitor(min_drifted_features=2, patience=1)
        rng = np.random.default_rng(11)
        # Feature "a" drifts hard; feature "b" stays put.
        live = np.column_stack(
            [rng.normal(6.0, 1.0, size=64), rng.uniform(0.0, 10.0, size=64)]
        )
        report = monitor.check(live)
        assert report.drifted_features == ["a"]
        assert not report.window_drifted

    def test_column_mismatch_raises(self):
        monitor = make_monitor()
        with pytest.raises(ValueError, match="columns"):
            monitor.check(np.zeros((32, 3)))
        with pytest.raises(ValueError, match="columns"):
            monitor.set_reference(np.zeros((10, 5)))

    def test_empty_reference_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            DriftMonitor(["a"], np.zeros((0, 1)))

    def test_deterministic_in_window_sequence(self):
        def run() -> list:
            monitor = make_monitor()
            outcomes = []
            for seed in range(6):
                window = shifted_population(seed=seed) if seed >= 3 else same_population(seed=seed)
                report = monitor.check(window)
                outcomes.append(
                    (report.drifted, report.window_drifted, report.consecutive,
                     tuple((f.feature, f.psi, f.ks) for f in report.features))
                )
            return outcomes

        assert run() == run()
