"""The serving layer's feedback hook: every execution appends one record.

The adaptation loop is only as good as its signal; these tests pin the
contract between :class:`SelectorServer` and :class:`FeedbackLog` -- one
record per executed request, carrying the full feature vector, the label
actually served, the measured cost, and a self-contained input spec that
rematerializes the exact input offline.
"""

import numpy as np
import pytest

from repro.adaptation import FeedbackLog
from repro.benchmarks_suite import get_benchmark
from repro.serving import SelectorServer, ServerThread, ServingClient, protocol

# Everything here touches real sockets; connect races retry inside
# ServingClient's RetryPolicy (see repro.resilience.retry).

@pytest.fixture()
def feedback_server(sort_training):
    """A running server with a feedback log attached, plus the log."""
    log = FeedbackLog(capacity=64)
    server = SelectorServer(feedback=log)
    server.publish("sort2", sort_training["training"].deployed)
    with ServerThread(server):
        yield server, log


def connect(server):
    host, port = server.address
    return ServingClient(host, port)


class TestServerFeedback:
    def test_index_request_appends_a_self_contained_record(
        self, feedback_server
    ):
        server, log = feedback_server
        with connect(server) as client:
            response = client.run(
                "sort2", protocol.index_input(3, seed=999)
            )
        assert response["type"] == "result"
        assert len(log) == 1
        record = log.records()[0]

        # The record mirrors the served response exactly.
        assert record.predicted_label == response["landmark"]
        assert record.chosen_landmark == response["landmark"]
        assert record.observed_cost == response["total_time"]
        assert record.observed_accuracy == response["accuracy"]

        # The wire spec was enriched with the test name and seed, so the
        # stored trace rematerializes the input with no server context.
        assert record.input_spec["encoding"] == "index"
        assert record.input_spec["test"] == "sort2"
        assert record.input_spec["seed"] == 999
        variant = get_benchmark("sort2")
        expected = variant.benchmark.input_source(
            4, variant.variant, seed=999
        ).materialize(3)
        np.testing.assert_array_equal(record.materialize_input(), expected)

        # The features are the full vector of the input the server ran.
        program = variant.benchmark.program
        values, _ = program.features.extract_vector(expected)
        assert record.features == tuple(float(v) for v in values)

    def test_pickle_request_round_trips_through_the_record(
        self, feedback_server
    ):
        server, log = feedback_server
        data = [5, 3, 1, 2, 4, 0, 6]
        with connect(server) as client:
            response = client.run("sort2", protocol.pickle_input(data))
        assert response["type"] == "result"
        record = log.records()[0]
        assert record.input_spec["encoding"] == "pickle"
        assert list(record.materialize_input()) == data

    def test_every_execution_appends_even_on_cache_recall(
        self, feedback_server
    ):
        server, log = feedback_server
        with connect(server) as client:
            for _ in range(3):
                response = client.run("sort2", protocol.index_input(1))
                assert response["type"] == "result"
        # Sequential duplicates recall the run cache but still each carry
        # a training signal: three requests, three records.
        assert log.total_appended == 3
        counters = server.runtime.stats()["telemetry"]["counters"]
        assert counters["serve_feedback_records"] == 3
        assert counters["serve_feedback_records"] == counters["serve_executions"]

    def test_no_log_means_no_feedback_counter(self, sort_training):
        server = SelectorServer()
        server.publish("sort2", sort_training["training"].deployed)
        with ServerThread(server):
            with connect(server) as client:
                assert client.run("sort2", protocol.index_input(0))[
                    "type"
                ] == "result"
        counters = server.runtime.stats()["telemetry"]["counters"]
        assert "serve_feedback_records" not in counters
