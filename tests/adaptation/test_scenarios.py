"""End-to-end drift-scenario tests: the adaptation loop's acceptance bar.

The scripted ``sort-shift`` scenario must, deterministically: stay quiet
through the steady phase, trip the monitor after the mixture shift,
retrain and hot-swap a validated model, and strictly reduce the shifted
tail's selector regret versus the frozen (no-adaptation) baseline -- with
the whole replay bit-identical across the serial and thread executors.
"""

import numpy as np
import pytest

from repro.adaptation import (
    MixtureInputSource,
    MixturePhase,
    SCENARIOS,
    get_scenario,
    replay_scenario,
    sort_drift_scenario,
)
from repro.adaptation.scenarios import SORT_FAMILIES
from repro.runtime import RunCache, Runtime
from repro.runtime.executors import SerialExecutor, ThreadExecutor


class TestMixtureInputSource:
    def make_source(self, seed=0, name="mix"):
        phases = [
            MixturePhase(8, {"uniform_random": 1.0}),
            MixturePhase(12, {"heavy_duplicates": 0.7, "reverse_sorted": 0.3}),
        ]
        return MixtureInputSource(phases, SORT_FAMILIES, seed=seed, name=name)

    def test_length_and_phase_bounds(self):
        source = self.make_source()
        assert len(source) == 20
        assert source.phase_bounds() == [(0, 8), (8, 20)]
        assert source.phase_of(0) == 0
        assert source.phase_of(7) == 0
        assert source.phase_of(8) == 1
        assert source.phase_of(19) == 1
        with pytest.raises(IndexError):
            source.phase_of(20)

    def test_materialization_is_pure(self):
        source = self.make_source()
        for index in (0, 7, 8, 19):
            np.testing.assert_array_equal(
                source.materialize(index), self.make_source().materialize(index)
            )

    def test_access_order_does_not_matter(self):
        forward = [self.make_source().materialize(i) for i in range(20)]
        backward = [self.make_source().materialize(i) for i in reversed(range(20))]
        for a, b in zip(forward, reversed(backward)):
            np.testing.assert_array_equal(a, b)

    def test_name_and_seed_namespace_streams(self):
        base = self.make_source().materialize(3)
        other_seed = self.make_source(seed=1).materialize(3)
        other_name = self.make_source(name="other").materialize(3)
        assert not (
            base.shape == other_seed.shape and np.array_equal(base, other_seed)
        )
        assert not (
            base.shape == other_name.shape and np.array_equal(base, other_name)
        )

    def test_single_family_phase_draws_that_family(self):
        source = MixtureInputSource(
            [MixturePhase(6, {"sorted_ascending": 1.0})], SORT_FAMILIES, seed=0
        )
        for i in range(6):
            data = source.materialize(i)
            assert np.all(np.diff(data) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MixtureInputSource([], SORT_FAMILIES)
        with pytest.raises(KeyError, match="unknown families"):
            MixtureInputSource(
                [MixturePhase(2, {"nonexistent": 1.0})], SORT_FAMILIES
            )
        with pytest.raises(ValueError):
            MixturePhase(2, {})
        with pytest.raises(ValueError):
            MixturePhase(2, {"uniform_random": -1.0})
        with pytest.raises(ValueError):
            MixturePhase(-1, {"uniform_random": 1.0})


class TestScenarioRegistry:
    def test_sort_shift_registered(self):
        assert "sort-shift" in SCENARIOS
        scenario = get_scenario("sort-shift", scale="small", seed=7)
        assert scenario.test == "sort2"
        assert scenario.seed == 7

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")
        with pytest.raises(KeyError, match="unknown scale"):
            sort_drift_scenario("galactic")

    def test_scales_grow(self):
        small = sort_drift_scenario("small")
        large = sort_drift_scenario("large")
        assert len(large.serving_source()) > len(small.serving_source())
        assert large.n_training > small.n_training


@pytest.fixture(scope="module")
def small_replay():
    """One serial replay of the small sort-shift scenario, shared below."""
    runtime = Runtime(executor=SerialExecutor(), cache=RunCache())
    try:
        return replay_scenario(sort_drift_scenario("small", seed=0), runtime)
    finally:
        runtime.close()


class TestSortShiftReplay:
    def test_steady_phase_stays_quiet(self, small_replay):
        steady_end = small_replay.phase_bounds[0][1]
        for event in small_replay.adapted.drift_events:
            if event["at"] <= steady_end:
                assert not event["drifted"]

    def test_shift_trips_monitor(self, small_replay):
        assert small_replay.adapted.drift_trips >= 1
        shifted_start = small_replay.phase_bounds[-1][0]
        trip_points = [
            e["at"] for e in small_replay.adapted.drift_events if e["drifted"]
        ]
        assert trip_points and all(at > shifted_start for at in trip_points)

    def test_retrain_hot_swaps_validated_model(self, small_replay):
        swaps = [s for s in small_replay.adapted.swaps if s["swapped"]]
        assert len(swaps) >= 1
        for swap in swaps:
            assert swap["new_cost"] < swap["old_cost"]
            assert swap["landmarks_after"] >= swap["landmarks_before"]
        assert small_replay.adapted.final_version == 1 + len(swaps)
        assert small_replay.adapted.retrains_failed == 0

    def test_frozen_pass_never_adapts(self, small_replay):
        assert small_replay.frozen.swaps == []
        assert small_replay.frozen.final_version == 1
        assert small_replay.frozen.drift_checks == 0

    def test_adaptation_strictly_reduces_shifted_regret(self, small_replay):
        assert small_replay.regret_adapted_shifted < small_replay.regret_frozen_shifted
        assert small_replay.shifted_improvement > 0
        # Regret against the hindsight-best fixed landmark cannot go negative
        # for the frozen selector on its own training mixture's landmarks.
        assert small_replay.regret_frozen_shifted > 0

    def test_feedback_log_covers_the_stream(self, small_replay):
        assert small_replay.adapted.feedback.total_appended == small_replay.n_requests

    def test_report_json_is_self_consistent(self, small_replay):
        payload = small_replay.to_json()
        assert payload["regret"]["shifted_improvement"] == pytest.approx(
            payload["regret"]["frozen_shifted"] - payload["regret"]["adapted_shifted"]
        )
        assert len(payload["adapted"]["served_costs"]) == payload["n_requests"]
        assert payload["adapted"]["served_cost_total"] == pytest.approx(
            sum(payload["adapted"]["served_costs"])
        )


class TestReplayDeterminism:
    def test_serial_and_thread_replays_are_bit_identical(self, small_replay):
        runtime = Runtime(executor=ThreadExecutor(workers=4), cache=RunCache())
        try:
            threaded = replay_scenario(sort_drift_scenario("small", seed=0), runtime)
        finally:
            runtime.close()
        assert threaded.digest() == small_replay.digest()
        assert threaded.to_json() == small_replay.to_json()

    def test_repeat_serial_replay_is_bit_identical(self, small_replay):
        runtime = Runtime(executor=SerialExecutor(), cache=RunCache())
        try:
            again = replay_scenario(sort_drift_scenario("small", seed=0), runtime)
        finally:
            runtime.close()
        assert again.digest() == small_replay.digest()
