"""Shared fixtures for the test suite.

The heavier fixtures (trained pipelines, experiment results) are session
scoped so the integration-style tests across modules reuse one small trained
system instead of re-training per test.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.benchmarks_suite import get_benchmark
from repro.core.level1 import Level1Config
from repro.core.level2 import Level2Config
from repro.core.pipeline import InputAwareLearning


@pytest.fixture
def rng() -> random.Random:
    """A deterministic python RNG."""
    return random.Random(1234)


@pytest.fixture
def np_rng() -> np.random.Generator:
    """A deterministic numpy RNG."""
    return np.random.default_rng(1234)


def small_training_run(test_name: str, n_inputs: int = 36, n_clusters: int = 4, seed: int = 0):
    """Train a deliberately tiny two-level system for integration tests."""
    variant = get_benchmark(test_name)
    inputs = variant.benchmark.generate_inputs(n_inputs, variant.variant, seed=seed)
    learner = InputAwareLearning(
        level1_config=Level1Config(
            n_clusters=n_clusters,
            tuner_generations=3,
            tuner_population=6,
            tuning_neighbors=2,
            seed=seed,
        ),
        level2_config=Level2Config(max_subsets=16, seed=seed),
        test_fraction=0.5,
        seed=seed,
    )
    return variant, inputs, learner.fit(variant.benchmark.program, inputs)


@pytest.fixture(scope="session")
def sort_training():
    """A small trained system for the sort benchmark (session scoped)."""
    variant, inputs, training = small_training_run("sort2", n_inputs=36)
    return {"variant": variant, "inputs": inputs, "training": training}


@pytest.fixture(scope="session")
def binpacking_training():
    """A small trained system for the bin-packing benchmark (session scoped)."""
    variant, inputs, training = small_training_run("binpacking", n_inputs=30)
    return {"variant": variant, "inputs": inputs, "training": training}


# The serving and distributed suites bind real TCP sockets (always on
# OS-assigned ephemeral ports -- never fixed numbers).  They used to lean
# on a whole-test rerun hook (``socket_retry``) to absorb transient
# connect races; those races are now retried where they happen, inside
# ``repro.resilience.retry.RetryPolicy``-backed connect paths and
# ``wait_for`` polls, so a test failure always means a real bug.
