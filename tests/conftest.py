"""Shared fixtures for the test suite.

The heavier fixtures (trained pipelines, experiment results) are session
scoped so the integration-style tests across modules reuse one small trained
system instead of re-training per test.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.benchmarks_suite import get_benchmark
from repro.core.level1 import Level1Config
from repro.core.level2 import Level2Config
from repro.core.pipeline import InputAwareLearning


@pytest.fixture
def rng() -> random.Random:
    """A deterministic python RNG."""
    return random.Random(1234)


@pytest.fixture
def np_rng() -> np.random.Generator:
    """A deterministic numpy RNG."""
    return np.random.default_rng(1234)


def small_training_run(test_name: str, n_inputs: int = 36, n_clusters: int = 4, seed: int = 0):
    """Train a deliberately tiny two-level system for integration tests."""
    variant = get_benchmark(test_name)
    inputs = variant.benchmark.generate_inputs(n_inputs, variant.variant, seed=seed)
    learner = InputAwareLearning(
        level1_config=Level1Config(
            n_clusters=n_clusters,
            tuner_generations=3,
            tuner_population=6,
            tuning_neighbors=2,
            seed=seed,
        ),
        level2_config=Level2Config(max_subsets=16, seed=seed),
        test_fraction=0.5,
        seed=seed,
    )
    return variant, inputs, learner.fit(variant.benchmark.program, inputs)


@pytest.fixture(scope="session")
def sort_training():
    """A small trained system for the sort benchmark (session scoped)."""
    variant, inputs, training = small_training_run("sort2", n_inputs=36)
    return {"variant": variant, "inputs": inputs, "training": training}


@pytest.fixture(scope="session")
def binpacking_training():
    """A small trained system for the bin-packing benchmark (session scoped)."""
    variant, inputs, training = small_training_run("binpacking", n_inputs=30)
    return {"variant": variant, "inputs": inputs, "training": training}


# --- socket-test flake guard -------------------------------------------------
#
# The serving and distributed suites bind real TCP sockets (always on
# OS-assigned ephemeral ports -- never fixed numbers), but CI runners can
# still hit transient bind/accept races under load.  Tests marked
# ``socket_retry`` get exactly one silent rerun on failure; a genuine bug
# fails twice and still fails the suite.  Retries are summarized at the end
# of the run so flakes stay visible instead of silently absorbed.


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "socket_retry: rerun this port-sensitive socket test once on failure",
    )
    config._socket_retries = []


def pytest_runtest_protocol(item, nextitem):
    if item.get_closest_marker("socket_retry") is None:
        return None
    from _pytest.runner import runtestprotocol

    item.ihook.pytest_runtest_logstart(
        nodeid=item.nodeid, location=item.location
    )
    reports = runtestprotocol(item, nextitem=nextitem, log=False)
    if any(report.failed for report in reports):
        item.config._socket_retries.append(item.nodeid)
        reports = runtestprotocol(item, nextitem=nextitem, log=False)
    for report in reports:
        item.ihook.pytest_runtest_logreport(report=report)
    item.ihook.pytest_runtest_logfinish(
        nodeid=item.nodeid, location=item.location
    )
    return True


def pytest_terminal_summary(terminalreporter):
    retried = getattr(terminalreporter.config, "_socket_retries", [])
    if retried:
        terminalreporter.write_line(
            f"socket_retry: {len(retried)} test(s) needed a rerun: "
            + ", ".join(retried)
        )
