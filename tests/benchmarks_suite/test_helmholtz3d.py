"""Tests for the Helmholtz 3D benchmark."""

import numpy as np
import pytest

from repro.benchmarks_suite.helmholtz3d import generators, solvers
from repro.benchmarks_suite.helmholtz3d.benchmark import (
    ACCURACY_THRESHOLD,
    Helmholtz3DBenchmark,
    HelmholtzInput,
    helmholtz_accuracy,
)
from repro.lang.cost import scoped_counter


def make_problem(n=7, coefficient_value=1.0, seed=0):
    rng = np.random.default_rng(seed)
    rhs = rng.normal(size=(n, n, n))
    coefficient = np.full((n, n, n), coefficient_value)
    return rhs, coefficient


class TestHelmholtzSolvers:
    def test_direct_solves_the_operator(self):
        rhs, coefficient = make_problem()
        solution = solvers.direct_sparse(rhs, coefficient)
        residual = rhs - solvers.apply_operator(solution, coefficient, charge_cost=False)
        assert np.max(np.abs(residual)) < 1e-8

    def test_sparse_operator_is_symmetric(self):
        _, coefficient = make_problem(n=5)
        matrix = solvers.build_sparse_operator(coefficient)
        dense = matrix.toarray()
        assert np.allclose(dense, dense.T)

    def test_operator_diagonal_includes_coefficient(self):
        _, coefficient = make_problem(n=5, coefficient_value=3.0)
        matrix = solvers.build_sparse_operator(coefficient).toarray()
        h2 = (1.0 / 6.0) ** 2
        assert np.allclose(np.diag(matrix), 6.0 / h2 + 3.0)

    def test_jacobi_reduces_error(self):
        rhs, coefficient = make_problem(n=7)
        exact = solvers.exact_solution(rhs, coefficient)
        few = solvers.jacobi(rhs, coefficient, 3)
        many = solvers.jacobi(rhs, coefficient, 150)
        assert np.linalg.norm(exact - many) < np.linalg.norm(exact - few)

    def test_sor_converges(self):
        rhs, coefficient = make_problem(n=7, seed=2)
        exact = solvers.exact_solution(rhs, coefficient)
        solution = solvers.sor(rhs, coefficient, 150)
        assert np.linalg.norm(exact - solution) / np.linalg.norm(exact) < 1e-4

    def test_multigrid_reduces_error_with_more_cycles(self):
        rhs, coefficient = make_problem(n=7, seed=3)
        exact = solvers.exact_solution(rhs, coefficient)
        few = solvers.multigrid(rhs, coefficient, cycles=1)
        many = solvers.multigrid(rhs, coefficient, cycles=10)
        assert np.linalg.norm(exact - many) < np.linalg.norm(exact - few)

    def test_unknown_cycle_shape_rejected(self):
        rhs, coefficient = make_problem()
        with pytest.raises(ValueError):
            solvers.multigrid(rhs, coefficient, cycle_shape="Z")

    def test_direct_charged_more_than_smoothing(self):
        rhs, coefficient = make_problem(n=11, seed=4)
        with scoped_counter() as direct_cost:
            solvers.direct_sparse(rhs, coefficient)
        with scoped_counter() as jacobi_cost:
            solvers.jacobi(rhs, coefficient, 10)
        assert direct_cost.total > jacobi_cost.total


class TestHelmholtzProgram:
    def test_direct_meets_accuracy_threshold(self):
        rhs, coefficient = make_problem(n=7, seed=5)
        problem = HelmholtzInput(rhs=rhs, coefficient=coefficient)
        solution = solvers.direct_sparse(rhs, coefficient)
        assert helmholtz_accuracy(problem, solution) >= ACCURACY_THRESHOLD

    def test_tiny_iteration_budget_fails_threshold(self):
        rhs, coefficient = make_problem(n=11, seed=6)
        problem = HelmholtzInput(rhs=rhs, coefficient=coefficient)
        solution = solvers.jacobi(rhs, coefficient, 2)
        assert helmholtz_accuracy(problem, solution) < ACCURACY_THRESHOLD

    def test_generator_structure(self):
        inputs = generators.generate_synthetic(10, seed=0)
        assert len(inputs) == 10
        for problem in inputs:
            assert problem.rhs.shape == problem.coefficient.shape
            assert problem.rhs.shape[0] in generators.GRID_SIZES
            assert np.all(problem.coefficient >= 0.0)

    def test_program_runs_every_solver(self):
        program = Helmholtz3DBenchmark().program
        rhs, coefficient = make_problem(n=7, seed=7)
        problem = HelmholtzInput(rhs=rhs, coefficient=coefficient)
        for solver in ("direct", "jacobi", "sor", "multigrid"):
            config = program.default_configuration().with_updates(solver=solver)
            result = program.run(config, problem)
            assert result.time > 0
            assert np.isfinite(result.accuracy)

    def test_feature_extraction_works_on_inputs(self):
        program = Helmholtz3DBenchmark().program
        problem = generators.generate_synthetic(1, seed=1)[0]
        values, costs = program.features.extract_vector(problem)
        assert values.shape == costs.shape
        assert np.all(np.isfinite(values))
