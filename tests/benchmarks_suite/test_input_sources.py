"""Per-index generator equivalence across all benchmarks.

The lazy input pipeline rests on one contract: for every benchmark and
variant, ``input_source(n, variant, seed)`` materializes the *same* inputs
as the legacy ``generate_inputs`` list -- per index, in any access order,
chunked or not.  Inputs are compared by their content digest
(:func:`repro.runtime.keys.input_key`), the same digest the run cache keys
on, so equality here is exactly the equality that makes streamed and
materialized experiments share cache entries bit-for-bit.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.benchmarks_suite import get_benchmark
from repro.benchmarks_suite.base import registry
from repro.core.inputs import GeneratedInputSource
from repro.runtime.keys import input_key

ALL_TESTS = sorted(registry())

#: Several (n, seed) pairs, including n=0 and a non-trivial seed.
SIZE_SEED_PAIRS = [(0, 0), (5, 0), (9, 3), (12, 41)]


def digests(inputs):
    return [input_key(x) for x in inputs]


@pytest.mark.parametrize("test_name", ALL_TESTS)
@pytest.mark.parametrize("n,seed", SIZE_SEED_PAIRS)
def test_source_equals_generate_inputs(test_name, n, seed):
    """Chunk-wise materialization of the source equals the legacy list."""
    variant = get_benchmark(test_name)
    source = variant.benchmark.input_source(n, variant.variant, seed=seed)
    legacy = variant.benchmark.generate_inputs(n, variant.variant, seed=seed)
    assert len(source) == len(legacy) == n
    chunked = [x for chunk in source.iter_chunks(4) for x in chunk]
    assert digests(chunked) == digests(legacy)


@pytest.mark.parametrize("test_name", ALL_TESTS)
def test_sources_are_per_index_generators(test_name):
    """Every built-in population supports true per-index generation."""
    variant = get_benchmark(test_name)
    source = variant.benchmark.input_source(4, variant.variant, seed=0)
    assert isinstance(source, GeneratedInputSource)


@pytest.mark.parametrize("test_name", ALL_TESTS)
def test_single_index_needs_no_predecessors(test_name):
    """Input i alone equals input i of the full population."""
    variant = get_benchmark(test_name)
    full = variant.benchmark.generate_inputs(8, variant.variant, seed=5)
    source = variant.benchmark.input_source(8, variant.variant, seed=5)
    for i in (7, 3, 0):  # deliberately out of order
        assert input_key(source[i]) == input_key(full[i])


@settings(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    test_name=st.sampled_from(ALL_TESTS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    order=st.permutations(list(range(6))),
)
def test_access_order_never_changes_an_input(test_name, seed, order):
    """Property: source[i] is independent of which indices were read before.

    A fresh source is read in a random permutation; every input must equal
    the in-order materialization of another fresh source.  This is the
    property that lets chunked, parallel, and repeated passes over a
    population agree bit-for-bit.
    """
    variant = get_benchmark(test_name)
    reference = digests(
        variant.benchmark.input_source(6, variant.variant, seed=seed)
    )
    shuffled = variant.benchmark.input_source(6, variant.variant, seed=seed)
    for i in order:
        assert input_key(shuffled[i]) == reference[i]


@pytest.mark.parametrize("test_name", ALL_TESTS)
def test_rematerialization_is_stable(test_name):
    """Reading the same index twice yields content-identical objects."""
    variant = get_benchmark(test_name)
    source = variant.benchmark.input_source(3, variant.variant, seed=11)
    first, second = source[2], source[2]
    assert first is not second or isinstance(first, (int, float, str))
    assert input_key(first) == input_key(second)


def test_feature_vectors_match_between_paths():
    """End-to-end spot check: features extracted from streamed inputs equal
    those from the materialized list (the arrays Level 1 actually builds)."""
    variant = get_benchmark("sort1")
    program = variant.benchmark.program
    source = variant.benchmark.input_source(6, variant.variant, seed=2)
    legacy = variant.benchmark.generate_inputs(6, variant.variant, seed=2)
    for streamed, materialized in zip(source, legacy):
        vs, cs = program.features.extract_vector(streamed)
        vm, cm = program.features.extract_vector(materialized)
        np.testing.assert_array_equal(vs, vm)
        np.testing.assert_array_equal(cs, cm)
