"""Tests for the Sort benchmark: algorithms, features, generators, program."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.benchmarks_suite.sort import algorithms, features, generators
from repro.benchmarks_suite.sort.benchmark import SortBenchmark, run_sort
from repro.lang.cost import scoped_counter
from repro.lang.selector import Selector, SelectorRule


def simple_dispatch(terminal="insertion_sort"):
    """A dispatcher that always uses a terminal algorithm for sub-problems."""

    def dispatch(segment, depth):
        if terminal == "insertion_sort":
            return algorithms.insertion_sort(segment)
        return algorithms.radix_sort(segment)

    return dispatch


float_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(0, 200),
    elements=st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
)


class TestSortAlgorithmsCorrectness:
    @pytest.mark.parametrize(
        "algorithm",
        [algorithms.insertion_sort, algorithms.radix_sort, algorithms.bitonic_sort],
    )
    def test_terminal_algorithms_sort(self, algorithm, np_rng):
        data = np_rng.uniform(-100, 100, size=257)
        assert np.array_equal(algorithm(data), np.sort(data))

    def test_quick_sort_sorts(self, np_rng):
        data = np_rng.uniform(0, 1, size=300)
        result = algorithms.quick_sort(data, simple_dispatch(), 0, pivot_rule="median3")
        assert np.array_equal(result, np.sort(data))

    @pytest.mark.parametrize("ways", [2, 3, 4, 8])
    def test_merge_sort_sorts(self, ways, np_rng):
        data = np_rng.uniform(0, 1, size=321)
        result = algorithms.merge_sort(data, simple_dispatch(), 0, ways=ways)
        assert np.array_equal(result, np.sort(data))

    def test_duplicates_handled(self):
        data = np.array([3.0, 1.0, 3.0, 3.0, 1.0, 2.0] * 20)
        for algorithm in (algorithms.insertion_sort, algorithms.radix_sort, algorithms.bitonic_sort):
            assert np.array_equal(algorithm(data), np.sort(data))

    def test_empty_and_singleton(self):
        for algorithm in (algorithms.insertion_sort, algorithms.radix_sort, algorithms.bitonic_sort):
            assert algorithm(np.array([])).size == 0
            assert np.array_equal(algorithm(np.array([5.0])), np.array([5.0]))

    def test_unknown_pivot_rule_rejected(self):
        with pytest.raises(ValueError):
            algorithms.quick_sort(np.array([2.0, 1.0]), simple_dispatch(), 0, pivot_rule="bogus")

    @settings(max_examples=40, deadline=None)
    @given(data=float_arrays)
    def test_property_insertion_sort_matches_numpy(self, data):
        assert np.array_equal(algorithms.insertion_sort(data), np.sort(data))

    @settings(max_examples=40, deadline=None)
    @given(data=float_arrays)
    def test_property_radix_sort_matches_numpy(self, data):
        assert np.array_equal(algorithms.radix_sort(data), np.sort(data))

    @settings(max_examples=40, deadline=None)
    @given(data=float_arrays)
    def test_property_bitonic_sort_matches_numpy(self, data):
        assert np.array_equal(algorithms.bitonic_sort(data), np.sort(data))


class TestSortAlgorithmCosts:
    def test_insertion_cheap_on_sorted_expensive_on_reversed(self):
        data = np.arange(500, dtype=float)
        with scoped_counter() as sorted_cost:
            algorithms.insertion_sort(data)
        with scoped_counter() as reversed_cost:
            algorithms.insertion_sort(data[::-1].copy())
        assert sorted_cost.total * 10 < reversed_cost.total

    def test_radix_cheaper_on_duplicates_than_wide_random(self, np_rng):
        duplicates = np_rng.choice([1.0, 2.0, 3.0, 4.0], size=1000)
        wide = np_rng.uniform(0, 1e6, size=1000)
        with scoped_counter() as duplicate_cost:
            algorithms.radix_sort(duplicates)
        with scoped_counter() as wide_cost:
            algorithms.radix_sort(wide)
        assert duplicate_cost.total < wide_cost.total

    def test_bitonic_cost_independent_of_order(self, np_rng):
        data = np_rng.uniform(0, 1, size=512)
        with scoped_counter() as random_cost:
            algorithms.bitonic_sort(data)
        with scoped_counter() as sorted_cost:
            algorithms.bitonic_sort(np.sort(data))
        assert random_cost.total == pytest.approx(sorted_cost.total)

    def test_quick_first_pivot_pathological_on_sorted(self):
        data = np.arange(800, dtype=float)

        def dispatch_quick(segment, depth):
            if len(segment) <= 8 or depth > algorithms.MAX_RECURSION_DEPTH:
                return algorithms.insertion_sort(segment)
            return algorithms.quick_sort(segment, dispatch_quick, depth, pivot_rule="first")

        def dispatch_random(segment, depth):
            if len(segment) <= 8 or depth > algorithms.MAX_RECURSION_DEPTH:
                return algorithms.insertion_sort(segment)
            return algorithms.quick_sort(segment, dispatch_random, depth, pivot_rule="random")

        with scoped_counter() as first_cost:
            dispatch_quick(data, 0)
        with scoped_counter() as random_cost:
            dispatch_random(data, 0)
        assert first_cost.total > 2 * random_cost.total


class TestSortFeatures:
    def test_sortedness_extremes(self):
        assert features.sortedness(np.arange(100, dtype=float), 1.0) == pytest.approx(1.0)
        assert features.sortedness(np.arange(100, dtype=float)[::-1].copy(), 1.0) == pytest.approx(0.0)

    def test_duplication_extremes(self):
        assert features.duplication(np.ones(100), 1.0) == pytest.approx(0.99)
        assert features.duplication(np.arange(100, dtype=float), 1.0) == pytest.approx(0.0)

    def test_deviation_zero_for_constant(self):
        assert features.deviation(np.full(50, 3.0), 1.0) == pytest.approx(0.0)

    def test_test_sort_cheap_on_sorted(self):
        sorted_cost = features.test_sort(np.arange(1000, dtype=float), 0.1)
        reversed_cost = features.test_sort(np.arange(1000, dtype=float)[::-1].copy(), 0.1)
        assert sorted_cost < reversed_cost

    def test_size_feature_is_log2(self):
        assert features.size_feature(np.zeros(1024), 1.0) == pytest.approx(10.0)

    def test_feature_set_has_five_properties_three_levels(self):
        feature_set = features.build_feature_set()
        assert len(feature_set) == 5
        assert feature_set.num_features() == 15


class TestSortGenerators:
    def test_synthetic_count_and_type(self):
        inputs = generators.generate_synthetic(16, seed=0)
        assert len(inputs) == 16
        assert all(isinstance(x, np.ndarray) for x in inputs)
        assert all(generators.MIN_LENGTH <= len(x) <= generators.MAX_LENGTH for x in inputs)

    def test_real_world_count(self):
        inputs = generators.generate_real_world(10, seed=0)
        assert len(inputs) == 10

    def test_generators_deterministic(self):
        first = generators.generate_synthetic(5, seed=3)
        second = generators.generate_synthetic(5, seed=3)
        assert all(np.array_equal(a, b) for a, b in zip(first, second))

    def test_families_cover_feature_space(self):
        """The synthetic mixture should contain both nearly-sorted and random lists."""
        inputs = generators.generate_synthetic(16, seed=1)
        sortedness_values = [features.sortedness(x, 1.0) for x in inputs]
        assert max(sortedness_values) > 0.95
        assert min(sortedness_values) < 0.6


class TestSortBenchmarkProgram:
    def test_program_structure(self):
        program = SortBenchmark().program
        assert "selector" in program.config_space
        assert "merge_ways" in program.config_space
        assert not program.has_variable_accuracy

    def test_run_sort_with_figure2_selector(self, np_rng):
        program = SortBenchmark().program
        selector = Selector(
            rules=(SelectorRule(600, "insertion_sort"), SelectorRule(1420, "quick_sort")),
            fallback="merge_sort",
        )
        config = program.default_configuration().with_updates(selector=selector)
        data = np_rng.uniform(0, 1e6, size=2000)
        result = program.run(config, data)
        assert np.array_equal(result.output, np.sort(data))
        assert result.time > 0

    def test_random_configurations_always_sort(self, rng, np_rng):
        program = SortBenchmark().program
        data = np_rng.uniform(0, 1e3, size=700)
        for _ in range(5):
            config = program.config_space.sample(rng)
            result = program.run(config, data)
            assert np.array_equal(result.output, np.sort(data))

    def test_input_generators_registered(self):
        generators_map = SortBenchmark().input_generators()
        assert set(generators_map) == {"synthetic", "real_world"}
