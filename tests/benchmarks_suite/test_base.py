"""Tests for the benchmark registry and the shared Benchmark interface."""

import pytest

from repro.benchmarks_suite import get_benchmark, registry
from repro.benchmarks_suite.base import Benchmark, InputGenerator

#: The eight Table-1 tests.
EXPECTED_TESTS = {
    "sort1", "sort2", "clustering1", "clustering2",
    "binpacking", "svd", "poisson2d", "helmholtz3d",
}


class TestRegistry:
    def test_all_paper_tests_registered(self):
        assert set(registry()) == EXPECTED_TESTS

    def test_get_benchmark_returns_variant(self):
        variant = get_benchmark("sort1")
        assert variant.variant == "real_world"
        assert variant.benchmark.name == "sort"
        assert variant.name == "sort/real_world"

    def test_sort2_uses_synthetic_variant(self):
        assert get_benchmark("sort2").variant == "synthetic"

    def test_unknown_test_rejected(self):
        with pytest.raises(KeyError):
            get_benchmark("nonexistent")

    @pytest.mark.parametrize("test_name", sorted(EXPECTED_TESTS))
    def test_every_registered_benchmark_builds(self, test_name):
        variant = get_benchmark(test_name)
        program = variant.benchmark.program
        assert len(program.config_space) >= 1
        assert program.features.num_features() >= 3
        generators = variant.benchmark.input_generators()
        assert variant.variant in generators

    @pytest.mark.parametrize("test_name", sorted(EXPECTED_TESTS))
    def test_generate_and_run_one_input(self, test_name):
        """Smoke test: every benchmark can generate an input and run it with
        its default configuration."""
        variant = get_benchmark(test_name)
        program = variant.benchmark.program
        inputs = variant.benchmark.generate_inputs(1, variant.variant, seed=0)
        result = program.run(program.default_configuration(), inputs[0])
        assert result.time > 0

    def test_program_is_cached(self):
        benchmark = get_benchmark("binpacking").benchmark
        assert benchmark.program is benchmark.program


class TestBenchmarkInterface:
    def test_unknown_variant_rejected(self):
        benchmark = get_benchmark("svd").benchmark
        with pytest.raises(KeyError):
            benchmark.generate_inputs(1, "nope")

    def test_input_generator_rejects_negative_count(self):
        generator = InputGenerator("g", "test", lambda n, seed: [0] * n)
        with pytest.raises(ValueError):
            generator.generate(-1)

    def test_abstract_benchmark_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Benchmark()
