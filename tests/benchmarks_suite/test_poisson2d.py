"""Tests for the Poisson 2D benchmark."""

import numpy as np
import pytest

from repro.benchmarks_suite.poisson2d import generators, solvers
from repro.benchmarks_suite.poisson2d.benchmark import (
    ACCURACY_THRESHOLD,
    Poisson2DBenchmark,
    PoissonInput,
    poisson_accuracy,
)
from repro.lang.cost import scoped_counter


def sine_rhs(n=15, kx=2, ky=3):
    coords = np.arange(1, n + 1) / (n + 1)
    return np.outer(np.sin(np.pi * kx * coords), np.sin(np.pi * ky * coords))


class TestPoissonSolvers:
    def test_direct_banded_matches_dst_reference(self):
        f = sine_rhs()
        banded = solvers.direct_banded_cholesky(f)
        reference = solvers.exact_solution(f)
        assert np.allclose(banded, reference, atol=1e-10)

    def test_direct_solves_single_mode_analytically(self):
        """For a single sine mode the continuous solution is f / (pi^2 (kx^2+ky^2));
        the discrete solution converges to it."""
        n, kx, ky = 31, 1, 1
        f = sine_rhs(n, kx, ky)
        u = solvers.direct_banded_cholesky(f)
        analytic = f / (np.pi ** 2 * (kx ** 2 + ky ** 2))
        assert np.allclose(u, analytic, atol=5e-3)

    def test_residual_of_exact_solution_is_small(self):
        f = sine_rhs()
        u = solvers.exact_solution(f)
        assert solvers.residual_norm(u, f) < 1e-8 * np.abs(f).max() + 1e-8

    def test_jacobi_reduces_error(self):
        f = sine_rhs()
        exact = solvers.exact_solution(f)
        few = solvers.jacobi(f, 5)
        many = solvers.jacobi(f, 200)
        assert np.linalg.norm(exact - many) < np.linalg.norm(exact - few)

    def test_sor_converges_faster_than_jacobi(self):
        f = sine_rhs(n=23, kx=1, ky=1)
        exact = solvers.exact_solution(f)
        jacobi_error = np.linalg.norm(exact - solvers.jacobi(f, 60))
        sor_error = np.linalg.norm(exact - solvers.sor(f, 60))
        assert sor_error < jacobi_error

    def test_multigrid_reaches_high_accuracy(self):
        f = sine_rhs(n=31, kx=3, ky=5)
        exact = solvers.exact_solution(f)
        u = solvers.multigrid(f, cycles=10, cycle_shape="V", pre_smooth=2, post_smooth=2)
        relative = np.linalg.norm(exact - u) / np.linalg.norm(exact)
        assert relative < 1e-5

    def test_multigrid_error_shrinks_with_more_cycles(self):
        f = sine_rhs(n=31, kx=2, ky=2)
        exact = solvers.exact_solution(f)
        errors = [
            np.linalg.norm(exact - solvers.multigrid(f, cycles=c)) for c in (1, 4, 8)
        ]
        assert errors[2] < errors[1] < errors[0]

    def test_w_cycle_at_least_as_good_as_v_cycle(self):
        f = sine_rhs(n=31, kx=1, ky=2)
        exact = solvers.exact_solution(f)
        v_error = np.linalg.norm(exact - solvers.multigrid(f, cycles=4, cycle_shape="V"))
        w_error = np.linalg.norm(exact - solvers.multigrid(f, cycles=4, cycle_shape="W"))
        assert w_error <= v_error * 1.5

    def test_unknown_cycle_shape_rejected(self):
        with pytest.raises(ValueError):
            solvers.multigrid(sine_rhs(), cycle_shape="X")

    def test_cost_hierarchy(self):
        """Direct (banded) is charged more than a handful of multigrid cycles
        on a large grid, and jacobi sweeps are the cheapest per-iteration."""
        f = sine_rhs(n=31)
        with scoped_counter() as direct_cost:
            solvers.direct_banded_cholesky(f)
        with scoped_counter() as multigrid_cost:
            solvers.multigrid(f, cycles=3)
        with scoped_counter() as jacobi_cost:
            solvers.jacobi(f, 3)
        assert direct_cost.total > multigrid_cost.total > jacobi_cost.total


class TestPoissonAccuracyAndProgram:
    def test_direct_meets_accuracy_threshold(self):
        problem = PoissonInput(rhs=sine_rhs(n=23))
        solution = solvers.direct_banded_cholesky(problem.rhs)
        assert poisson_accuracy(problem, solution) >= ACCURACY_THRESHOLD

    def test_few_jacobi_iterations_fail_threshold_on_smooth_input(self):
        problem = PoissonInput(rhs=sine_rhs(n=31, kx=1, ky=1))
        solution = solvers.jacobi(problem.rhs, 5)
        assert poisson_accuracy(problem, solution) < ACCURACY_THRESHOLD

    def test_exact_solution_cached(self):
        problem = PoissonInput(rhs=sine_rhs())
        first = problem.exact_solution()
        assert problem.exact_solution() is first

    def test_generator_grid_sizes(self):
        inputs = generators.generate_synthetic(10, seed=0)
        assert len(inputs) == 10
        assert all(problem.rhs.shape[0] in generators.GRID_SIZES for problem in inputs)

    def test_program_runs_every_solver(self):
        program = Poisson2DBenchmark().program
        problem = PoissonInput(rhs=sine_rhs(n=15))
        for solver in ("direct", "jacobi", "sor", "multigrid"):
            config = program.default_configuration().with_updates(solver=solver)
            result = program.run(config, problem)
            assert result.time > 0
            assert np.isfinite(result.accuracy)

    def test_accuracy_threshold_is_papers(self):
        program = Poisson2DBenchmark().program
        assert program.accuracy_requirement.accuracy_threshold == pytest.approx(7.0)
