"""Cross-benchmark checks on the input generators.

The two-level method only works if the input populations genuinely exercise
different algorithmic regimes.  These tests check, for every benchmark, that
its generators produce (a) deterministic, well-formed inputs, and (b) real
heterogeneity: the best landmark-free algorithmic choice differs across
inputs, and the feature extractors spread the population out rather than
collapsing it to a point.
"""

import numpy as np
import pytest

from repro.benchmarks_suite import get_benchmark
from repro.benchmarks_suite.base import registry

ALL_TESTS = sorted(registry())


@pytest.mark.parametrize("test_name", ALL_TESTS)
def test_generators_are_deterministic(test_name):
    variant = get_benchmark(test_name)
    first = variant.benchmark.generate_inputs(4, variant.variant, seed=11)
    second = variant.benchmark.generate_inputs(4, variant.variant, seed=11)
    program = variant.benchmark.program
    for a, b in zip(first, second):
        va, _ = program.features.extract_vector(a)
        vb, _ = program.features.extract_vector(b)
        assert np.allclose(va, vb)


@pytest.mark.parametrize("test_name", ALL_TESTS)
def test_feature_vectors_are_finite_and_heterogeneous(test_name):
    variant = get_benchmark(test_name)
    program = variant.benchmark.program
    inputs = variant.benchmark.generate_inputs(10, variant.variant, seed=3)
    vectors = np.array([program.features.extract_vector(x)[0] for x in inputs])
    assert np.all(np.isfinite(vectors))
    # At least one feature must vary across the population, otherwise the
    # Level-1 clustering would be meaningless.
    assert np.any(vectors.std(axis=0) > 1e-9)


@pytest.mark.parametrize("test_name", ALL_TESTS)
def test_extraction_costs_increase_with_level(test_name):
    """For at least one property the higher sampling level costs more."""
    variant = get_benchmark(test_name)
    program = variant.benchmark.program
    sample = variant.benchmark.generate_inputs(1, variant.variant, seed=5)[0]
    increased = False
    for extractor in program.features:
        if extractor.levels < 2:
            continue
        cheap = extractor.extract(sample, 0).cost
        expensive = extractor.extract(sample, extractor.levels - 1).cost
        if expensive > cheap:
            increased = True
    assert increased


@pytest.mark.parametrize("test_name", ALL_TESTS)
def test_different_configurations_have_different_costs(test_name):
    """Sampling a handful of random configurations on one input must produce a
    spread of execution costs -- otherwise there is nothing to autotune."""
    variant = get_benchmark(test_name)
    program = variant.benchmark.program
    sample = variant.benchmark.generate_inputs(1, variant.variant, seed=7)[0]
    rng = __import__("random").Random(0)
    times = []
    for _ in range(6):
        config = program.config_space.sample(rng)
        times.append(program.run(config, sample).time)
    assert max(times) > min(times)
