"""Tests for the Clustering benchmark."""

import numpy as np
import pytest

from repro.benchmarks_suite.clustering import algorithms, features, generators
from repro.benchmarks_suite.clustering.benchmark import (
    ACCURACY_THRESHOLD,
    ClusteringBenchmark,
    ClusteringInput,
    clustering_accuracy,
)
from repro.lang.cost import scoped_counter


def blobs(n=200, k=4, spread=0.5, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-50, 50, size=(k, 2))
    assignments = rng.integers(0, k, size=n)
    return centers[assignments] + rng.normal(0, spread, size=(n, 2))


class TestKmeansVariants:
    @pytest.mark.parametrize("init", ["random", "prefix", "centerplus"])
    def test_output_shapes(self, init):
        points = blobs()
        output = algorithms.kmeans_cluster(points, k=4, iterations=5, init=init)
        assert output.centers.shape[1] == 2
        assert output.assignments.shape == (len(points),)
        assert output.mean_distance >= 0.0

    def test_centerplus_recovers_separated_blobs(self):
        points = blobs(spread=0.2)
        output = algorithms.kmeans_cluster(points, k=4, iterations=10, init="centerplus")
        assert output.mean_distance < 1.0

    def test_more_iterations_do_not_hurt(self):
        points = blobs(spread=2.0, seed=3)
        few = algorithms.kmeans_cluster(points, k=4, iterations=1, init="random", seed=5)
        many = algorithms.kmeans_cluster(points, k=4, iterations=20, init="random", seed=5)
        assert many.mean_distance <= few.mean_distance + 1e-9

    def test_cost_scales_with_k_and_iterations(self):
        points = blobs()
        with scoped_counter() as small:
            algorithms.kmeans_cluster(points, k=2, iterations=2)
        with scoped_counter() as big:
            algorithms.kmeans_cluster(points, k=8, iterations=10)
        assert big.total > small.total

    def test_centerplus_init_costs_more_than_prefix(self):
        points = blobs()
        with scoped_counter() as prefix:
            algorithms.kmeans_cluster(points, k=6, iterations=1, init="prefix")
        with scoped_counter() as centerplus:
            algorithms.kmeans_cluster(points, k=6, iterations=1, init="centerplus")
        assert centerplus.total > prefix.total

    def test_bad_arguments(self):
        points = blobs()
        with pytest.raises(ValueError):
            algorithms.kmeans_cluster(points, k=0, iterations=1)
        with pytest.raises(ValueError):
            algorithms.kmeans_cluster(points, k=2, iterations=0)
        with pytest.raises(ValueError):
            algorithms.kmeans_cluster(points, k=2, iterations=1, init="bogus")
        with pytest.raises(ValueError):
            algorithms.kmeans_cluster(np.empty((0, 2)), k=2, iterations=1)

    def test_k_clamped_to_point_count(self):
        points = blobs(n=3)
        output = algorithms.kmeans_cluster(points, k=10, iterations=2)
        assert output.centers.shape[0] <= 3


class TestClusteringAccuracyMetric:
    def test_good_clustering_meets_threshold(self):
        problem = ClusteringInput(points=blobs(spread=0.3, seed=1), true_k=4)
        output = algorithms.kmeans_cluster(problem.points, k=4, iterations=15, init="centerplus")
        assert clustering_accuracy(problem, output) >= ACCURACY_THRESHOLD

    def test_too_few_clusters_fails_threshold(self):
        problem = ClusteringInput(points=blobs(spread=0.3, seed=2, k=6), true_k=6)
        output = algorithms.kmeans_cluster(problem.points, k=1, iterations=5)
        assert clustering_accuracy(problem, output) < ACCURACY_THRESHOLD

    def test_canonical_distance_cached(self):
        problem = ClusteringInput(points=blobs(seed=3), true_k=4)
        first = problem.canonical_distance()
        assert problem.canonical_distance() == first


class TestClusteringGeneratorsAndProgram:
    def test_generator_counts(self):
        assert len(generators.generate_synthetic(10, seed=0)) == 10
        assert len(generators.generate_real_world(10, seed=0)) == 10

    def test_real_world_inputs_are_lattice_like(self):
        inputs = generators.generate_real_world(5, seed=1)
        for problem in inputs:
            distinct = len(np.unique(problem.points, axis=0))
            assert distinct < len(problem.points)  # heavy duplication

    def test_feature_set_structure(self):
        feature_set = features.build_feature_set()
        assert set(feature_set.property_names) == {"radius", "centers", "density", "range", "size"}

    def test_centers_feature_grows_with_true_k(self):
        tight = ClusteringInput(points=blobs(k=2, spread=0.3, seed=4), true_k=2)
        many = ClusteringInput(points=blobs(k=8, spread=0.3, seed=5), true_k=8)
        assert features.centers(many, 1.0) > features.centers(tight, 1.0)

    def test_program_runs_and_scores(self):
        benchmark = ClusteringBenchmark()
        program = benchmark.program
        problem = benchmark.generate_inputs(1, "synthetic", seed=0)[0]
        result = program.run(program.default_configuration(), problem)
        assert result.time > 0
        assert result.accuracy > 0

    def test_program_has_paper_accuracy_threshold(self):
        program = ClusteringBenchmark().program
        assert program.accuracy_requirement.accuracy_threshold == pytest.approx(0.8)
