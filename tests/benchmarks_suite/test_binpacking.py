"""Tests for the Bin Packing benchmark."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks_suite.binpacking import algorithms, features, generators
from repro.benchmarks_suite.binpacking.benchmark import (
    ACCURACY_THRESHOLD,
    BinPackingBenchmark,
)
from repro.lang.cost import scoped_counter

item_lists = st.lists(
    st.floats(min_value=0.01, max_value=1.0), min_size=0, max_size=120
)


class TestHeuristicsValidity:
    def test_thirteen_heuristics_registered(self):
        assert len(algorithms.HEURISTICS) == 13
        expected = {
            "AlmostWorstFit", "AlmostWorstFitDecreasing", "BestFit",
            "BestFitDecreasing", "FirstFit", "FirstFitDecreasing", "LastFit",
            "LastFitDecreasing", "ModifiedFirstFitDecreasing", "NextFit",
            "NextFitDecreasing", "WorstFit", "WorstFitDecreasing",
        }
        assert set(algorithms.HEURISTICS) == expected

    @pytest.mark.parametrize("name", sorted(algorithms.HEURISTICS))
    def test_every_heuristic_produces_valid_packing(self, name, np_rng):
        items = np_rng.uniform(0.05, 0.95, size=150).tolist()
        bins = algorithms.HEURISTICS[name](items)
        assert algorithms.packing_is_valid(items, bins)

    @pytest.mark.parametrize("name", sorted(algorithms.HEURISTICS))
    def test_empty_input(self, name):
        assert algorithms.HEURISTICS[name]([]) == []

    @settings(max_examples=30, deadline=None)
    @given(items=item_lists)
    def test_property_first_fit_valid(self, items):
        assert algorithms.packing_is_valid(items, algorithms.first_fit(items))

    @settings(max_examples=30, deadline=None)
    @given(items=item_lists)
    def test_property_best_fit_decreasing_valid(self, items):
        assert algorithms.packing_is_valid(items, algorithms.best_fit_decreasing(items))

    @settings(max_examples=30, deadline=None)
    @given(items=item_lists)
    def test_property_mffd_valid(self, items):
        bins = algorithms.modified_first_fit_decreasing(items)
        assert algorithms.packing_is_valid(items, bins)

    @settings(max_examples=30, deadline=None)
    @given(items=item_lists)
    def test_property_bin_count_lower_bound(self, items):
        """No heuristic can use fewer bins than ceil(total size)."""
        lower_bound = int(np.ceil(sum(items) - 1e-9))
        for heuristic in (algorithms.next_fit, algorithms.best_fit, algorithms.first_fit_decreasing):
            assert len(heuristic(items)) >= lower_bound


class TestHeuristicQuality:
    def test_ffd_beats_next_fit_on_uniform_items(self, np_rng):
        items = np_rng.uniform(0.2, 0.8, size=300).tolist()
        assert len(algorithms.first_fit_decreasing(items)) <= len(algorithms.next_fit(items))

    def test_decreasing_variants_charge_sort_cost(self):
        items = [0.4] * 100
        with scoped_counter() as plain:
            algorithms.first_fit(items)
        with scoped_counter() as decreasing:
            algorithms.first_fit_decreasing(items)
        assert decreasing.total > plain.total

    def test_occupancy_range(self, np_rng):
        items = np_rng.uniform(0.05, 0.5, size=200).tolist()
        for heuristic in algorithms.HEURISTICS.values():
            occupancy = algorithms.occupancy(heuristic(items))
            assert 0.0 < occupancy <= 1.0

    def test_occupancy_of_empty_packing(self):
        assert algorithms.occupancy([]) == 1.0


class TestBinpackingFeaturesAndGenerators:
    def test_feature_values_sane(self, np_rng):
        items = np_rng.uniform(0.1, 0.9, size=100)
        assert 0.0 < features.average(items, 1.0) < 1.0
        assert features.deviation(items, 1.0) >= 0.0
        assert features.value_range(items, 1.0) <= 0.9
        assert 0.0 <= features.sortedness(items, 1.0) <= 1.0

    def test_sortedness_of_decreasing_list(self):
        items = np.sort(np.random.default_rng(0).uniform(0, 1, 50))[::-1].copy()
        assert features.sortedness(items, 1.0) == pytest.approx(1.0)

    def test_feature_set_structure(self):
        feature_set = features.build_feature_set()
        assert set(feature_set.property_names) == {"average", "deviation", "range", "sortedness", "size"}

    def test_generator_counts_and_ranges(self):
        inputs = generators.generate_synthetic(10, seed=0)
        assert len(inputs) == 10
        for items in inputs:
            assert np.all(items > 0.0) and np.all(items <= 1.0)

    def test_generator_families_mostly_packable_to_threshold(self):
        """At least one heuristic should reach the accuracy threshold on
        nearly every generated input (needed for the satisfaction claim)."""
        inputs = generators.generate_synthetic(30, seed=5)
        achievable = [
            max(
                algorithms.occupancy(h(list(items)))
                for h in algorithms.HEURISTICS.values()
            )
            for items in inputs
        ]
        assert np.mean(np.array(achievable) >= ACCURACY_THRESHOLD) >= 0.95


class TestBinPackingProgram:
    def test_program_runs_every_heuristic_choice(self, np_rng):
        program = BinPackingBenchmark().program
        items = np_rng.uniform(0.05, 0.5, size=80)
        for name in algorithms.HEURISTICS:
            config = program.default_configuration().with_updates(heuristic=name)
            result = program.run(config, items)
            assert algorithms.packing_is_valid(items.tolist(), result.output)
            assert 0.0 < result.accuracy <= 1.0

    def test_accuracy_requirement_is_papers(self):
        program = BinPackingBenchmark().program
        assert program.accuracy_requirement.accuracy_threshold == pytest.approx(0.95)
        assert program.accuracy_requirement.satisfaction_threshold == pytest.approx(0.95)
