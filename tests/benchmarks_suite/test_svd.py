"""Tests for the SVD benchmark."""

import numpy as np
import pytest

from repro.benchmarks_suite.svd import algorithms, features, generators
from repro.benchmarks_suite.svd.benchmark import (
    ACCURACY_THRESHOLD,
    SVDBenchmark,
    SVDInput,
    svd_accuracy,
)
from repro.lang.cost import scoped_counter


def low_rank_matrix(m=40, n=24, rank=3, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.normal(size=(m, rank)) * 3.0) @ rng.normal(size=(rank, n))


class TestRankKAlgorithms:
    @pytest.mark.parametrize("technique", ["exact", "subspace", "power"])
    def test_low_rank_matrix_recovered(self, technique):
        matrix = low_rank_matrix()
        approximation = algorithms.rank_k_approximation(matrix, k=3, technique=technique, iterations=15)
        relative_error = np.linalg.norm(matrix - approximation) / np.linalg.norm(matrix)
        assert relative_error < 0.05

    def test_exact_equals_numpy_truncation(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(20, 12))
        ours = algorithms.exact_rank_k(matrix, 5)
        u, s, vt = np.linalg.svd(matrix, full_matrices=False)
        reference = (u[:, :5] * s[:5]) @ vt[:5]
        assert np.allclose(ours, reference, atol=1e-8)

    def test_larger_k_reduces_error(self):
        rng = np.random.default_rng(2)
        matrix = rng.normal(size=(30, 20))
        errors = [
            np.linalg.norm(matrix - algorithms.exact_rank_k(matrix, k))
            for k in (1, 5, 10, 20)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(errors, errors[1:]))

    def test_subspace_cost_scales_with_k(self):
        matrix = low_rank_matrix()
        with scoped_counter() as small:
            algorithms.subspace_rank_k(matrix, k=2, iterations=5)
        with scoped_counter() as large:
            algorithms.subspace_rank_k(matrix, k=10, iterations=5)
        assert large.total > small.total

    def test_exact_cost_independent_of_k(self):
        matrix = low_rank_matrix()
        with scoped_counter() as a:
            algorithms.exact_rank_k(matrix, 1)
        with scoped_counter() as b:
            algorithms.exact_rank_k(matrix, 10)
        assert a.total == pytest.approx(b.total)

    def test_bad_arguments(self):
        matrix = low_rank_matrix()
        with pytest.raises(ValueError):
            algorithms.rank_k_approximation(matrix, k=0, technique="exact")
        with pytest.raises(ValueError):
            algorithms.rank_k_approximation(matrix, k=2, technique="bogus")


class TestSVDAccuracyMetric:
    def test_perfect_reconstruction_has_high_accuracy(self):
        matrix = low_rank_matrix()
        accuracy = algorithms.reconstruction_accuracy(matrix, matrix.copy())
        assert accuracy > 5.0

    def test_zero_approximation_has_zero_accuracy(self):
        matrix = low_rank_matrix()
        assert algorithms.reconstruction_accuracy(matrix, np.zeros_like(matrix)) == pytest.approx(0.0)

    def test_good_rank_meets_threshold_on_low_rank_input(self):
        problem = SVDInput(matrix=low_rank_matrix())
        approximation = algorithms.exact_rank_k(problem.matrix, 3)
        assert svd_accuracy(problem, approximation) >= ACCURACY_THRESHOLD

    def test_rank_one_fails_threshold_on_noise(self):
        rng = np.random.default_rng(3)
        problem = SVDInput(matrix=rng.normal(size=(40, 30)))
        approximation = algorithms.exact_rank_k(problem.matrix, 1)
        assert svd_accuracy(problem, approximation) < ACCURACY_THRESHOLD


class TestSVDGeneratorsAndProgram:
    def test_generator_shapes(self):
        inputs = generators.generate_synthetic(8, seed=0)
        assert len(inputs) == 8
        for problem in inputs:
            m, n = problem.matrix.shape
            assert m >= n

    def test_low_rank_family_has_zeros(self):
        inputs = generators.generate_synthetic(8, seed=1)
        zero_fractions = [np.mean(problem.matrix == 0.0) for problem in inputs]
        assert max(zero_fractions) > 0.1

    def test_feature_set_structure(self):
        feature_set = features.build_feature_set()
        assert set(feature_set.property_names) == {"range", "deviation", "zeros"}

    def test_program_runs_all_techniques(self):
        program = SVDBenchmark().program
        problem = SVDInput(matrix=low_rank_matrix())
        for technique in ("exact", "subspace", "power"):
            config = program.default_configuration().with_updates(
                technique=technique, rank_fraction=0.5
            )
            result = program.run(config, problem)
            assert result.time > 0
            assert np.isfinite(result.accuracy)

    def test_accuracy_threshold_is_papers(self):
        program = SVDBenchmark().program
        assert program.accuracy_requirement.accuracy_threshold == pytest.approx(0.7)
