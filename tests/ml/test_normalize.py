"""Tests for feature normalizers."""

import numpy as np
import pytest

from repro.ml.normalize import MinMaxNormalizer, ZScoreNormalizer


class TestZScoreNormalizer:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = ZScoreNormalizer().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_maps_to_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        Z = ZScoreNormalizer().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)

    def test_transform_uses_training_statistics(self):
        train = np.array([[0.0], [10.0]])
        normalizer = ZScoreNormalizer().fit(train)
        assert normalizer.transform(np.array([[5.0]]))[0, 0] == pytest.approx(0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ZScoreNormalizer().transform(np.ones((2, 2)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ZScoreNormalizer().fit(np.ones(5))


class TestMinMaxNormalizer:
    def test_maps_to_unit_interval(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-50, 50, size=(100, 3))
        Z = MinMaxNormalizer().fit_transform(X)
        assert Z.min() >= 0.0 and Z.max() <= 1.0
        assert np.allclose(Z.min(axis=0), 0.0)
        assert np.allclose(Z.max(axis=0), 1.0)

    def test_constant_column_maps_to_half(self):
        X = np.column_stack([np.full(5, 7.0), np.arange(5, dtype=float)])
        Z = MinMaxNormalizer().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxNormalizer().transform(np.ones((2, 2)))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            MinMaxNormalizer().fit(np.ones(5))
