"""Tests for the PCA implementation."""

import numpy as np
import pytest

from repro.ml.pca import PCA


def correlated_data(n=300, seed=0):
    """Data whose variance is concentrated along one known direction."""
    rng = np.random.default_rng(seed)
    direction = np.array([3.0, 1.0]) / np.sqrt(10.0)
    scores = rng.normal(0.0, 5.0, size=n)
    noise = rng.normal(0.0, 0.1, size=(n, 2))
    return scores[:, None] * direction[None, :] + noise


class TestPCA:
    def test_first_component_matches_dominant_direction(self):
        X = correlated_data()
        pca = PCA(n_components=1).fit(X)
        direction = np.array([3.0, 1.0]) / np.sqrt(10.0)
        alignment = abs(float(pca.components_[0] @ direction))
        assert alignment > 0.99

    def test_explained_variance_ratio_sums_to_one(self):
        X = correlated_data()
        pca = PCA().fit(X)
        assert pca.explained_variance_ratio().sum() == pytest.approx(1.0)
        assert pca.explained_variance_ratio()[0] > 0.95

    def test_transform_shape_and_centering(self):
        X = correlated_data()
        projected = PCA(n_components=1).fit_transform(X)
        assert projected.shape == (300, 1)
        assert abs(projected.mean()) < 1e-9

    def test_components_are_orthonormal(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 5))
        pca = PCA().fit(X)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(5), atol=1e-9)

    def test_n_components_capped_at_dimensionality(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(50, 3))
        pca = PCA(n_components=10).fit(X)
        assert pca.components_.shape == (3, 3)

    def test_errors(self):
        with pytest.raises(ValueError):
            PCA(n_components=0)
        with pytest.raises(ValueError):
            PCA().fit(np.ones(5))
        with pytest.raises(ValueError):
            PCA().fit(np.ones((1, 3)))
        with pytest.raises(RuntimeError):
            PCA().transform(np.ones((2, 2)))
