"""Tests for the cost-sensitive decision tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.decision_tree import DecisionTreeClassifier


def make_separable(n=200, seed=0):
    """Two classes separable on feature 0 at threshold 0."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = (X[:, 0] > 0).astype(int)
    return X, y


class TestDecisionTree:
    def test_fits_separable_data(self):
        X, y = make_separable()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert np.mean(tree.predict(X) == y) > 0.98

    def test_generalizes_on_separable_data(self):
        X, y = make_separable(seed=0)
        X_test, y_test = make_separable(seed=1)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert np.mean(tree.predict(X_test) == y_test) > 0.95

    def test_single_class_predicts_it(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        y = np.full(20, 3)
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.all(tree.predict(X) == 3)

    def test_depth_and_leaves_bounded(self):
        X, y = make_separable(n=300)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert tree.depth() <= 4
        assert tree.n_leaves() <= 2 ** 4

    def test_predict_one_matches_predict(self):
        X, y = make_separable()
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.predict_one(X[0]) == tree.predict(X[:1])[0]

    def test_multiclass(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] > 0).astype(int) + 2 * (X[:, 1] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert np.mean(tree.predict(X) == y) > 0.9

    def test_cost_matrix_shifts_predictions(self):
        """A heavy penalty for predicting class 0 when truth is 1 makes the
        tree prefer class 1 in ambiguous regions."""
        rng = np.random.default_rng(3)
        # Overlapping classes: feature is pure noise, 60/40 split toward 0.
        X = rng.normal(size=(300, 1))
        y = (rng.random(300) > 0.6).astype(int)
        plain = DecisionTreeClassifier(max_depth=2).fit(X, y)
        cost = np.array([[0.0, 1.0], [50.0, 0.0]])  # predicting 0 for true 1 is awful
        costly = DecisionTreeClassifier(max_depth=2, cost_matrix=cost).fit(X, y)
        assert np.mean(plain.predict(X) == 0) > 0.5
        assert np.mean(costly.predict(X) == 1) > 0.5

    def test_cost_matrix_too_small_rejected(self):
        X = np.zeros((10, 1))
        y = np.array([0, 1, 2, 0, 1, 2, 0, 1, 2, 2])
        with pytest.raises(ValueError):
            DecisionTreeClassifier(cost_matrix=np.zeros((2, 2))).fit(X, y)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_rejects_bad_shapes(self):
        tree = DecisionTreeClassifier()
        with pytest.raises(ValueError):
            tree.fit(np.zeros(5), np.zeros(5, dtype=int))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((5, 2)), np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((0, 2)), np.zeros(0, dtype=int))

    def test_bad_constructor_args(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)


class TestDecisionTreeEdgeCases:
    def test_single_class_tree_is_a_leaf(self):
        """All-identical labels must produce a split-free tree."""
        X = np.random.default_rng(1).normal(size=(40, 4))
        y = np.zeros(40, dtype=int)
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert tree.depth() == 0
        assert tree.n_leaves() == 1
        assert np.all(tree.predict(X) == 0)

    def test_single_class_with_cost_matrix(self):
        """A cost matrix must not destabilize the degenerate one-class case."""
        X = np.random.default_rng(2).normal(size=(30, 2))
        y = np.full(30, 2)
        cost = np.array(
            [
                [0.0, 5.0, 9.0],
                [5.0, 0.0, 5.0],
                [9.0, 5.0, 0.0],
            ]
        )
        tree = DecisionTreeClassifier(cost_matrix=cost).fit(X, y)
        assert np.all(tree.predict(X) == 2)

    def test_constant_features_produce_no_split(self):
        """Zero-information (constant) feature columns admit no threshold."""
        X = np.ones((50, 3))
        y = np.random.default_rng(3).integers(0, 2, size=50)
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert tree.depth() == 0
        majority = np.argmax(np.bincount(y))
        assert np.all(tree.predict(X) == majority)

    def test_zero_cost_matrix_fits_without_splitting(self):
        """An all-zero cost matrix makes every impurity zero: no gain, no split."""
        X, y = make_separable(n=60)
        cost = np.zeros((2, 2))
        tree = DecisionTreeClassifier(max_depth=4, cost_matrix=cost).fit(X, y)
        assert tree.depth() == 0
        predictions = tree.predict(X)
        assert set(predictions.tolist()) <= {0, 1}

    def test_zero_cost_column_attracts_predictions(self):
        """A class whose prediction-cost column is zero is always the
        cost-minimizing leaf prediction, however rare it is."""
        rng = np.random.default_rng(4)
        X = rng.normal(size=(60, 2))
        y = np.array([1] * 59 + [0])
        cost = np.array(
            [
                [0.0, 4.0],
                [0.0, 0.0],  # predicting class 0 never costs anything
            ]
        )
        tree = DecisionTreeClassifier(max_depth=3, cost_matrix=cost).fit(X, y)
        assert np.all(tree.predict(X) == 0)

    def test_mismatched_cost_matrix_rejected(self):
        X, y = make_separable(n=30)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(cost_matrix=np.zeros((1, 1))).fit(X, y)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(8, 80),
    n_classes=st.integers(2, 5),
    seed=st.integers(0, 1000),
)
def test_property_predictions_are_known_classes(n, n_classes, seed):
    """Property: predictions are always labels that appeared in training."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = rng.integers(0, n_classes, size=n)
    tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
    predictions = tree.predict(rng.normal(size=(50, 3)))
    assert set(predictions.tolist()) <= set(np.unique(y).tolist())
