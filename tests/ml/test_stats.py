"""Tests for the small statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.stats import argmin_with_ties, geometric_mean, harmonic_mean, weighted_mean


class TestArgminWithTies:
    def test_single_minimum(self):
        assert argmin_with_ties([3.0, 1.0, 2.0]) == [1]

    def test_ties_all_returned(self):
        assert argmin_with_ties([2.0, 1.0, 1.0, 5.0]) == [1, 2]

    def test_tolerance(self):
        assert argmin_with_ties([1.0, 1.0 + 1e-13], tolerance=1e-12) == [0, 1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            argmin_with_ties([])


class TestWeightedMean:
    def test_equal_weights_is_plain_mean(self):
        assert weighted_mean([1.0, 2.0, 3.0], [1, 1, 1]) == pytest.approx(2.0)

    def test_weights_shift_result(self):
        assert weighted_mean([0.0, 10.0], [3, 1]) == pytest.approx(2.5)

    def test_errors(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])


class TestMeans:
    def test_geometric_mean_of_constant(self):
        assert geometric_mean([4.0, 4.0, 4.0]) == pytest.approx(4.0)

    def test_geometric_mean_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_harmonic_mean_known_value(self):
        assert harmonic_mean([1.0, 1.0 / 3.0]) == pytest.approx(0.5)

    def test_errors_on_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, -1.0])
        with pytest.raises(ValueError):
            geometric_mean([])


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=30))
def test_property_mean_ordering(values):
    """Property: harmonic mean <= geometric mean <= arithmetic mean."""
    geometric = geometric_mean(values)
    harmonic = harmonic_mean(values)
    arithmetic = float(np.mean(values))
    assert harmonic <= geometric * (1 + 1e-9)
    assert geometric <= arithmetic * (1 + 1e-9)
